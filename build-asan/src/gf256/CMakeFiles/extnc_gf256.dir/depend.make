# Empty dependencies file for extnc_gf256.
# This may be replaced when dependencies are built.
