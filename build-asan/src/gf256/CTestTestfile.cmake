# CMake generated Testfile for 
# Source directory: /root/repo/src/gf256
# Build directory: /root/repo/build-asan/src/gf256
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
