file(REMOVE_RECURSE
  "CMakeFiles/extnc_simgpu.dir/device_spec.cpp.o"
  "CMakeFiles/extnc_simgpu.dir/device_spec.cpp.o.d"
  "CMakeFiles/extnc_simgpu.dir/executor.cpp.o"
  "CMakeFiles/extnc_simgpu.dir/executor.cpp.o.d"
  "CMakeFiles/extnc_simgpu.dir/occupancy.cpp.o"
  "CMakeFiles/extnc_simgpu.dir/occupancy.cpp.o.d"
  "CMakeFiles/extnc_simgpu.dir/timing.cpp.o"
  "CMakeFiles/extnc_simgpu.dir/timing.cpp.o.d"
  "libextnc_simgpu.a"
  "libextnc_simgpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extnc_simgpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
