file(REMOVE_RECURSE
  "libextnc_simgpu.a"
)
