# Empty dependencies file for extnc_simgpu.
# This may be replaced when dependencies are built.
