
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simgpu/device_spec.cpp" "src/simgpu/CMakeFiles/extnc_simgpu.dir/device_spec.cpp.o" "gcc" "src/simgpu/CMakeFiles/extnc_simgpu.dir/device_spec.cpp.o.d"
  "/root/repo/src/simgpu/executor.cpp" "src/simgpu/CMakeFiles/extnc_simgpu.dir/executor.cpp.o" "gcc" "src/simgpu/CMakeFiles/extnc_simgpu.dir/executor.cpp.o.d"
  "/root/repo/src/simgpu/occupancy.cpp" "src/simgpu/CMakeFiles/extnc_simgpu.dir/occupancy.cpp.o" "gcc" "src/simgpu/CMakeFiles/extnc_simgpu.dir/occupancy.cpp.o.d"
  "/root/repo/src/simgpu/timing.cpp" "src/simgpu/CMakeFiles/extnc_simgpu.dir/timing.cpp.o" "gcc" "src/simgpu/CMakeFiles/extnc_simgpu.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/extnc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
