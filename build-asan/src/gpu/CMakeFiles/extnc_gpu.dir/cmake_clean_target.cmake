file(REMOVE_RECURSE
  "libextnc_gpu.a"
)
