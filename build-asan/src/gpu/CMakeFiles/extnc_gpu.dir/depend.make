# Empty dependencies file for extnc_gpu.
# This may be replaced when dependencies are built.
