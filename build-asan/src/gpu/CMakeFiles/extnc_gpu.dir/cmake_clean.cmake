file(REMOVE_RECURSE
  "CMakeFiles/extnc_gpu.dir/gpu_decoder.cpp.o"
  "CMakeFiles/extnc_gpu.dir/gpu_decoder.cpp.o.d"
  "CMakeFiles/extnc_gpu.dir/gpu_encoder.cpp.o"
  "CMakeFiles/extnc_gpu.dir/gpu_encoder.cpp.o.d"
  "CMakeFiles/extnc_gpu.dir/gpu_model.cpp.o"
  "CMakeFiles/extnc_gpu.dir/gpu_model.cpp.o.d"
  "CMakeFiles/extnc_gpu.dir/gpu_multiseg_decoder.cpp.o"
  "CMakeFiles/extnc_gpu.dir/gpu_multiseg_decoder.cpp.o.d"
  "CMakeFiles/extnc_gpu.dir/gpu_recoder.cpp.o"
  "CMakeFiles/extnc_gpu.dir/gpu_recoder.cpp.o.d"
  "CMakeFiles/extnc_gpu.dir/hybrid_encoder.cpp.o"
  "CMakeFiles/extnc_gpu.dir/hybrid_encoder.cpp.o.d"
  "libextnc_gpu.a"
  "libextnc_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extnc_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
