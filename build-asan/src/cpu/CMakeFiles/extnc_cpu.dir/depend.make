# Empty dependencies file for extnc_cpu.
# This may be replaced when dependencies are built.
