file(REMOVE_RECURSE
  "libextnc_cpu.a"
)
