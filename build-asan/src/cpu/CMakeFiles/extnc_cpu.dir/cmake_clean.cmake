file(REMOVE_RECURSE
  "CMakeFiles/extnc_cpu.dir/cpu_decoder.cpp.o"
  "CMakeFiles/extnc_cpu.dir/cpu_decoder.cpp.o.d"
  "CMakeFiles/extnc_cpu.dir/cpu_encoder.cpp.o"
  "CMakeFiles/extnc_cpu.dir/cpu_encoder.cpp.o.d"
  "CMakeFiles/extnc_cpu.dir/cpu_table_encoder.cpp.o"
  "CMakeFiles/extnc_cpu.dir/cpu_table_encoder.cpp.o.d"
  "CMakeFiles/extnc_cpu.dir/multi_segment_decoder.cpp.o"
  "CMakeFiles/extnc_cpu.dir/multi_segment_decoder.cpp.o.d"
  "CMakeFiles/extnc_cpu.dir/xeon_model.cpp.o"
  "CMakeFiles/extnc_cpu.dir/xeon_model.cpp.o.d"
  "libextnc_cpu.a"
  "libextnc_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extnc_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
