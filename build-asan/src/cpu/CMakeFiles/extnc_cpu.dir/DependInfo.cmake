
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/cpu_decoder.cpp" "src/cpu/CMakeFiles/extnc_cpu.dir/cpu_decoder.cpp.o" "gcc" "src/cpu/CMakeFiles/extnc_cpu.dir/cpu_decoder.cpp.o.d"
  "/root/repo/src/cpu/cpu_encoder.cpp" "src/cpu/CMakeFiles/extnc_cpu.dir/cpu_encoder.cpp.o" "gcc" "src/cpu/CMakeFiles/extnc_cpu.dir/cpu_encoder.cpp.o.d"
  "/root/repo/src/cpu/cpu_table_encoder.cpp" "src/cpu/CMakeFiles/extnc_cpu.dir/cpu_table_encoder.cpp.o" "gcc" "src/cpu/CMakeFiles/extnc_cpu.dir/cpu_table_encoder.cpp.o.d"
  "/root/repo/src/cpu/multi_segment_decoder.cpp" "src/cpu/CMakeFiles/extnc_cpu.dir/multi_segment_decoder.cpp.o" "gcc" "src/cpu/CMakeFiles/extnc_cpu.dir/multi_segment_decoder.cpp.o.d"
  "/root/repo/src/cpu/xeon_model.cpp" "src/cpu/CMakeFiles/extnc_cpu.dir/xeon_model.cpp.o" "gcc" "src/cpu/CMakeFiles/extnc_cpu.dir/xeon_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/coding/CMakeFiles/extnc_coding.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/gf256/CMakeFiles/extnc_gf256.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/extnc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
