
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coding/block_decoder.cpp" "src/coding/CMakeFiles/extnc_coding.dir/block_decoder.cpp.o" "gcc" "src/coding/CMakeFiles/extnc_coding.dir/block_decoder.cpp.o.d"
  "/root/repo/src/coding/encoder.cpp" "src/coding/CMakeFiles/extnc_coding.dir/encoder.cpp.o" "gcc" "src/coding/CMakeFiles/extnc_coding.dir/encoder.cpp.o.d"
  "/root/repo/src/coding/generation_stream.cpp" "src/coding/CMakeFiles/extnc_coding.dir/generation_stream.cpp.o" "gcc" "src/coding/CMakeFiles/extnc_coding.dir/generation_stream.cpp.o.d"
  "/root/repo/src/coding/progressive_decoder.cpp" "src/coding/CMakeFiles/extnc_coding.dir/progressive_decoder.cpp.o" "gcc" "src/coding/CMakeFiles/extnc_coding.dir/progressive_decoder.cpp.o.d"
  "/root/repo/src/coding/recoder.cpp" "src/coding/CMakeFiles/extnc_coding.dir/recoder.cpp.o" "gcc" "src/coding/CMakeFiles/extnc_coding.dir/recoder.cpp.o.d"
  "/root/repo/src/coding/segment.cpp" "src/coding/CMakeFiles/extnc_coding.dir/segment.cpp.o" "gcc" "src/coding/CMakeFiles/extnc_coding.dir/segment.cpp.o.d"
  "/root/repo/src/coding/segment_digest.cpp" "src/coding/CMakeFiles/extnc_coding.dir/segment_digest.cpp.o" "gcc" "src/coding/CMakeFiles/extnc_coding.dir/segment_digest.cpp.o.d"
  "/root/repo/src/coding/systematic.cpp" "src/coding/CMakeFiles/extnc_coding.dir/systematic.cpp.o" "gcc" "src/coding/CMakeFiles/extnc_coding.dir/systematic.cpp.o.d"
  "/root/repo/src/coding/verifying_decoder.cpp" "src/coding/CMakeFiles/extnc_coding.dir/verifying_decoder.cpp.o" "gcc" "src/coding/CMakeFiles/extnc_coding.dir/verifying_decoder.cpp.o.d"
  "/root/repo/src/coding/wire.cpp" "src/coding/CMakeFiles/extnc_coding.dir/wire.cpp.o" "gcc" "src/coding/CMakeFiles/extnc_coding.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/gf256/CMakeFiles/extnc_gf256.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/extnc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
