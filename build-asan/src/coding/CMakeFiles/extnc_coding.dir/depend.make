# Empty dependencies file for extnc_coding.
# This may be replaced when dependencies are built.
