file(REMOVE_RECURSE
  "CMakeFiles/extnc_coding.dir/block_decoder.cpp.o"
  "CMakeFiles/extnc_coding.dir/block_decoder.cpp.o.d"
  "CMakeFiles/extnc_coding.dir/encoder.cpp.o"
  "CMakeFiles/extnc_coding.dir/encoder.cpp.o.d"
  "CMakeFiles/extnc_coding.dir/generation_stream.cpp.o"
  "CMakeFiles/extnc_coding.dir/generation_stream.cpp.o.d"
  "CMakeFiles/extnc_coding.dir/progressive_decoder.cpp.o"
  "CMakeFiles/extnc_coding.dir/progressive_decoder.cpp.o.d"
  "CMakeFiles/extnc_coding.dir/recoder.cpp.o"
  "CMakeFiles/extnc_coding.dir/recoder.cpp.o.d"
  "CMakeFiles/extnc_coding.dir/segment.cpp.o"
  "CMakeFiles/extnc_coding.dir/segment.cpp.o.d"
  "CMakeFiles/extnc_coding.dir/segment_digest.cpp.o"
  "CMakeFiles/extnc_coding.dir/segment_digest.cpp.o.d"
  "CMakeFiles/extnc_coding.dir/systematic.cpp.o"
  "CMakeFiles/extnc_coding.dir/systematic.cpp.o.d"
  "CMakeFiles/extnc_coding.dir/verifying_decoder.cpp.o"
  "CMakeFiles/extnc_coding.dir/verifying_decoder.cpp.o.d"
  "CMakeFiles/extnc_coding.dir/wire.cpp.o"
  "CMakeFiles/extnc_coding.dir/wire.cpp.o.d"
  "libextnc_coding.a"
  "libextnc_coding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extnc_coding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
