file(REMOVE_RECURSE
  "libextnc_coding.a"
)
