file(REMOVE_RECURSE
  "libextnc_gf65536.a"
)
