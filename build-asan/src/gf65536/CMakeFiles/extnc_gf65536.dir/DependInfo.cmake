
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gf65536/codec16.cpp" "src/gf65536/CMakeFiles/extnc_gf65536.dir/codec16.cpp.o" "gcc" "src/gf65536/CMakeFiles/extnc_gf65536.dir/codec16.cpp.o.d"
  "/root/repo/src/gf65536/gf16.cpp" "src/gf65536/CMakeFiles/extnc_gf65536.dir/gf16.cpp.o" "gcc" "src/gf65536/CMakeFiles/extnc_gf65536.dir/gf16.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/extnc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
