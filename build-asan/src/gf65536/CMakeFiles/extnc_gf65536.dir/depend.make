# Empty dependencies file for extnc_gf65536.
# This may be replaced when dependencies are built.
