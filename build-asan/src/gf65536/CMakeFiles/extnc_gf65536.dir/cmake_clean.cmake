file(REMOVE_RECURSE
  "CMakeFiles/extnc_gf65536.dir/codec16.cpp.o"
  "CMakeFiles/extnc_gf65536.dir/codec16.cpp.o.d"
  "CMakeFiles/extnc_gf65536.dir/gf16.cpp.o"
  "CMakeFiles/extnc_gf65536.dir/gf16.cpp.o.d"
  "libextnc_gf65536.a"
  "libextnc_gf65536.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extnc_gf65536.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
