# CMake generated Testfile for 
# Source directory: /root/repo/src/gf65536
# Build directory: /root/repo/build-asan/src/gf65536
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
