file(REMOVE_RECURSE
  "CMakeFiles/extnc_util.dir/aligned_buffer.cpp.o"
  "CMakeFiles/extnc_util.dir/aligned_buffer.cpp.o.d"
  "CMakeFiles/extnc_util.dir/checksum.cpp.o"
  "CMakeFiles/extnc_util.dir/checksum.cpp.o.d"
  "CMakeFiles/extnc_util.dir/file_io.cpp.o"
  "CMakeFiles/extnc_util.dir/file_io.cpp.o.d"
  "CMakeFiles/extnc_util.dir/stats.cpp.o"
  "CMakeFiles/extnc_util.dir/stats.cpp.o.d"
  "CMakeFiles/extnc_util.dir/table_printer.cpp.o"
  "CMakeFiles/extnc_util.dir/table_printer.cpp.o.d"
  "CMakeFiles/extnc_util.dir/thread_pool.cpp.o"
  "CMakeFiles/extnc_util.dir/thread_pool.cpp.o.d"
  "libextnc_util.a"
  "libextnc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extnc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
