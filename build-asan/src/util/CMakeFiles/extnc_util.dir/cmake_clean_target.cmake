file(REMOVE_RECURSE
  "libextnc_util.a"
)
