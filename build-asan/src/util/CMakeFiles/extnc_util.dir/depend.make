# Empty dependencies file for extnc_util.
# This may be replaced when dependencies are built.
