
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/aligned_buffer.cpp" "src/util/CMakeFiles/extnc_util.dir/aligned_buffer.cpp.o" "gcc" "src/util/CMakeFiles/extnc_util.dir/aligned_buffer.cpp.o.d"
  "/root/repo/src/util/checksum.cpp" "src/util/CMakeFiles/extnc_util.dir/checksum.cpp.o" "gcc" "src/util/CMakeFiles/extnc_util.dir/checksum.cpp.o.d"
  "/root/repo/src/util/file_io.cpp" "src/util/CMakeFiles/extnc_util.dir/file_io.cpp.o" "gcc" "src/util/CMakeFiles/extnc_util.dir/file_io.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/util/CMakeFiles/extnc_util.dir/stats.cpp.o" "gcc" "src/util/CMakeFiles/extnc_util.dir/stats.cpp.o.d"
  "/root/repo/src/util/table_printer.cpp" "src/util/CMakeFiles/extnc_util.dir/table_printer.cpp.o" "gcc" "src/util/CMakeFiles/extnc_util.dir/table_printer.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/util/CMakeFiles/extnc_util.dir/thread_pool.cpp.o" "gcc" "src/util/CMakeFiles/extnc_util.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
