
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codes/lt_code.cpp" "src/codes/CMakeFiles/extnc_codes.dir/lt_code.cpp.o" "gcc" "src/codes/CMakeFiles/extnc_codes.dir/lt_code.cpp.o.d"
  "/root/repo/src/codes/reed_solomon.cpp" "src/codes/CMakeFiles/extnc_codes.dir/reed_solomon.cpp.o" "gcc" "src/codes/CMakeFiles/extnc_codes.dir/reed_solomon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/gf256/CMakeFiles/extnc_gf256.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/extnc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
