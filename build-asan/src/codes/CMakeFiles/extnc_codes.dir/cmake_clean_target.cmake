file(REMOVE_RECURSE
  "libextnc_codes.a"
)
