file(REMOVE_RECURSE
  "CMakeFiles/extnc_codes.dir/lt_code.cpp.o"
  "CMakeFiles/extnc_codes.dir/lt_code.cpp.o.d"
  "CMakeFiles/extnc_codes.dir/reed_solomon.cpp.o"
  "CMakeFiles/extnc_codes.dir/reed_solomon.cpp.o.d"
  "libextnc_codes.a"
  "libextnc_codes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extnc_codes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
