# Empty dependencies file for extnc_codes.
# This may be replaced when dependencies are built.
