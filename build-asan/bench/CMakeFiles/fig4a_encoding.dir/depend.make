# Empty dependencies file for fig4a_encoding.
# This may be replaced when dependencies are built.
