file(REMOVE_RECURSE
  "CMakeFiles/fig4a_encoding.dir/fig4a_encoding.cpp.o"
  "CMakeFiles/fig4a_encoding.dir/fig4a_encoding.cpp.o.d"
  "fig4a_encoding"
  "fig4a_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4a_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
