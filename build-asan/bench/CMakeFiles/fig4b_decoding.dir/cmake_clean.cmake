file(REMOVE_RECURSE
  "CMakeFiles/fig4b_decoding.dir/fig4b_decoding.cpp.o"
  "CMakeFiles/fig4b_decoding.dir/fig4b_decoding.cpp.o.d"
  "fig4b_decoding"
  "fig4b_decoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_decoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
