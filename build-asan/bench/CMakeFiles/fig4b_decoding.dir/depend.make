# Empty dependencies file for fig4b_decoding.
# This may be replaced when dependencies are built.
