# Empty dependencies file for ablation_field.
# This may be replaced when dependencies are built.
