file(REMOVE_RECURSE
  "CMakeFiles/ablation_field.dir/ablation_field.cpp.o"
  "CMakeFiles/ablation_field.dir/ablation_field.cpp.o.d"
  "ablation_field"
  "ablation_field.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
