file(REMOVE_RECURSE
  "CMakeFiles/fig8_best_encoding.dir/fig8_best_encoding.cpp.o"
  "CMakeFiles/fig8_best_encoding.dir/fig8_best_encoding.cpp.o.d"
  "fig8_best_encoding"
  "fig8_best_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_best_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
