# Empty dependencies file for fig8_best_encoding.
# This may be replaced when dependencies are built.
