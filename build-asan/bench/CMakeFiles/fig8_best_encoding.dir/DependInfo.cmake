
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig8_best_encoding.cpp" "bench/CMakeFiles/fig8_best_encoding.dir/fig8_best_encoding.cpp.o" "gcc" "bench/CMakeFiles/fig8_best_encoding.dir/fig8_best_encoding.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/gpu/CMakeFiles/extnc_gpu.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/cpu/CMakeFiles/extnc_cpu.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/net/CMakeFiles/extnc_net.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/coding/CMakeFiles/extnc_coding.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/simgpu/CMakeFiles/extnc_simgpu.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/gf256/CMakeFiles/extnc_gf256.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/extnc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
