# Empty dependencies file for streaming_capacity.
# This may be replaced when dependencies are built.
