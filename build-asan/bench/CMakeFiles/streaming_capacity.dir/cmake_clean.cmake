file(REMOVE_RECURSE
  "CMakeFiles/streaming_capacity.dir/streaming_capacity.cpp.o"
  "CMakeFiles/streaming_capacity.dir/streaming_capacity.cpp.o.d"
  "streaming_capacity"
  "streaming_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
