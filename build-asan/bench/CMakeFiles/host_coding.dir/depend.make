# Empty dependencies file for host_coding.
# This may be replaced when dependencies are built.
