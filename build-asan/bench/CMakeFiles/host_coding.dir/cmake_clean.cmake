file(REMOVE_RECURSE
  "CMakeFiles/host_coding.dir/host_coding.cpp.o"
  "CMakeFiles/host_coding.dir/host_coding.cpp.o.d"
  "host_coding"
  "host_coding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_coding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
