# Empty dependencies file for ablation_codes.
# This may be replaced when dependencies are built.
