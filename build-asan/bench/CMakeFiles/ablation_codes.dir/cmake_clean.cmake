file(REMOVE_RECURSE
  "CMakeFiles/ablation_codes.dir/ablation_codes.cpp.o"
  "CMakeFiles/ablation_codes.dir/ablation_codes.cpp.o.d"
  "ablation_codes"
  "ablation_codes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_codes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
