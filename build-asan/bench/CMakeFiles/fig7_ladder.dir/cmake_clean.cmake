file(REMOVE_RECURSE
  "CMakeFiles/fig7_ladder.dir/fig7_ladder.cpp.o"
  "CMakeFiles/fig7_ladder.dir/fig7_ladder.cpp.o.d"
  "fig7_ladder"
  "fig7_ladder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_ladder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
