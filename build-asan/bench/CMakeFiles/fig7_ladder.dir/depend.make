# Empty dependencies file for fig7_ladder.
# This may be replaced when dependencies are built.
