file(REMOVE_RECURSE
  "CMakeFiles/micro_gf256.dir/micro_gf256.cpp.o"
  "CMakeFiles/micro_gf256.dir/micro_gf256.cpp.o.d"
  "micro_gf256"
  "micro_gf256.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_gf256.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
