# Empty dependencies file for micro_gf256.
# This may be replaced when dependencies are built.
