# Empty dependencies file for fig6_table_vs_loop.
# This may be replaced when dependencies are built.
