file(REMOVE_RECURSE
  "CMakeFiles/fig6_table_vs_loop.dir/fig6_table_vs_loop.cpp.o"
  "CMakeFiles/fig6_table_vs_loop.dir/fig6_table_vs_loop.cpp.o.d"
  "fig6_table_vs_loop"
  "fig6_table_vs_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_table_vs_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
