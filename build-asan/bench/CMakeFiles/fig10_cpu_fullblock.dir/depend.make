# Empty dependencies file for fig10_cpu_fullblock.
# This may be replaced when dependencies are built.
