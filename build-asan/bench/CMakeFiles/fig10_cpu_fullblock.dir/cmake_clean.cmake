file(REMOVE_RECURSE
  "CMakeFiles/fig10_cpu_fullblock.dir/fig10_cpu_fullblock.cpp.o"
  "CMakeFiles/fig10_cpu_fullblock.dir/fig10_cpu_fullblock.cpp.o.d"
  "fig10_cpu_fullblock"
  "fig10_cpu_fullblock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cpu_fullblock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
