# Empty dependencies file for fig9_multiseg_decoding.
# This may be replaced when dependencies are built.
