file(REMOVE_RECURSE
  "CMakeFiles/fig9_multiseg_decoding.dir/fig9_multiseg_decoding.cpp.o"
  "CMakeFiles/fig9_multiseg_decoding.dir/fig9_multiseg_decoding.cpp.o.d"
  "fig9_multiseg_decoding"
  "fig9_multiseg_decoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_multiseg_decoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
