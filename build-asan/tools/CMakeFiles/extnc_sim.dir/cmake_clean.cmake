file(REMOVE_RECURSE
  "CMakeFiles/extnc_sim.dir/extnc_sim.cpp.o"
  "CMakeFiles/extnc_sim.dir/extnc_sim.cpp.o.d"
  "extnc_sim"
  "extnc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extnc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
