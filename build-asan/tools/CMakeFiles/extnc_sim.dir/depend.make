# Empty dependencies file for extnc_sim.
# This may be replaced when dependencies are built.
