
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/extnc_file.cpp" "tools/CMakeFiles/extnc_file.dir/extnc_file.cpp.o" "gcc" "tools/CMakeFiles/extnc_file.dir/extnc_file.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/net/CMakeFiles/extnc_net.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/coding/CMakeFiles/extnc_coding.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/extnc_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/gf256/CMakeFiles/extnc_gf256.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
