# Empty dependencies file for extnc_file.
# This may be replaced when dependencies are built.
