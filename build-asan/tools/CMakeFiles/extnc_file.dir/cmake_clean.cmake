file(REMOVE_RECURSE
  "CMakeFiles/extnc_file.dir/extnc_file.cpp.o"
  "CMakeFiles/extnc_file.dir/extnc_file.cpp.o.d"
  "extnc_file"
  "extnc_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extnc_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
