# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-asan/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(extnc_file_roundtrip "/usr/bin/cmake" "-DTOOL=/root/repo/build-asan/tools/extnc_file" "-DWORK=/root/repo/build-asan/tools/roundtrip_work" "-P" "/root/repo/tools/roundtrip_test.cmake")
set_tests_properties(extnc_file_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(extnc_sim_smoke_line "/root/repo/build-asan/tools/extnc_sim" "line" "--hops" "4" "--loss" "0.2")
set_tests_properties(extnc_sim_smoke_line PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(extnc_sim_smoke_multigen "/root/repo/build-asan/tools/extnc_sim" "multigen" "--peers" "6" "--generations" "3" "--schedule" "rarest")
set_tests_properties(extnc_sim_smoke_multigen PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
