// Multi-hop relay chain under loss: why coding must happen *inside* the
// network. A source pushes one packet per round through a chain of relays
// whose links each drop packets independently; the sink decodes a full
// generation. Recoding relays sustain the min-cut rate (1 - loss) however
// long the chain gets; store-and-forward decays as (1 - loss)^hops.
#include <cstdio>
#include <initializer_list>

#include "net/line_network.h"

int main() {
  using namespace extnc;
  net::LineNetworkConfig config;
  config.params = {.n = 32, .k = 64};
  config.loss_probability = 0.2;
  config.seed = 7;
  config.max_rounds = 1000000;

  std::printf("Relay chain, 20%% loss per link, generation of %zu blocks\n\n",
              config.params.n);
  std::printf("%-6s %-22s %-22s %s\n", "hops", "recoding (blk/round)",
              "forwarding (blk/round)", "coding gain");
  for (std::size_t hops : {1u, 2u, 3u, 4u, 6u, 8u}) {
    config.hops = hops;
    config.recode_at_relays = true;
    const auto coded = net::run_line_network(config);
    config.recode_at_relays = false;
    const auto forwarded = net::run_line_network(config);
    if (!coded.completed || !forwarded.completed) {
      std::printf("%-6zu (did not complete within the round limit)\n", hops);
      continue;
    }
    std::printf("%-6zu %-22.2f %-22.2f %.2fx\n", hops,
                coded.goodput(config.params),
                forwarded.goodput(config.params),
                static_cast<double>(forwarded.rounds) /
                    static_cast<double>(coded.rounds));
  }
  std::printf(
      "\nTheory: recoding holds ~%.2f blocks/round at any depth; forwarding "
      "falls as 0.8^hops. Both sinks decode bit-exact data (verified "
      "internally).\n",
      1 - config.loss_probability);

  // Same chain, hostile links: every link also flips bits and truncates
  // packets. Relays CRC-check (XNC2) before recoding, so pollution dies at
  // the first honest hop, and the sink verifies the decoded segment
  // against the source's digest manifest — completion implies integrity.
  std::printf("\nWith per-link corruption (10%% bit flips, 5%% truncation), "
              "4 hops, recoding:\n");
  config.hops = 4;
  config.recode_at_relays = true;
  config.faults = {.corrupt = 0.10, .truncate = 0.05};
  const auto faulty = net::run_line_network(config);
  net::ChannelStats total;
  for (const auto& s : faulty.link_stats) total += s;
  std::printf("  completed %s in %zu rounds, digest-verified: %s\n",
              faulty.completed ? "yes" : "NO", faulty.rounds,
              faulty.digest_verified ? "yes" : "NO");
  std::printf("  %zu packets damaged in flight, %zu rejected by the wire "
              "CRC, %zu quarantined at the sink\n",
              total.damaged(), faulty.packets_rejected,
              faulty.blocks_quarantined);
  return 0;
}
