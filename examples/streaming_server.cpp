// The paper's motivating application (Sec. 5.1.1): a GPU-accelerated video
// streaming server. A media segment is pushed to the (simulated) GTX 280,
// preprocessed to the log domain once, and the table-based-5 kernel then
// generates per-peer coded blocks; each peer decodes its own stream.
//
// This example runs the real kernels (functionally, at a reduced scale),
// prints the kernel metrics, and then scales up with the calibrated timing
// model to the paper's capacity numbers.
#include <cstdio>

#include "coding/progressive_decoder.h"
#include "gpu/gpu_encoder.h"
#include "gpu/gpu_model.h"
#include "net/streaming.h"
#include "util/rng.h"

int main() {
  using namespace extnc;

  // Scaled-down segment so the functional simulation stays fast; the
  // paper-scale numbers below use the calibrated model.
  const coding::Params params{.n = 32, .k = 1024};
  const std::size_t num_peers = 12;
  Rng rng(7);
  const coding::Segment segment = coding::Segment::random(params, rng);

  std::printf("== GPU streaming server (simulated GTX 280) ==\n");
  gpu::GpuEncoder encoder(simgpu::gtx280(), segment,
                          gpu::EncodeScheme::kTable5);

  // Serve each peer its own batch of coded blocks (a real server would
  // interleave; the coding is oblivious to ordering).
  std::size_t served = 0;
  std::size_t decoded_ok = 0;
  for (std::size_t peer = 0; peer < num_peers; ++peer) {
    const coding::CodedBatch batch = encoder.encode_batch(params.n + 2, rng);
    served += batch.count();
    coding::ProgressiveDecoder decoder(params);
    for (std::size_t j = 0; j < batch.count() && !decoder.is_complete(); ++j) {
      decoder.add(batch.coefficients(j), batch.payload(j));
    }
    if (decoder.is_complete() && decoder.decoded_segment() == segment) {
      ++decoded_ok;
    }
  }
  std::printf("Served %zu coded blocks to %zu peers; %zu decoded the segment "
              "correctly\n",
              served, num_peers, decoded_ok);

  const auto& m = encoder.encode_metrics();
  std::printf("Kernel metrics: %.0fM ALU ops, %.1f MB global traffic, "
              "shared-mem conflict degree %.2f\n\n",
              m.alu_ops() / 1e6,
              static_cast<double>(m.global_bytes()) / 1e6,
              m.shared_conflict_degree());

  // Paper-scale capacity with the calibrated model.
  std::printf("== Paper-scale capacity (768 kbps streams, 512 KB segments) "
              "==\n");
  const net::StreamConfig config;
  const double rate = gpu::model_encode_bandwidth(
                          simgpu::gtx280(), gpu::EncodeScheme::kTable5,
                          config.segment)
                          .mb_per_s;
  const std::size_t peers = net::peers_by_coding_rate(rate, config);
  std::printf("Encoding rate          : %.1f MB/s\n", rate);
  std::printf("Peers served           : %zu (paper: 3000+)\n", peers);
  std::printf("Coded blocks / segment : %zu\n",
              net::coded_blocks_per_segment(peers, config));
  std::printf("GbE NICs saturated     : %.2f (paper: \"two Gigabit Ethernet "
              "interfaces\")\n",
              net::nics_saturated(rate, config));
  std::printf("Segments in 1 GB VRAM  : %zu\n",
              net::segments_in_memory(1024ull << 20, config));
  return decoded_ok == num_peers ? 0 : 1;
}
