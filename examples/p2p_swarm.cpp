// Avalanche-style bulk content distribution (Gkantsidis & Rodriguez): a
// server seeds a swarm with coded blocks; peers gossip random linear
// recombinations. Compares network coding against verbatim forwarding and
// shows loss resilience — the properties that motivated using RLNC for
// content distribution in the first place (paper Sec. 2).
#include <cstdio>

#include "net/swarm.h"

namespace {

void report(const char* title, const extnc::net::SwarmResult& result) {
  std::printf("%s\n", title);
  std::printf("  completed            : %s in %.1f s\n",
              result.all_completed ? "all peers" : "TIMED OUT",
              result.completion_seconds);
  std::printf("  blocks sent / lost   : %zu / %zu\n", result.blocks_sent,
              result.blocks_lost);
  std::printf("  innovative/dependent : %zu / %zu (overhead %.1f%%)\n",
              result.blocks_innovative, result.blocks_dependent,
              100 * result.dependent_overhead());
  std::printf("  decode integrity     : %s\n\n",
              result.all_decoded_correctly ? "verified" : "FAILED");
}

}  // namespace

int main() {
  using namespace extnc::net;

  SwarmConfig config;
  config.params = {.n = 16, .k = 256};  // 4 KB generation
  config.peers = 24;
  config.neighbors = 4;
  config.server_blocks_per_second = 4.0;  // a weak seed: peers must gossip
  config.peer_blocks_per_second = 2.0;
  config.seed = 2009;
  config.max_seconds = 20000;

  std::printf("Swarm: %zu peers, generation of %zu x %zu B, weak seed "
              "(%.0f blk/s)\n\n",
              config.peers, config.params.n, config.params.k,
              config.server_blocks_per_second);

  config.use_recoding = true;
  report("With network coding (peers recode):", run_swarm(config));

  config.use_recoding = false;
  report("Without coding (peers forward verbatim):", run_swarm(config));

  config.use_recoding = true;
  config.loss_probability = 0.25;
  report("Network coding under 25% packet loss:", run_swarm(config));

  std::printf(
      "Expected: recoding completes fastest with near-zero overhead; "
      "forwarding wastes a large fraction of transmissions on duplicates; "
      "loss delays but never breaks completion (no retransmission protocol "
      "needed).\n");
  return 0;
}
