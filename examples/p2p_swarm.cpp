// Avalanche-style bulk content distribution (Gkantsidis & Rodriguez): a
// server seeds a swarm with coded blocks; peers gossip random linear
// recombinations. Compares network coding against verbatim forwarding and
// shows loss resilience — the properties that motivated using RLNC for
// content distribution in the first place (paper Sec. 2).
//
// With --kill-device the seed encodes on the simulated GPU and loses that
// device mid-transfer: the supervision layer (gpu/resilient_launcher.h)
// detects the loss, opens the circuit breaker and degrades the seed to the
// CPU encoder — the swarm still completes bit-exact, and a degradation
// report shows what the episode cost.
#include <cstdio>
#include <cstring>

#include "gpu/resilient_launcher.h"
#include "net/swarm.h"

namespace {

void report(const char* title, const extnc::net::SwarmResult& result) {
  std::printf("%s\n", title);
  std::printf("  completed            : %s in %.1f s\n",
              result.all_completed ? "all peers" : "TIMED OUT",
              result.completion_seconds);
  std::printf("  blocks sent / lost   : %zu / %zu\n", result.blocks_sent,
              result.blocks_lost);
  std::printf("  innovative/dependent : %zu / %zu (overhead %.1f%%)\n",
              result.blocks_innovative, result.blocks_dependent,
              100 * result.dependent_overhead());
  std::printf("  decode integrity     : %s\n\n",
              result.all_decoded_correctly ? "verified" : "FAILED");
}

extnc::net::SwarmConfig base_config() {
  extnc::net::SwarmConfig config;
  config.params = {.n = 16, .k = 256};  // 4 KB generation
  config.peers = 24;
  config.neighbors = 4;
  config.server_blocks_per_second = 4.0;  // a weak seed: peers must gossip
  config.peer_blocks_per_second = 2.0;
  config.seed = 2009;
  config.max_seconds = 20000;
  return config;
}

int run_baseline_demo() {
  using namespace extnc::net;

  SwarmConfig config = base_config();
  std::printf("Swarm: %zu peers, generation of %zu x %zu B, weak seed "
              "(%.0f blk/s)\n\n",
              config.peers, config.params.n, config.params.k,
              config.server_blocks_per_second);

  config.use_recoding = true;
  report("With network coding (peers recode):", run_swarm(config));

  config.use_recoding = false;
  report("Without coding (peers forward verbatim):", run_swarm(config));

  config.use_recoding = true;
  config.loss_probability = 0.25;
  report("Network coding under 25% packet loss:", run_swarm(config));

  std::printf(
      "Expected: recoding completes fastest with near-zero overhead; "
      "forwarding wastes a large fraction of transmissions on duplicates; "
      "loss delays but never breaks completion (no retransmission protocol "
      "needed).\n");
  return 0;
}

int run_kill_device_demo() {
  using namespace extnc::net;
  namespace gpu = extnc::gpu;
  namespace simgpu = extnc::simgpu;

  SwarmConfig config = base_config();
  std::printf("Swarm: %zu peers, generation of %zu x %zu B, GPU-encoding "
              "seed (GTX 280)\n\n",
              config.peers, config.params.n, config.params.k);

  // Reference run: the seed's GPU stays healthy.
  gpu::ResilientSeed healthy(simgpu::gtx280(), gpu::EncodeScheme::kTable5);
  config.make_seed_encoder = [&healthy](const extnc::coding::Segment& s) {
    return healthy.bind_segment(s);
  };
  const SwarmResult ok = run_swarm(config);
  report("Healthy GPU seed:", ok);

  // Same swarm, but the seed's device is lost partway through serving it
  // (the 25th kernel launch; each served batch costs two launches).
  simgpu::FaultPlan plan;
  plan.scripted[24] = simgpu::FaultClass::kDeviceLost;
  gpu::ResilientSeed dying(simgpu::gtx280(), gpu::EncodeScheme::kTable5,
                           gpu::SupervisorConfig{}, plan);
  config.make_seed_encoder = [&dying](const extnc::coding::Segment& s) {
    return dying.bind_segment(s);
  };
  const SwarmResult degraded = run_swarm(config);
  report("Seed loses its GPU mid-transfer:", degraded);

  const gpu::SupervisorTotals& totals = dying.supervisor().totals();
  std::printf("Degradation report (seed supervisor):\n");
  std::printf("  encode batches       : %llu (%llu gpu, %llu cpu-fallback)\n",
              static_cast<unsigned long long>(totals.operations),
              static_cast<unsigned long long>(totals.gpu_ok),
              static_cast<unsigned long long>(totals.fallbacks));
  std::printf("  device lost          : %llu (circuit breaker %s)\n",
              static_cast<unsigned long long>(totals.device_losses),
              dying.supervisor().breaker_open() ? "OPEN" : "closed");
  std::printf("  retries / backoff    : %llu / %.3f ms\n",
              static_cast<unsigned long long>(totals.retries),
              totals.backoff_seconds * 1e3);
  std::printf("  completion delta     : %.1f s -> %.1f s (%+.1f s)\n\n",
              ok.completion_seconds, degraded.completion_seconds,
              degraded.completion_seconds - ok.completion_seconds);
  std::printf(
      "Expected: the loss is detected on the next launch, the breaker "
      "opens, every later batch is encoded on the CPU — all peers still "
      "decode the exact source bytes, and swarm completion time is "
      "unchanged (the simulated network, not the seed's encode rate, is "
      "the bottleneck).\n");
  return degraded.all_completed && degraded.all_decoded_correctly ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "--kill-device") == 0) {
    return run_kill_device_demo();
  }
  if (argc != 1) {
    std::fprintf(stderr, "usage: %s [--kill-device]\n", argv[0]);
    return 2;
  }
  return run_baseline_demo();
}
