// Quickstart: encode a segment with random linear network coding, lose
// some blocks, recode at a relay, and decode at a sink.
//
// Build & run:   ./examples/quickstart
#include <cstdio>

#include "coding/encoder.h"
#include "coding/progressive_decoder.h"
#include "coding/recoder.h"
#include "util/rng.h"

int main() {
  using namespace extnc;
  using namespace extnc::coding;

  // A generation ("segment") of n = 32 blocks, 1 KB each.
  const Params params{.n = 32, .k = 1024};
  Rng rng(2009);
  const Segment original = Segment::random(params, rng);
  std::printf("Source segment: %zu blocks x %zu bytes = %zu KB\n", params.n,
              params.k, params.segment_bytes() / 1024);

  // The source emits coded blocks: random GF(2^8) combinations of all n
  // source blocks. Any n linearly independent coded blocks suffice to
  // decode; which ones arrive does not matter.
  const Encoder encoder(original);

  // A relay that never decodes: it buffers whatever it receives and emits
  // fresh random combinations of it (the defining operation of *network*
  // coding).
  Recoder relay(params);
  int lost = 0;
  for (std::size_t i = 0; i < params.n + 6; ++i) {
    CodedBlock block = encoder.encode(rng);
    if (rng.next_double() < 0.15) {  // 15% loss on the source->relay link
      ++lost;
      continue;
    }
    relay.add(block);
  }
  std::printf("Relay received %zu coded blocks (%d lost in transit)\n",
              relay.buffered(), lost);

  // The sink decodes progressively with Gauss-Jordan elimination; a
  // linearly dependent block is detected for free and discarded.
  ProgressiveDecoder sink(params);
  std::size_t received = 0;
  while (!sink.is_complete()) {
    const CodedBlock block = relay.recode(rng);
    ++received;
    if (sink.add(block) == ProgressiveDecoder::Result::kLinearlyDependent) {
      std::printf("  block %zu was linearly dependent, discarded\n", received);
    }
  }
  std::printf("Sink decoded after %zu recoded blocks (rank %zu/%zu)\n",
              received, sink.rank(), params.n);

  const Segment decoded = sink.decoded_segment();
  std::printf("Decoded segment matches original: %s\n",
              decoded == original ? "yes" : "NO (bug!)");
  return decoded == original ? 0 : 1;
}
