// The butterfly network: the textbook example of why network coding
// exists. Both sinks want the full generation; the bottleneck edge can
// carry only one block per round. Coding at the relay achieves the
// multicast capacity of 2 blocks/round per sink; even optimal routing
// (fractional Steiner-tree packing) caps at 1.5.
#include <cstdio>

#include "net/butterfly.h"

int main() {
  using namespace extnc;
  const coding::Params params{.n = 60, .k = 128};

  std::printf("Butterfly multicast of %zu blocks to two sinks\n\n", params.n);

  const net::ButterflyResult coded = net::run_butterfly_coded(params, 1);
  std::printf("With network coding at the relay:\n");
  std::printf("  rounds     : %zu\n", coded.rounds);
  std::printf("  rate/sink  : %.2f blocks/round (capacity: 2.0)\n",
              coded.blocks_per_round(params));
  std::printf("  redundant  : %zu deliveries\n", coded.redundant_blocks);
  std::printf("  decoded OK : %s\n\n", coded.decoded_correctly ? "yes" : "NO");

  const net::ButterflyResult routed = net::run_butterfly_routed(params, 1);
  std::printf("With optimal routing (3-tree packing):\n");
  std::printf("  rounds     : %zu\n", routed.rounds);
  std::printf("  rate/sink  : %.2f blocks/round (routing capacity: 1.5)\n",
              routed.blocks_per_round(params));
  std::printf("  decoded OK : %s\n\n",
              routed.decoded_correctly ? "yes" : "NO");

  std::printf("Coding speedup: %.2fx (theory: 2.0 / 1.5 = 1.33x)\n",
              static_cast<double>(routed.rounds) /
                  static_cast<double>(coded.rounds));
  return coded.decoded_correctly && routed.decoded_correctly ? 0 : 1;
}
