// Multi-segment VoD decoding (paper Sec. 5.2): a peer with spare downlink
// pulls several video segments at once; the GPU decodes them with the
// two-stage multi-segment scheme — per-segment [C | I] inversions in stage
// 1, then one big table-based matrix multiplication in stage 2.
//
// Runs the real (simulated-GPU) kernels at reduced scale, verifies every
// decoded segment, prints the per-stage split, and then shows the modeled
// paper-scale rates for 3 vs 6 segments in flight.
#include <cstdio>

#include "coding/block_decoder.h"
#include "coding/encoder.h"
#include "gpu/gpu_model.h"
#include "gpu/gpu_multiseg_decoder.h"
#include "util/rng.h"

namespace {

extnc::coding::CodedBatch collect_blocks(const extnc::coding::Segment& segment,
                                         extnc::Rng& rng) {
  using namespace extnc::coding;
  const Params& params = segment.params();
  const Encoder encoder(segment);
  BlockDecoder probe(params);
  CodedBatch batch(params, params.n);
  std::size_t stored = 0;
  while (stored < params.n) {
    CodedBlock block = encoder.encode(rng);
    if (!probe.add(block)) continue;  // drop dependent arrivals
    std::copy(block.coefficients().begin(), block.coefficients().end(),
              batch.coefficients(stored).begin());
    std::copy(block.payload().begin(), block.payload().end(),
              batch.payload(stored).begin());
    ++stored;
  }
  return batch;
}

}  // namespace

int main() {
  using namespace extnc;
  const coding::Params params{.n = 16, .k = 512};
  const std::size_t segments = 6;
  Rng rng(99);

  std::printf("VoD peer buffering %zu segments of %zu x %zu B\n\n", segments,
              params.n, params.k);

  std::vector<coding::Segment> originals;
  std::vector<coding::CodedBatch> batches;
  for (std::size_t s = 0; s < segments; ++s) {
    originals.push_back(coding::Segment::random(params, rng));
    batches.push_back(collect_blocks(originals.back(), rng));
  }

  gpu::GpuMultiSegmentDecoder decoder(simgpu::gtx280(), params);
  const std::vector<coding::Segment> decoded = decoder.decode_all(batches);

  std::size_t correct = 0;
  for (std::size_t s = 0; s < segments; ++s) {
    if (decoded[s] == originals[s]) ++correct;
  }
  std::printf("Decoded %zu/%zu segments correctly\n", correct, segments);
  const double s1 = decoder.stage1_metrics().alu_ops();
  const double s2 = decoder.stage2_metrics().alu_ops();
  std::printf("ALU work split: stage 1 (inversions) %.0f%%, stage 2 "
              "(multiply) %.0f%%\n\n",
              100 * s1 / (s1 + s2), 100 * s2 / (s1 + s2));

  std::printf("Paper-scale modeled rates (n = 128, GTX 280):\n");
  std::printf("  %-10s %-18s %-18s\n", "block", "3 segments", "6 segments");
  for (std::size_t k : {1024u, 4096u, 16384u, 32768u}) {
    const auto three = gpu::model_multi_segment_decode(simgpu::gtx280(),
                                                       {.n = 128, .k = k}, 3);
    const auto six = gpu::model_multi_segment_decode(simgpu::gtx280(),
                                                     {.n = 128, .k = k}, 6);
    std::printf("  %-10zu %6.1f MB/s (s1 %2.0f%%) %6.1f MB/s (s1 %2.0f%%)\n",
                k, three.mb_per_s, 100 * three.stage1_share, six.mb_per_s,
                100 * six.stage1_share);
  }
  std::printf("\n(paper: 6-segment decoding reaches 254 MB/s at n = 128)\n");
  return correct == segments ? 0 : 1;
}
