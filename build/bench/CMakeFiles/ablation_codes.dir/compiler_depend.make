# Empty compiler generated dependencies file for ablation_codes.
# This may be replaced when dependencies are built.
