# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/coding_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/simgpu_test[1]_include.cmake")
include("/root/repo/build/tests/gpu_test[1]_include.cmake")
include("/root/repo/build/tests/gf65536_test[1]_include.cmake")
include("/root/repo/build/tests/codes_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/gf256_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
