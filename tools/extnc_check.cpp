// extnc_check — run every shipped kernel under the simgpu kernel sanitizer
// and gate on the result.
//
//   extnc_check [--device gtx280|8800gt] [--engine serial|parallel|both]
//               [--n N] [--k K] [--blocks B]
//
// Default mode sweeps all encode schemes, both decoders (every Sec. 5.4
// option combination the device supports), the recoder and the hybrid
// encoder under a collect-mode simgpu::Checker, printing one line per
// case. Exit status 1 if any case has error findings — advisory perf
// lints are printed but never fail the gate. With --engine both the
// serial and parallel sweeps must also produce bit-identical reports
// (the sanitizer analogue of the engine-equivalence tests).
//
//   extnc_check --seed-bug race|rw-race|oob-shared|oob-global|
//                          misaligned|divergence|stale
//
// Runs one deliberately-broken synthetic kernel instead and exits 1 when
// the sanitizer flags it (so CTest's WILL_FAIL can assert each bug class
// is caught; exit 0 here would mean a checker regression).
//
//   extnc_check --overhead [--max-slowdown F]
//
// Times a tb5 encode workload unchecked vs checked and exits 1 if the
// checked run exceeds F times the unchecked one (default 8; the checker
// audits every byte of every shared access but measures ~2x in practice —
// see DESIGN.md "Kernel sanitizer").
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "gpu/gpu_encoder.h"
#include "gpu/kernel_check.h"
#include "simgpu/checker.h"
#include "simgpu/exec_engine.h"
#include "simgpu/executor.h"
#include "util/cli_flags.h"
#include "util/rng.h"

namespace {

using namespace extnc;
using namespace extnc::bench;
using simgpu::BlockCtx;
using simgpu::CheckConfig;
using simgpu::Checker;
using simgpu::ThreadCtx;

// ---------------------------------------------------------------- sweep --

int run_sweep(const simgpu::DeviceSpec& spec, simgpu::ExecEngine engine,
              const gpu::KernelCheckOptions& options, bool both) {
  const auto cases = gpu::run_kernel_checks(spec, engine, options);
  std::vector<gpu::KernelCheckCase> parallel_cases;
  if (both) {
    parallel_cases =
        gpu::run_kernel_checks(spec, simgpu::ExecEngine::kParallel, options);
  }

  int exit_code = 0;
  std::printf("extnc_check: %zu kernel cases on %s (n=%zu, k=%zu)\n",
              cases.size(), spec.name, options.params.n, options.params.k);
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const gpu::KernelCheckCase& c = cases[i];
    const unsigned long long errors = c.report.errors();
    const unsigned long long advisories = c.report.advisories();
    std::printf("  %-28s %s  (%llu errors, %llu advisories, %llu launches)\n",
                c.name.c_str(), errors == 0 ? "clean" : "DIRTY", errors,
                advisories,
                static_cast<unsigned long long>(c.report.checked_launches));
    if (errors != 0) {
      std::printf("%s\n", c.report.to_string().c_str());
      exit_code = 1;
    }
    if (both && !(c.report == parallel_cases[i].report)) {
      std::printf("  %-28s ENGINE MISMATCH: serial and parallel reports "
                  "differ\n",
                  c.name.c_str());
      exit_code = 1;
    }
  }
  if (exit_code == 0) {
    std::printf("extnc_check: all cases clean%s\n",
                both ? ", serial and parallel reports identical" : "");
  }
  return exit_code;
}

// ------------------------------------------------------------ seeded bugs --

// Each seeded bug runs a tiny kernel that commits exactly one class of
// error; the tool exits 1 when the sanitizer reports it (the expected
// outcome, asserted via CTest WILL_FAIL) and 0 on a checker regression.
int run_seed_bug(const simgpu::DeviceSpec& spec, const std::string& bug) {
  CheckConfig config;
  config.mode = CheckConfig::Mode::kCollect;
  Checker checker(config);
  simgpu::Launcher launcher(spec);
  launcher.set_checker(&checker);
  launcher.set_launch_label("seeded/" + bug);
  const simgpu::LaunchConfig launch{.blocks = 1, .threads_per_block = 16};

  std::vector<std::uint8_t> small(16);
  Checker::ScopedWatch watch(&checker, small.data(), small.size(), "small");

  if (bug == "race") {
    // Every lane writes shared byte 0 in one segment: write/write hazard.
    launcher.launch(launch, [](BlockCtx& block) {
      block.step([](ThreadCtx& thread) {
        thread.sstore_u8(0, static_cast<std::uint8_t>(thread.lane()));
      });
    });
  } else if (bug == "rw-race") {
    // Lane 0 writes, later lanes read the same byte in the same segment.
    launcher.launch(launch, [](BlockCtx& block) {
      block.step([](ThreadCtx& thread) {
        if (thread.lane() == 0) {
          thread.sstore_u8(0, 1);
        } else {
          (void)thread.sload_u8(0);
        }
      });
    });
  } else if (bug == "oob-shared") {
    launcher.launch(launch, [&](BlockCtx& block) {
      block.step([&](ThreadCtx& thread) {
        (void)thread.sload_u8(spec.shared_mem_per_sm + thread.lane());
      });
    });
  } else if (bug == "oob-global") {
    // Reads stride past the end of the watched 16-byte buffer.
    launcher.launch(launch, [&](BlockCtx& block) {
      block.step([&](ThreadCtx& thread) {
        (void)thread.gload_u8(small.data() + small.size() + thread.lane());
      });
    });
  } else if (bug == "misaligned") {
    launcher.launch(launch, [](BlockCtx& block) {
      block.step([](ThreadCtx& thread) {
        thread.sstore_u32(2 + thread.lane() * 8, 0);
      });
    });
  } else if (bug == "divergence") {
    // A partial step the launch shape never declared.
    launcher.launch(launch, [](BlockCtx& block) {
      block.step_partial(3, [](ThreadCtx& thread) {
        thread.sstore_u32(thread.lane() * 4, 1);
      });
    });
  } else if (bug == "stale") {
    // In-bounds read of shared memory no lane ever wrote this launch.
    launcher.launch(launch, [](BlockCtx& block) {
      block.step([](ThreadCtx& thread) {
        (void)thread.sload_u8(128 + thread.lane());
      });
    });
  } else {
    die("unknown --seed-bug '" + bug +
        "' (expected race, rw-race, oob-shared, oob-global, misaligned, "
        "divergence or stale)");
  }

  const simgpu::CheckReport& report = checker.report();
  std::printf("extnc_check: seeded '%s' -> %llu error findings\n",
              bug.c_str(),
              static_cast<unsigned long long>(report.errors()));
  std::printf("%s\n", report.to_string().c_str());
  return report.errors() > 0 ? 1 : 0;
}

// -------------------------------------------------------------- overhead --

double time_encode(const simgpu::DeviceSpec& spec, Checker* checker) {
  Rng rng(7);
  const coding::Params params{.n = 64, .k = 1024};
  const coding::Segment segment = coding::Segment::random(params, rng);
  gpu::GpuEncoder encoder(spec, segment, gpu::EncodeScheme::kTable5,
                          /*profiler=*/nullptr, "overhead",
                          /*injector=*/nullptr, checker);
  const auto start = std::chrono::steady_clock::now();
  encoder.encode_batch(64, rng);
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

int run_overhead(const simgpu::DeviceSpec& spec, double max_slowdown) {
  // Measure instrumentation cost against the interpreted engine: checked
  // launches always interpret, so letting the unchecked baseline take the
  // warp-batched fast path would fold the fast-path speedup into the
  // reported "overhead" and blow the budget for the wrong reason.
  const bool fast_saved = simgpu::fast_path_enabled();
  simgpu::set_fast_path_enabled(false);
  // Warm up tables/allocator, then take the best of three per variant so
  // the guard is robust to scheduler noise on loaded CI hosts.
  (void)time_encode(spec, nullptr);
  double unchecked = 1e9;
  double checked = 1e9;
  CheckConfig config;
  config.mode = CheckConfig::Mode::kCollect;
  for (int i = 0; i < 3; ++i) {
    unchecked = std::min(unchecked, time_encode(spec, nullptr));
    Checker checker(config);
    checked = std::min(checked, time_encode(spec, &checker));
  }
  simgpu::set_fast_path_enabled(fast_saved);
  const double slowdown = checked / unchecked;
  std::printf("extnc_check: overhead tb5 encode: unchecked %.3f ms, "
              "checked %.3f ms, slowdown %.1fx (budget %.1fx)\n",
              unchecked * 1e3, checked * 1e3, slowdown, max_slowdown);
  if (slowdown > max_slowdown) {
    std::fprintf(stderr,
                 "error: checker overhead %.1fx exceeds --max-slowdown "
                 "%.1fx\n",
                 slowdown, max_slowdown);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string error;
  const auto flags = CliFlags::parse(
      argc, argv, 1,
      {{"--device", CliFlag::Kind::kText},
       {"--engine", CliFlag::Kind::kText},
       {"--n", CliFlag::Kind::kSize},
       {"--k", CliFlag::Kind::kSize},
       {"--blocks", CliFlag::Kind::kSize},
       {"--seed-bug", CliFlag::Kind::kText},
       {"--overhead", CliFlag::Kind::kBool},
       {"--max-slowdown", CliFlag::Kind::kNumber}},
      &error);
  if (!flags.has_value()) die(error);

  const simgpu::DeviceSpec& spec =
      device_by_name(flags->text("--device", "gtx280"));

  const std::string bug = flags->text("--seed-bug");
  if (!bug.empty()) return run_seed_bug(spec, bug);
  if (flags->has("--overhead")) {
    return run_overhead(spec, flags->number("--max-slowdown", 8.0));
  }

  gpu::KernelCheckOptions options;
  options.params.n = flags->size("--n", options.params.n);
  options.params.k = flags->size("--k", options.params.k);
  options.batch_blocks = flags->size("--blocks", options.batch_blocks);
  if (options.params.n % 4 != 0 || options.params.k % 4 != 0) {
    die("--n and --k must be multiples of 4 (GPU kernels use 32-bit words)");
  }

  const std::string engine_arg = flags->text("--engine", "both");
  if (engine_arg == "both") {
    return run_sweep(spec, simgpu::ExecEngine::kSerial, options,
                     /*both=*/true);
  }
  const auto engine = simgpu::parse_engine(engine_arg);
  if (!engine.has_value()) {
    die("unknown --engine '" + engine_arg +
        "' (expected serial, parallel or both)");
  }
  return run_sweep(spec, *engine, options, /*both=*/false);
}
