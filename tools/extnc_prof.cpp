// extnc_prof: kernel-level profiling for the simulated GPU coding paths.
//
//   extnc_prof --device gtx280 --scheme tb5 --profile-json out.json
//
// Runs the requested encode scheme on a simulated device with a Profiler
// attached, prints the bottleneck report (one aggregated row per kernel
// label, launch counts, compute/memory/launch split, bank-conflict cycles
// per launch), and optionally exports the per-launch timeline as
// Chrome-trace JSON loadable in chrome://tracing or Perfetto.
//
// For table-based schemes a Table-based-1 baseline is profiled in the same
// run (labels "baseline/tb1/..."), and the tool prints the Sec. 5.1.3
// attribution: how the scheme's shared-memory serialized cycles per launch
// compare to TB-1's — the quantity the TB ladder exists to reduce.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.h"
#include "coding/segment.h"
#include "gpu/encode_scheme.h"
#include "gpu/gpu_encoder.h"
#include "simgpu/profile_report.h"
#include "simgpu/profiler.h"
#include "util/cli_flags.h"
#include "util/metrics_registry.h"
#include "util/rng.h"

namespace {

using namespace extnc;
using namespace extnc::bench;
using namespace extnc::gpu;

constexpr EncodeScheme kAllSchemes[] = {
    EncodeScheme::kLoopBased, EncodeScheme::kTable0, EncodeScheme::kTable1,
    EncodeScheme::kTable2,    EncodeScheme::kTable3, EncodeScheme::kTable4,
    EncodeScheme::kTable5,
};

EncodeScheme scheme_by_label(const std::string& name) {
  for (EncodeScheme scheme : kAllSchemes) {
    if (name == scheme_label(scheme)) return scheme;
  }
  die("unknown scheme '" + name + "' (expected loop or tb0..tb5)");
}

// The per-scheme multiply kernel's launch label suffix.
const char* multiply_kernel(EncodeScheme scheme) {
  if (scheme == EncodeScheme::kLoopBased) return "mul_loop";
  return scheme == EncodeScheme::kTable4 ? "exp_tex" : "exp_smem";
}

}  // namespace

int main(int argc, char** argv) {
  std::string error;
  const auto flags = CliFlags::parse(
      argc, argv, 1,
      {{"--device", CliFlag::Kind::kText},
       {"--scheme", CliFlag::Kind::kText},
       {"--n", CliFlag::Kind::kSize},
       {"--k", CliFlag::Kind::kSize},
       {"--blocks", CliFlag::Kind::kSize},
       {"--profile-json", CliFlag::Kind::kText},
       {"--csv", CliFlag::Kind::kBool},
       {"--no-baseline", CliFlag::Kind::kBool}},
      &error);
  if (!flags.has_value()) die(error);
  const bool csv = flags->has("--csv");
  const simgpu::DeviceSpec& spec =
      device_by_name(flags->text("--device", "gtx280"));
  const EncodeScheme scheme =
      scheme_by_label(flags->text("--scheme", "tb5"));
  const coding::Params params{.n = flags->size("--n", 128),
                              .k = flags->size("--k", 1024)};
  const std::size_t coded_blocks = flags->size("--blocks", 64);
  const bool with_baseline = !flags->has("--no-baseline") &&
                             scheme_is_preprocessed(scheme) &&
                             scheme != EncodeScheme::kTable1;
  ProfileSink sink;
  sink.path = flags->text("--profile-json");

  Rng rng(1);
  const coding::Segment segment = coding::Segment::random(params, rng);
  {
    GpuEncoder encoder(spec, segment, scheme, &sink.profiler, "encode");
    (void)encoder.encode_batch(coded_blocks, rng);
  }
  if (with_baseline) {
    GpuEncoder baseline(spec, segment, EncodeScheme::kTable1, &sink.profiler,
                        "baseline");
    (void)baseline.encode_batch(coded_blocks, rng);
  }

  if (!csv) {
    std::printf(
        "extnc_prof: %s encode of %zu coded blocks (n=%zu, k=%zu) on %s — "
        "%zu kernel launches\n\n",
        scheme_name(scheme), coded_blocks, params.n, params.k, spec.name,
        sink.profiler.launch_count());
  }
  simgpu::print_bottleneck_report(sink.profiler, stdout, csv);

  if (with_baseline && !csv) {
    const std::string main_label = std::string("encode/") +
                                   scheme_label(scheme) + "/" +
                                   multiply_kernel(scheme);
    const auto main_sum = sink.profiler.label_summary(main_label);
    const auto base_sum = sink.profiler.label_summary("baseline/tb1/exp_smem");
    if (main_sum.launches > 0 && base_sum.launches > 0) {
      const double base_cycles = base_sum.serialized_cycles_per_launch();
      const double main_cycles = main_sum.serialized_cycles_per_launch();
      std::printf(
          "\nAttribution (tb1 -> %s, Sec. 5.1.3): shared-memory serialized "
          "cycles per multiply launch %.0f -> %.0f",
          scheme_label(scheme), base_cycles, main_cycles);
      if (main_cycles > 0 && base_cycles > main_cycles) {
        std::printf(" (%.1fx fewer bank-conflict cycles)",
                    base_cycles / main_cycles);
      }
      std::printf("; multiply time per launch %.3f us -> %.3f us.\n",
                  1e6 * base_sum.total_s /
                      static_cast<double>(base_sum.launches),
                  1e6 * main_sum.total_s /
                      static_cast<double>(main_sum.launches));
    }
  }

  std::vector<std::pair<std::string, std::string>> metadata{
      {"tool", "extnc_prof"},
      {"device", spec.name},
      {"scheme", scheme_label(scheme)}};
  // Host-side counters (none for a pure encode run, but populated when the
  // net layer is in play) ride along as trace metadata.
  for (const auto& [name, value] : metrics::Registry::instance().snapshot()) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", value);
    metadata.emplace_back(name, buf);
  }
  sink.write_or_die(std::move(metadata));
  return 0;
}
