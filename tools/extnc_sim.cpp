// extnc_sim — run the networking simulations from the command line.
//
//   extnc_sim swarm  [--peers N] [--loss P] [--no-recoding] [--seed S]
//   extnc_sim line   [--hops H] [--loss P] [--no-recoding] [--seed S]
//   extnc_sim live   [--viewers N] [--rate BLOCKS_PER_S] [--loss P]
//   extnc_sim multigen [--peers N] [--generations G] [--loss P]
//                      [--schedule random|sequential|rarest] [--seed S]
//
// swarm, line and multigen also take byte-level fault-injection flags
// (--corrupt P, --truncate P, --dup P, --reorder P); the printed stats
// then include what was injected vs. caught by the wire CRC.
//
// swarm and multigen can additionally run their seed on the supervised
// GPU encoder with injected *device* faults: --fault-profile takes a
// simgpu::FaultPlan spec ("hang@3,flip@7,lost@12,pfail=0.01"; classes
// hang|flip|fail|lost, scripted by launch index with @ or drawn from
// seeded probabilities with p<class>=), --fault-seed fixes the draw.
// The run then prints a degradation report: faults injected, retries,
// watchdog trips, CPU fallbacks, breaker state.
//
// Unknown subcommands or flags are rejected (usage + exit 2).
//
// Each prints the same statistics the corresponding tests assert on.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>

#include "gpu/resilient_launcher.h"
#include "net/line_network.h"
#include "net/live_stream.h"
#include "net/multigen_swarm.h"
#include "net/swarm.h"
#include "simgpu/device_spec.h"
#include "simgpu/fault_injector.h"
#include "util/cli_flags.h"

namespace {

using namespace extnc;
using Kind = CliFlag::Kind;

int usage() {
  std::fprintf(stderr,
               "usage: extnc_sim swarm|line|live|multigen [options]\n"
               "  common: --loss P --seed S\n"
               "  faults (swarm/line/multigen): --corrupt P --truncate P "
               "--dup P --reorder P\n"
               "  device faults (swarm/multigen): --fault-profile SPEC "
               "--fault-seed N\n"
               "    SPEC: comma-separated hang|flip|fail|lost@LAUNCH or "
               "p{hang|flip|fail|lost}=P\n"
               "  swarm:  --peers N --no-recoding\n"
               "  line:   --hops H --no-recoding\n"
               "  live:   --viewers N --rate BLOCKS_PER_S\n"
               "  multigen: --peers N --generations G "
               "--schedule random|sequential|rarest\n");
  return 2;
}

// Every flag a subcommand accepts (with its value kind) is declared to the
// shared strict parser (util/cli_flags.h); anything else on the command
// line — or a malformed value — is an error, not silently ignored.
std::optional<CliFlags> parse_flags(int argc, char** argv,
                                    std::initializer_list<CliFlag> known) {
  std::string error;
  auto flags = CliFlags::parse(argc, argv, 2, known, &error);
  if (!flags.has_value()) {
    std::fprintf(stderr, "extnc_sim: %s\n", error.c_str());
  }
  return flags;
}

net::FaultSpec fault_spec(const CliFlags& args) {
  return net::FaultSpec{.corrupt = args.number("--corrupt", 0),
                        .truncate = args.number("--truncate", 0),
                        .duplicate = args.number("--dup", 0),
                        .reorder = args.number("--reorder", 0)};
}

void print_faults(const net::ChannelStats& s, std::size_t rejected) {
  std::printf("  faults injected: %zu (%zu corrupt, %zu truncated, "
              "%zu duplicated, %zu reordered)\n",
              s.faults(), s.corrupted, s.truncated, s.duplicated, s.reordered);
  std::printf("  CRC rejections : %zu of %zu damaged\n", rejected,
              s.damaged());
}

// Build the supervised GPU seed for --fault-profile / --fault-seed.
// Returns nullptr (and prints an error) on a malformed profile; sets
// `enabled` so callers can tell "no profile requested" from "bad profile".
std::unique_ptr<gpu::ResilientSeed> make_faulty_seed(const CliFlags& args,
                                                     bool& enabled) {
  const std::string profile = args.text("--fault-profile", "");
  enabled = !profile.empty();
  if (!enabled) return nullptr;
  const auto plan = simgpu::FaultPlan::parse(
      profile, static_cast<std::uint64_t>(args.number("--fault-seed", 1)));
  if (!plan) {
    std::fprintf(stderr, "extnc_sim: bad --fault-profile '%s'\n",
                 profile.c_str());
    return nullptr;
  }
  return std::make_unique<gpu::ResilientSeed>(simgpu::gtx280(),
                                              gpu::EncodeScheme::kTable5,
                                              gpu::SupervisorConfig{}, *plan);
}

void print_degradation(gpu::ResilientSeed& seed) {
  const auto& t = seed.supervisor().totals();
  auto u = [](std::uint64_t v) { return static_cast<unsigned long long>(v); };
  std::printf("  gpu seed       : %llu ops (%llu gpu, %llu cpu-fallback), "
              "%llu retries, %.3fs backoff\n",
              u(t.operations), u(t.gpu_ok), u(t.fallbacks), u(t.retries),
              t.backoff_seconds);
  std::printf("  detections     : %llu watchdog, %llu corrupted-output, "
              "%llu launch-failure, %llu device-lost\n",
              u(t.watchdog_trips), u(t.corrupted_outputs),
              u(t.launch_failures), u(t.device_losses));
  std::printf("  breaker        : %s\n",
              seed.supervisor().breaker_open() ? "OPEN (cpu-only)" : "closed");
  if (seed.injector() != nullptr) {
    const auto& c = seed.injector()->counters();
    std::printf("  injected       : %llu faults over %llu launches "
                "(%llu hang, %llu flip, %llu fail, %llu lost)\n",
                u(c.faults()), u(c.launches), u(c.hangs), u(c.bit_flips),
                u(c.launch_failures), u(c.device_losses));
  }
}

int cmd_swarm(int argc, char** argv) {
  const auto flags = parse_flags(argc, argv,
                                 {{"--peers", Kind::kSize},
                                  {"--loss", Kind::kNumber},
                                  {"--seed", Kind::kNumber},
                                  {"--no-recoding", Kind::kBool},
                                  {"--corrupt", Kind::kNumber},
                                  {"--truncate", Kind::kNumber},
                                  {"--dup", Kind::kNumber},
                                  {"--reorder", Kind::kNumber},
                                  {"--fault-profile", Kind::kText},
                                  {"--fault-seed", Kind::kNumber}});
  if (!flags.has_value()) return usage();
  const CliFlags& args = *flags;
  bool device_faults = false;
  auto seed = make_faulty_seed(args, device_faults);
  if (device_faults && seed == nullptr) return usage();

  net::SwarmConfig config;
  config.params = {.n = 16, .k = 256};
  config.peers = args.size("--peers", 16);
  config.loss_probability = args.number("--loss", 0.0);
  config.use_recoding = !args.has("--no-recoding");
  config.seed = static_cast<std::uint64_t>(args.number("--seed", 1));
  config.faults = fault_spec(args);
  if (seed != nullptr) {
    config.make_seed_encoder = [&seed](const coding::Segment& segment) {
      return seed->bind_segment(segment);
    };
  }
  const auto r = net::run_swarm(config);
  std::printf("swarm: %zu peers, loss %.0f%%, %s%s\n", config.peers,
              100 * config.loss_probability,
              config.use_recoding ? "recoding" : "forwarding",
              seed != nullptr ? ", gpu seed (supervised)" : "");
  std::printf("  completed      : %s (%.1f s)\n",
              r.all_completed ? "yes" : "NO", r.completion_seconds);
  std::printf("  sent/lost      : %zu / %zu\n", r.blocks_sent, r.blocks_lost);
  std::printf("  overhead       : %.1f%% dependent\n",
              100 * r.dependent_overhead());
  std::printf("  verified       : %s\n", r.all_decoded_correctly ? "yes" : "NO");
  if (config.faults.any()) print_faults(r.channel, r.blocks_rejected);
  if (seed != nullptr) print_degradation(*seed);
  return r.all_completed ? 0 : 1;
}

int cmd_line(int argc, char** argv) {
  const auto flags = parse_flags(argc, argv,
                                 {{"--hops", Kind::kSize},
                                  {"--loss", Kind::kNumber},
                                  {"--seed", Kind::kNumber},
                                  {"--no-recoding", Kind::kBool},
                                  {"--corrupt", Kind::kNumber},
                                  {"--truncate", Kind::kNumber},
                                  {"--dup", Kind::kNumber},
                                  {"--reorder", Kind::kNumber}});
  if (!flags.has_value()) return usage();
  const CliFlags& args = *flags;
  net::LineNetworkConfig config;
  config.params = {.n = 32, .k = 64};
  config.hops = args.size("--hops", 3);
  config.loss_probability = args.number("--loss", 0.2);
  config.recode_at_relays = !args.has("--no-recoding");
  config.seed = static_cast<std::uint64_t>(args.number("--seed", 1));
  config.max_rounds = 1000000;
  config.faults = fault_spec(args);
  const auto r = net::run_line_network(config);
  std::printf("line: %zu hops, loss %.0f%%, %s\n", config.hops,
              100 * config.loss_probability,
              config.recode_at_relays ? "recoding" : "forwarding");
  std::printf("  completed      : %s in %zu rounds\n",
              r.completed ? "yes" : "NO", r.rounds);
  std::printf("  goodput        : %.2f blocks/round\n",
              r.goodput(config.params));
  std::printf("  verified       : %s\n", r.decoded_correctly ? "yes" : "NO");
  if (config.faults.any()) {
    net::ChannelStats total;
    for (const auto& s : r.link_stats) total += s;
    print_faults(total, r.packets_rejected);
    std::printf("  quarantined    : %zu blocks at the sink\n",
                r.blocks_quarantined);
  }
  return r.completed ? 0 : 1;
}

int cmd_live(int argc, char** argv) {
  const auto flags = parse_flags(argc, argv,
                                 {{"--viewers", Kind::kSize},
                                  {"--rate", Kind::kNumber},
                                  {"--loss", Kind::kNumber}});
  if (!flags.has_value()) return usage();
  const CliFlags& args = *flags;
  net::LiveStreamConfig config;
  config.viewers = args.size("--viewers", 10);
  config.server_blocks_per_second = args.number("--rate", 200.0);
  config.loss_probability = args.number("--loss", 0.0);
  const auto r = net::run_live_stream(config);
  std::printf("live: %zu viewers, %.0f blocks/s server "
              "(stall-free capacity %zu)\n",
              config.viewers, config.server_blocks_per_second,
              net::stall_free_capacity(config));
  std::printf("  rebuffer events: %zu\n", r.rebuffer_events);
  std::printf("  smooth viewers : %zu / %zu\n", r.smooth_viewers,
              config.viewers);
  std::printf("  verified       : %s\n",
              r.all_content_decoded_correctly ? "yes" : "NO");
  return 0;
}

int cmd_multigen(int argc, char** argv) {
  const auto flags = parse_flags(argc, argv,
                                 {{"--peers", Kind::kSize},
                                  {"--generations", Kind::kSize},
                                  {"--loss", Kind::kNumber},
                                  {"--seed", Kind::kNumber},
                                  {"--schedule", Kind::kText},
                                  {"--corrupt", Kind::kNumber},
                                  {"--truncate", Kind::kNumber},
                                  {"--dup", Kind::kNumber},
                                  {"--reorder", Kind::kNumber},
                                  {"--fault-profile", Kind::kText},
                                  {"--fault-seed", Kind::kNumber}});
  if (!flags.has_value()) return usage();
  const CliFlags& args = *flags;
  bool device_faults = false;
  auto seed = make_faulty_seed(args, device_faults);
  if (device_faults && seed == nullptr) return usage();

  net::MultiGenSwarmConfig config;
  config.peers = args.size("--peers", 8);
  config.generations = args.size("--generations", 4);
  config.loss_probability = args.number("--loss", 0.0);
  config.rng_seed = static_cast<std::uint64_t>(args.number("--seed", 1));
  config.faults = fault_spec(args);
  const std::string schedule = args.text("--schedule", "random");
  if (schedule == "sequential") {
    config.schedule = net::GenerationSchedule::kSequential;
  } else if (schedule == "rarest") {
    config.schedule = net::GenerationSchedule::kRarestFirst;
  } else if (schedule == "random") {
    config.schedule = net::GenerationSchedule::kRandom;
  } else {
    std::fprintf(stderr, "extnc_sim: unknown schedule '%s'\n",
                 schedule.c_str());
    return usage();
  }
  if (seed != nullptr) {
    config.make_seed_encoder = [&seed](const coding::Params& params,
                                       std::span<const std::uint8_t> content) {
      return seed->bind_content(params, content);
    };
  }
  const auto r = net::run_multigen_swarm(config);
  std::printf("multigen: %zu peers, %zu generations, %s schedule%s\n",
              config.peers, config.generations,
              net::schedule_name(config.schedule),
              seed != nullptr ? ", gpu seed (supervised)" : "");
  std::printf("  completed      : %s (%.1f s)\n",
              r.all_completed ? "yes" : "NO", r.completion_seconds);
  std::printf("  packets        : %zu sent, %zu lost, %zu rejected\n",
              r.packets_sent, r.packets_lost, r.packets_rejected);
  std::printf("  gen half-done  :");
  for (double t : r.generation_half_completion) std::printf(" %.1fs", t);
  std::printf("\n  verified       : %s\n", r.content_verified ? "yes" : "NO");
  if (config.faults.any()) print_faults(r.channel, r.packets_rejected);
  if (seed != nullptr) print_degradation(*seed);
  return r.all_completed ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  if (std::strcmp(argv[1], "swarm") == 0) return cmd_swarm(argc, argv);
  if (std::strcmp(argv[1], "line") == 0) return cmd_line(argc, argv);
  if (std::strcmp(argv[1], "live") == 0) return cmd_live(argc, argv);
  if (std::strcmp(argv[1], "multigen") == 0) return cmd_multigen(argc, argv);
  std::fprintf(stderr, "extnc_sim: unknown subcommand '%s'\n", argv[1]);
  return usage();
}
