// extnc_gf256: inspect the GF(2^8) backend registry of this build.
//
//   --list        available backends on this host, one per line, best
//                 first (what CI iterates when looping the test suite over
//                 EXTNC_GF256_BACKEND)
//   --registered  every backend name compiled into the build, one per
//                 line, whether or not this host supports it
//   --selected    the backend the process resolved (honours
//                 EXTNC_GF256_BACKEND; aborts on an unknown name, exactly
//                 as any coding binary would)
//
// With no arguments, prints a human-readable summary of all three.
#include <cstdio>
#include <cstring>

#include "gf256/region.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--list | --registered | --selected]\n", argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using extnc::gf256::available_backends;
  using extnc::gf256::ops;
  using extnc::gf256::registered_backend_names;

  if (argc > 2) return usage(argv[0]);
  if (argc == 2) {
    if (std::strcmp(argv[1], "--list") == 0) {
      for (const auto* backend : available_backends()) {
        std::printf("%s\n", backend->name);
      }
      return 0;
    }
    if (std::strcmp(argv[1], "--registered") == 0) {
      for (const auto name : registered_backend_names()) {
        std::printf("%.*s\n", static_cast<int>(name.size()), name.data());
      }
      return 0;
    }
    if (std::strcmp(argv[1], "--selected") == 0) {
      std::printf("%s\n", ops().name);
      return 0;
    }
    return usage(argv[0]);
  }

  std::printf("selected:   %s\n", ops().name);
  std::printf("available:  %s\n",
              extnc::gf256::available_backend_list().c_str());
  std::string registered;
  for (const auto name : registered_backend_names()) {
    if (!registered.empty()) registered += ", ";
    registered += name;
  }
  std::printf("registered: %s\n", registered.c_str());
  return 0;
}
