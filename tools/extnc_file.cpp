// extnc_file — command-line coded file transfer.
//
//   extnc_file encode <input> <output.xnc> [options]
//       --n N            blocks per generation       (default 32)
//       --k K            block size, bytes           (default 1024)
//       --redundancy R   extra coded packets, 0.25 = +25%  (default 0)
//       --loss P         simulated drop fraction     (default 0)
//       --corrupt P      simulated bit-flip fraction (default 0)
//       --v1             legacy wire format, no packet checksums
//       --systematic     emit source blocks first
//       --seed S         RNG seed                    (default 1)
//   extnc_file decode <input.xnc> <output>
//   extnc_file info   <input.xnc>
//
// Exit status 0 on success. `encode --loss 0.2 --redundancy 0.3` followed
// by `decode` demonstrates loss recovery end to end; `--corrupt 0.1`
// additionally demonstrates the wire CRC rejecting damaged packets.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/file_transfer.h"
#include "util/file_io.h"

namespace {

using namespace extnc;

int usage() {
  std::fprintf(stderr,
               "usage: extnc_file encode <input> <output.xnc> [--n N] [--k K]"
               " [--redundancy R] [--loss P] [--corrupt P] [--v1]"
               " [--systematic] [--seed S]\n"
               "       extnc_file decode <input.xnc> <output>\n"
               "       extnc_file info   <input.xnc>\n");
  return 2;
}

int cmd_encode(int argc, char** argv) {
  if (argc < 4) return usage();
  net::FileEncodeOptions options;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return ++i < argc ? argv[i] : "";
    };
    if (arg == "--n") {
      options.params.n = std::strtoul(value(), nullptr, 10);
    } else if (arg == "--k") {
      options.params.k = std::strtoul(value(), nullptr, 10);
    } else if (arg == "--redundancy") {
      options.redundancy = std::strtod(value(), nullptr);
    } else if (arg == "--loss") {
      options.loss = std::strtod(value(), nullptr);
    } else if (arg == "--corrupt") {
      options.corruption = std::strtod(value(), nullptr);
    } else if (arg == "--v1") {
      options.wire_format = coding::WireFormat::kV1;
    } else if (arg == "--seed") {
      options.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--systematic") {
      options.systematic = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage();
    }
  }
  if (options.params.n == 0 || options.params.k == 0) {
    std::fprintf(stderr, "invalid --n/--k\n");
    return 2;
  }
  const auto content = read_file(argv[2]);
  if (!content.has_value()) {
    std::fprintf(stderr, "cannot read %s\n", argv[2]);
    return 1;
  }
  const auto container = net::encode_file(*content, options);
  if (!write_file(argv[3], container)) {
    std::fprintf(stderr, "cannot write %s\n", argv[3]);
    return 1;
  }
  std::printf("%s: %zu bytes -> %zu coded bytes (n=%zu, k=%zu, "
              "redundancy=%.0f%%, loss=%.0f%%, corrupt=%.0f%%)\n",
              argv[3], content->size(), container.size(), options.params.n,
              options.params.k, 100 * options.redundancy, 100 * options.loss,
              100 * options.corruption);
  return 0;
}

int cmd_decode(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto container = read_file(argv[2]);
  if (!container.has_value()) {
    std::fprintf(stderr, "cannot read %s\n", argv[2]);
    return 1;
  }
  const net::FileDecodeResult result = net::decode_file(*container);
  if (!result.ok) {
    std::fprintf(stderr, "decode failed: %s\n", result.error.c_str());
    return 1;
  }
  if (!write_file(argv[3], result.content)) {
    std::fprintf(stderr, "cannot write %s\n", argv[3]);
    return 1;
  }
  std::printf("%s: %zu bytes (packets: %zu used, %zu dependent, %zu "
              "rejected)\n",
              argv[3], result.content.size(), result.packets_used,
              result.packets_dependent, result.packets_rejected);
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto container = read_file(argv[2]);
  if (!container.has_value()) {
    std::fprintf(stderr, "cannot read %s\n", argv[2]);
    return 1;
  }
  const auto info = net::describe_file(*container);
  if (!info.has_value()) {
    std::fprintf(stderr, "%s: not a coded file container\n", argv[2]);
    return 1;
  }
  std::printf("coded file container\n");
  std::printf("  generation shape : n=%zu blocks x k=%zu bytes\n",
              info->params.n, info->params.k);
  std::printf("  content length   : %llu bytes\n",
              static_cast<unsigned long long>(info->content_bytes));
  std::printf("  generations      : %u\n", info->generations);
  std::printf("  packets          : %u (%.1f%% of minimum)\n", info->packets,
              100.0 * info->packets /
                  (static_cast<double>(info->generations) * info->params.n));
  std::printf("  wire format      : %s\n",
              info->wire_format == coding::WireFormat::kV2
                  ? "XNC2 (CRC32C per packet)"
                  : "XNC1 (legacy, no checksums)");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  if (std::strcmp(argv[1], "encode") == 0) return cmd_encode(argc, argv);
  if (std::strcmp(argv[1], "decode") == 0) return cmd_decode(argc, argv);
  if (std::strcmp(argv[1], "info") == 0) return cmd_info(argc, argv);
  return usage();
}
