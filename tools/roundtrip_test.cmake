# CTest script: end-to-end extnc_file round trip (encode with redundancy
# and simulated loss, then decode and byte-compare).
#
# Invoked as:
#   cmake -DTOOL=<path-to-extnc_file> -DWORK=<scratch-dir> -P roundtrip_test.cmake

if(NOT DEFINED TOOL OR NOT DEFINED WORK)
  message(FATAL_ERROR "pass -DTOOL=... and -DWORK=...")
endif()

file(MAKE_DIRECTORY "${WORK}")
set(input "${WORK}/input.bin")
set(container "${WORK}/input.xnc")
set(output "${WORK}/output.bin")

# Deterministic ~37 KB test content.
string(REPEAT "network coding round trip payload 0123456789abcdef" 768 blob)
file(WRITE "${input}" "${blob}")

execute_process(
  COMMAND "${TOOL}" encode "${input}" "${container}"
          --n 16 --k 512 --redundancy 1.0 --loss 0.25 --seed 3
  RESULT_VARIABLE encode_result)
if(NOT encode_result EQUAL 0)
  message(FATAL_ERROR "encode failed: ${encode_result}")
endif()

execute_process(COMMAND "${TOOL}" info "${container}" RESULT_VARIABLE info_result)
if(NOT info_result EQUAL 0)
  message(FATAL_ERROR "info failed: ${info_result}")
endif()

execute_process(
  COMMAND "${TOOL}" decode "${container}" "${output}"
  RESULT_VARIABLE decode_result)
if(NOT decode_result EQUAL 0)
  message(FATAL_ERROR "decode failed: ${decode_result}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files "${input}" "${output}"
  RESULT_VARIABLE compare_result)
if(NOT compare_result EQUAL 0)
  message(FATAL_ERROR "decoded file differs from input")
endif()

# Garbage input must be rejected with a nonzero exit, not a crash.
file(WRITE "${WORK}/garbage.xnc" "this is not a coded container")
execute_process(
  COMMAND "${TOOL}" decode "${WORK}/garbage.xnc" "${WORK}/garbage.out"
  RESULT_VARIABLE garbage_result)
if(garbage_result EQUAL 0)
  message(FATAL_ERROR "decode of garbage unexpectedly succeeded")
endif()

message(STATUS "extnc_file round trip OK")
