# CTest script: cross-process crash recovery for extnc_serve.
#
# Three runs of the same scenario:
#   1. baseline — no crash; record the delivered-payload digest.
#   2. crash    — the plan kills the service mid-run; the process must
#                 exit 3 and persist its journal to --journal PATH.
#   3. recover  — a fresh process rebuilds from that journal and finishes;
#                 its digest must equal the baseline's (byte-identical
#                 deliveries across the crash boundary).
# A corrupted journal must be refused with a nonzero exit, not a crash.
#
# Invoked as:
#   cmake -DTOOL=<path-to-extnc_serve> -DWORK=<scratch-dir> -P chaos_test.cmake

if(NOT DEFINED TOOL OR NOT DEFINED WORK)
  message(FATAL_ERROR "pass -DTOOL=... and -DWORK=...")
endif()

file(MAKE_DIRECTORY "${WORK}")
set(journal "${WORK}/service.xncj")
set(common
  --devices 2 --segments 3 --load 0.4 --duration 0.05 --seed 11
  --deadline-factor 1e6 --json)

# Pull "delivered_digest": "xxxxxxxx" out of a run's JSON report.
function(extract_digest text out)
  string(REGEX MATCH "\"delivered_digest\": \"([0-9a-f]+)\"" _ "${text}")
  if(NOT CMAKE_MATCH_1)
    message(FATAL_ERROR "no delivered_digest in report: ${text}")
  endif()
  set(${out} "${CMAKE_MATCH_1}" PARENT_SCOPE)
endfunction()

execute_process(
  COMMAND "${TOOL}" ${common}
  RESULT_VARIABLE baseline_result OUTPUT_VARIABLE baseline_out)
if(NOT baseline_result EQUAL 0)
  message(FATAL_ERROR "baseline run failed: ${baseline_result}")
endif()
extract_digest("${baseline_out}" baseline_digest)

execute_process(
  COMMAND "${TOOL}" ${common}
          --plan "crash@0.02,recover@0.025" --journal "${journal}"
  RESULT_VARIABLE crash_result OUTPUT_VARIABLE crash_out)
if(NOT crash_result EQUAL 3)
  message(FATAL_ERROR "crashed run exited ${crash_result}, want 3")
endif()
if(NOT EXISTS "${journal}")
  message(FATAL_ERROR "crashed run left no journal at ${journal}")
endif()

execute_process(
  COMMAND "${TOOL}" ${common}
          --plan "crash@0.02,recover@0.025" --journal "${journal}"
          --recover --recover-at 0.025
  RESULT_VARIABLE recover_result OUTPUT_VARIABLE recover_out)
if(NOT recover_result EQUAL 0)
  message(FATAL_ERROR "recovered run failed: ${recover_result}")
endif()
extract_digest("${recover_out}" recover_digest)

if(NOT recover_digest STREQUAL baseline_digest)
  message(FATAL_ERROR "recovered digest ${recover_digest} differs from "
                      "uncrashed baseline ${baseline_digest}")
endif()
if(NOT recover_out MATCHES "\"recovered\": true")
  message(FATAL_ERROR "recovered run does not report recovered=true")
endif()

# A journal from a different configuration must be refused.
execute_process(
  COMMAND "${TOOL}" ${common} --seed 999 --journal "${journal}" --recover
  RESULT_VARIABLE foreign_result OUTPUT_QUIET ERROR_QUIET)
if(foreign_result EQUAL 0)
  message(FATAL_ERROR "recovery from a foreign journal unexpectedly succeeded")
endif()

# ...and so must a corrupt one.
file(WRITE "${WORK}/corrupt.xncj" "this is not a journal")
execute_process(
  COMMAND "${TOOL}" ${common} --journal "${WORK}/corrupt.xncj" --recover
  RESULT_VARIABLE corrupt_result OUTPUT_QUIET ERROR_QUIET)
if(corrupt_result EQUAL 0)
  message(FATAL_ERROR "recovery from a corrupt journal unexpectedly succeeded")
endif()

message(STATUS "extnc_serve crash/recover chaos gate OK "
               "(digest ${baseline_digest})")
