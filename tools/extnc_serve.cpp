// extnc_serve — run the fleet coding service against a scripted scenario.
//
//   extnc_serve [--devices N] [--device gtx280|8800gt|mixed]
//               [--n N] [--k K] [--segments N]
//               [--load X] [--duration S] [--seed S]
//               [--policy reject|oldest|degrade] [--capacity N]
//               [--tenants "name:weight:priority,..."]
//               [--plan SPEC] [--fault-profile SPEC] [--fault-seed N]
//               [--hedge-factor X] [--deadline-factor X] [--no-verify]
//               [--journal PATH] [--recover] [--recover-at T]
//               [--json] [--min-completed N]
//
// --plan scripts the fleet scenario (serve::FleetPlan grammar):
//   kill@<t>:<dev>,restore@<t>:<dev>,load@<t>:<mult>,
//   crash@<t>,recover@<t>,tenantburst@<t>:<name>:<mult>
// --fault-profile scripts per-device faults (simgpu::FaultPlan grammar):
//   hang@3,flip@7,lost@12,pfail=0.01
//
// Crash recovery across processes: a run whose plan crashes (crash@t)
// persists its journal to --journal PATH and exits 3; a second invocation
// with the SAME configuration plus --recover [--recover-at T] rebuilds the
// service from that journal and finishes the scenario. The deterministic
// seeds make the recovered run's deliveries byte-identical to an
// uncrashed run (compare "delivered_digest").
//
// Prints the service report (volume, terminal-state accounting, shed
// breakdown, resilience events, crash/ramp/tenant accounting, p50/p90/p99
// latency for the healthy and faulted phases, per-device health). Exit
// status is the robustness contract, so CI can soak it directly:
//   0  every arrival in exactly one terminal state, zero bit-exactness
//      failures, zero decode mismatches (and --min-completed met);
//   1  the contract was violated;
//   2  bad usage;
//   3  the plan crashed the service (partial report; journal persisted
//      when --journal was given).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "serve/service.h"
#include "simgpu/device_spec.h"
#include "util/cli_flags.h"

namespace {

using namespace extnc;
using Kind = CliFlag::Kind;

int usage() {
  std::fprintf(
      stderr,
      "usage: extnc_serve [options]\n"
      "  fleet:    --devices N --device gtx280|8800gt|mixed --n N --k K\n"
      "  load:     --load X --duration S --segments N --seed S\n"
      "  admission:--policy reject|oldest|degrade --capacity N\n"
      "            --tenants \"name:weight:priority,...\" (priority: "
      "interactive|standard|besteffort)\n"
      "  scenario: --plan \"kill@t:dev,restore@t:dev,load@t:mult,"
      "crash@t,recover@t,tenantburst@t:name:mult\"\n"
      "            --fault-profile \"hang@3,flip@7,pfail=0.01\" "
      "--fault-seed N\n"
      "  tuning:   --hedge-factor X --deadline-factor X --no-verify\n"
      "  recovery: --journal PATH (persist journal; crash exits 3)\n"
      "            --recover [--recover-at T] (rebuild from --journal)\n"
      "  output:   --json --min-completed N\n");
  return 2;
}

bool read_file(const std::string& path, std::vector<std::uint8_t>* out) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return false;
  out->clear();
  std::uint8_t chunk[4096];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    out->insert(out->end(), chunk, chunk + got);
  }
  const bool ok = std::ferror(file) == 0;
  std::fclose(file);
  return ok;
}

bool write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  const bool ok =
      bytes.empty() || std::fwrite(bytes.data(), 1, bytes.size(), file) ==
                           bytes.size();
  return std::fclose(file) == 0 && ok;
}

// "name:weight:priority,..." -> TenantSpec table; false on any bad field.
bool parse_tenants(const std::string& spec,
                   std::vector<serve::TenantSpec>* out, std::string* error) {
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string token = spec.substr(begin, end - begin);
    begin = end + 1;
    if (token.empty()) {
      *error = "empty tenant token";
      return false;
    }
    const std::size_t first = token.find(':');
    const std::size_t second =
        first == std::string::npos ? std::string::npos
                                   : token.find(':', first + 1);
    if (first == std::string::npos || second == std::string::npos) {
      *error = "tenant '" + token + "': want name:weight:priority";
      return false;
    }
    serve::TenantSpec tenant;
    tenant.name = token.substr(0, first);
    char* rest = nullptr;
    const std::string weight = token.substr(first + 1, second - first - 1);
    tenant.weight = std::strtod(weight.c_str(), &rest);
    if (tenant.name.empty() || rest == weight.c_str() || *rest != '\0' ||
        !(tenant.weight > 0)) {
      *error = "tenant '" + token + "': bad name or weight";
      return false;
    }
    const auto priority = serve::parse_priority(token.substr(second + 1));
    if (!priority.has_value()) {
      *error = "tenant '" + token + "': unknown priority '" +
               token.substr(second + 1) + "'";
      return false;
    }
    tenant.priority = *priority;
    out->push_back(std::move(tenant));
    if (end == spec.size()) break;
  }
  return !out->empty();
}

void print_quantiles(const char* label, const StreamingHistogram& histogram) {
  if (histogram.count() == 0) {
    std::printf("  %-22s: (no samples)\n", label);
    return;
  }
  std::printf("  %-22s: p50 %.3fms  p90 %.3fms  p99 %.3fms  (%llu samples)\n",
              label, histogram.quantile(0.50) * 1e3,
              histogram.quantile(0.90) * 1e3, histogram.quantile(0.99) * 1e3,
              static_cast<unsigned long long>(histogram.count()));
}

void json_quantiles(const char* key, const StreamingHistogram& histogram,
                    const char* suffix) {
  std::printf("  \"%s\": {\"count\": %llu", key,
              static_cast<unsigned long long>(histogram.count()));
  if (histogram.count() > 0) {
    std::printf(", \"p50_s\": %.9f, \"p90_s\": %.9f, \"p99_s\": %.9f",
                histogram.quantile(0.50), histogram.quantile(0.90),
                histogram.quantile(0.99));
  }
  std::printf("}%s\n", suffix);
}

void print_report(const serve::ServiceReport& report, bool json) {
  auto u = [](std::uint64_t v) { return static_cast<unsigned long long>(v); };
  if (json) {
    std::printf("{\n");
    std::printf("  \"arrivals\": %llu,\n", u(report.arrivals));
    std::printf("  \"admitted\": %llu,\n", u(report.admitted));
    std::printf("  \"completed\": %llu,\n", u(report.completed));
    std::printf("  \"degraded\": %llu,\n", u(report.degraded));
    std::printf("  \"shed\": %llu,\n", u(report.shed));
    std::printf("  \"failed\": %llu,\n", u(report.failed));
    std::printf("  \"shed_rejected\": %llu,\n", u(report.shed_rejected));
    std::printf("  \"shed_evicted\": %llu,\n", u(report.shed_evicted));
    std::printf("  \"shed_deadline\": %llu,\n", u(report.shed_deadline));
    std::printf("  \"hedges\": %llu,\n", u(report.hedges));
    std::printf("  \"hedge_wins\": %llu,\n", u(report.hedge_wins));
    std::printf("  \"stale_completions\": %llu,\n",
                u(report.stale_completions));
    std::printf("  \"redispatches\": %llu,\n", u(report.redispatches));
    std::printf("  \"segments_served\": %llu,\n", u(report.segments_served));
    std::printf("  \"bitexact_failures\": %llu,\n",
                u(report.bitexact_failures));
    std::printf("  \"decode_mismatches\": %llu,\n",
                u(report.decode_mismatches));
    std::printf("  \"rank_short_segments\": %llu,\n",
                u(report.rank_short_segments));
    std::printf("  \"ladder_transitions\": %llu,\n",
                u(report.ladder_transitions));
    std::printf("  \"mode_dispatches\": {");
    for (std::size_t m = 0; m < serve::kServiceModes; ++m) {
      std::printf("\"%s\": %llu%s",
                  serve::service_mode_name(
                      static_cast<serve::ServiceMode>(m)),
                  u(report.mode_dispatches[m]),
                  m + 1 < serve::kServiceModes ? ", " : "},\n");
    }
    json_quantiles("segment_latency", report.segment_latency_s, ",");
    json_quantiles("segment_latency_healthy",
                   report.segment_latency_healthy_s, ",");
    json_quantiles("segment_latency_faulted",
                   report.segment_latency_faulted_s, ",");
    json_quantiles("session_latency", report.session_latency_s, ",");
    std::printf("  \"crashed\": %s,\n", report.crashed ? "true" : "false");
    std::printf("  \"recovered\": %s,\n", report.recovered ? "true" : "false");
    std::printf("  \"recoveries\": %llu,\n", u(report.recoveries));
    std::printf("  \"journal_records\": %zu,\n", report.journal_records);
    std::printf("  \"journal_dropped_bytes\": %zu,\n",
                report.journal_dropped_bytes);
    std::printf("  \"delivered_digest\": \"%08x\",\n", report.delivered_digest);
    std::printf("  \"ramp_collapses\": %llu,\n", u(report.ramp_collapses));
    std::printf("  \"ramp_events\": [");
    for (std::size_t i = 0; i < report.ramp_events.size(); ++i) {
      const auto& e = report.ramp_events[i];
      std::printf("{\"at_s\": %.6f, \"device\": %zu, \"stage\": %d}%s", e.at,
                  e.device, e.stage,
                  i + 1 < report.ramp_events.size() ? ", " : "");
    }
    std::printf("],\n");
    std::printf("  \"tenants\": [");
    for (std::size_t i = 0; i < report.tenants.size(); ++i) {
      const serve::TenantReport& t = report.tenants[i];
      std::printf("{\"name\": \"%s\", \"arrivals\": %llu, "
                  "\"completed\": %llu, \"degraded\": %llu, "
                  "\"shed\": %llu, \"failed\": %llu}%s",
                  t.name.c_str(), u(t.arrivals), u(t.completed),
                  u(t.degraded), u(t.shed), u(t.failed),
                  i + 1 < report.tenants.size() ? ", " : "");
    }
    std::printf("],\n");
    std::printf("  \"nominal_segment_s\": %.9f,\n", report.nominal_segment_s);
    std::printf("  \"offered_rate_hz\": %.3f,\n", report.offered_rate_hz);
    std::printf("  \"sim_end_s\": %.6f,\n", report.sim_end_s);
    std::printf("  \"devices\": [\n");
    for (std::size_t i = 0; i < report.devices.size(); ++i) {
      const serve::DeviceHealth& d = report.devices[i];
      std::printf("    {\"device\": %zu, \"alive\": %s, "
                  "\"breaker_open\": %s, \"epoch\": %llu, "
                  "\"ramp_stage\": %d, "
                  "\"segments\": %llu, \"gpu\": %llu, \"cpu\": %llu, "
                  "\"retries\": %llu, \"faults\": %llu}%s\n",
                  d.index, d.alive ? "true" : "false",
                  d.breaker_open ? "true" : "false", u(d.epoch),
                  d.ramp_stage, u(d.segments), u(d.gpu_segments),
                  u(d.cpu_segments), u(d.totals.retries),
                  u(d.faults.faults()),
                  i + 1 < report.devices.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
    return;
  }

  std::printf("fleet service: %llu arrivals at %.0f/s offered "
              "(nominal segment %.3fms), sim end %.3fs\n",
              u(report.arrivals), report.offered_rate_hz,
              report.nominal_segment_s * 1e3, report.sim_end_s);
  std::printf("  terminal states       : %llu completed, %llu degraded, "
              "%llu shed, %llu failed%s\n",
              u(report.completed), u(report.degraded), u(report.shed),
              u(report.failed),
              report.accounting_exact() ? "" : "  [ACCOUNTING MISMATCH]");
  std::printf("  shed breakdown        : %llu rejected, %llu evicted, "
              "%llu deadline\n",
              u(report.shed_rejected), u(report.shed_evicted),
              u(report.shed_deadline));
  std::printf("  resilience            : %llu hedges (%llu wins), "
              "%llu stale completions, %llu re-dispatches\n",
              u(report.hedges), u(report.hedge_wins),
              u(report.stale_completions), u(report.redispatches));
  std::printf("  verification          : %llu segments, %llu bit-exactness "
              "failures, %llu decode mismatches, %llu rank-short\n",
              u(report.segments_served), u(report.bitexact_failures),
              u(report.decode_mismatches), u(report.rank_short_segments));
  std::printf("  degradation           : %llu ladder transitions; dispatches",
              u(report.ladder_transitions));
  for (std::size_t m = 0; m < serve::kServiceModes; ++m) {
    std::printf(" %s=%llu",
                serve::service_mode_name(static_cast<serve::ServiceMode>(m)),
                u(report.mode_dispatches[m]));
  }
  std::printf("\n");
  if (report.crashed || report.recovered || report.recoveries > 0) {
    std::printf("  crash recovery        : %s%s%llu recoveries, "
                "journal %zu records (%zu torn bytes dropped)\n",
                report.crashed ? "CRASHED (partial report), " : "",
                report.recovered ? "recovered from journal, " : "",
                u(report.recoveries), report.journal_records,
                report.journal_dropped_bytes);
  }
  if (!report.ramp_events.empty() || report.ramp_collapses > 0) {
    std::printf("  restore ramp          : %zu stage events, %llu collapses\n",
                report.ramp_events.size(), u(report.ramp_collapses));
  }
  std::printf("  delivered digest      : %08x\n", report.delivered_digest);
  for (const serve::TenantReport& t : report.tenants) {
    std::printf("  tenant %-15s: %llu arrivals, %llu completed, "
                "%llu degraded, %llu shed, %llu failed\n",
                t.name.c_str(), u(t.arrivals), u(t.completed), u(t.degraded),
                u(t.shed), u(t.failed));
  }
  print_quantiles("segment latency", report.segment_latency_s);
  print_quantiles("  healthy phase", report.segment_latency_healthy_s);
  print_quantiles("  faulted phase", report.segment_latency_faulted_s);
  print_quantiles("session latency", report.session_latency_s);
  for (const serve::DeviceHealth& d : report.devices) {
    std::printf("  dev%zu: %s%s%s epoch %llu, %llu segments "
                "(%llu gpu, %llu cpu), %llu retries, %llu faults injected\n",
                d.index, d.alive ? "alive" : "DEAD",
                d.breaker_open ? " breaker-open" : "",
                d.ramp_stage < serve::kRampStages ? " ramping" : "",
                u(d.epoch), u(d.segments), u(d.gpu_segments),
                u(d.cpu_segments), u(d.totals.retries),
                u(d.faults.faults()));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string error;
  const auto flags =
      CliFlags::parse(argc, argv, 1,
                      {{"--devices", Kind::kSize},
                       {"--device", Kind::kText},
                       {"--n", Kind::kSize},
                       {"--k", Kind::kSize},
                       {"--segments", Kind::kSize},
                       {"--load", Kind::kNumber},
                       {"--duration", Kind::kNumber},
                       {"--seed", Kind::kNumber},
                       {"--policy", Kind::kText},
                       {"--capacity", Kind::kSize},
                       {"--plan", Kind::kText},
                       {"--fault-profile", Kind::kText},
                       {"--fault-seed", Kind::kNumber},
                       {"--hedge-factor", Kind::kNumber},
                       {"--deadline-factor", Kind::kNumber},
                       {"--no-verify", Kind::kBool},
                       {"--tenants", Kind::kText},
                       {"--journal", Kind::kText},
                       {"--recover", Kind::kBool},
                       {"--recover-at", Kind::kNumber},
                       {"--json", Kind::kBool},
                       {"--min-completed", Kind::kSize}},
                      &error);
  if (!flags.has_value()) {
    std::fprintf(stderr, "extnc_serve: %s\n", error.c_str());
    return usage();
  }
  const CliFlags& args = *flags;

  serve::ServiceConfig config;
  config.fleet.params = {.n = args.size("--n", 16),
                         .k = args.size("--k", 256)};
  const std::size_t devices = args.size("--devices", 3);
  const std::string device = args.text("--device", "gtx280");
  for (std::size_t i = 0; i < devices; ++i) {
    if (device == "gtx280") {
      config.fleet.devices.push_back(simgpu::gtx280());
    } else if (device == "8800gt") {
      config.fleet.devices.push_back(simgpu::geforce_8800gt());
    } else if (device == "mixed") {
      config.fleet.devices.push_back(i % 2 == 0 ? simgpu::gtx280()
                                                : simgpu::geforce_8800gt());
    } else {
      std::fprintf(stderr, "extnc_serve: unknown --device '%s'\n",
                   device.c_str());
      return usage();
    }
  }
  config.segments_per_session = args.size("--segments", 4);
  config.offered_load = args.number("--load", 0.7);
  config.duration_s = args.number("--duration", 0.1);
  config.seed = static_cast<std::uint64_t>(args.number("--seed", 1));
  config.hedge_factor = args.number("--hedge-factor", config.hedge_factor);
  config.deadline_factor =
      args.number("--deadline-factor", config.deadline_factor);
  config.verify_decode = !args.has("--no-verify");
  config.admission.capacity = args.size("--capacity", 32);

  const std::string policy = args.text("--policy", "reject");
  const auto parsed_policy = serve::parse_shed_policy(policy);
  if (!parsed_policy.has_value()) {
    std::fprintf(stderr, "extnc_serve: unknown --policy '%s'\n",
                 policy.c_str());
    return usage();
  }
  config.admission.policy = *parsed_policy;

  const std::string tenants = args.text("--tenants", "");
  if (!tenants.empty() &&
      !parse_tenants(tenants, &config.tenants, &error)) {
    std::fprintf(stderr, "extnc_serve: bad --tenants: %s\n", error.c_str());
    return usage();
  }

  const std::string plan = args.text("--plan", "");
  if (!plan.empty()) {
    const auto parsed_plan = serve::FleetPlan::parse(plan, &error);
    if (!parsed_plan.has_value()) {
      std::fprintf(stderr, "extnc_serve: bad --plan: %s\n", error.c_str());
      return usage();
    }
    if (const auto problem = parsed_plan->validate(devices)) {
      std::fprintf(stderr, "extnc_serve: bad --plan: %s\n", problem->c_str());
      return usage();
    }
    for (const serve::TenantBurst& burst : parsed_plan->bursts) {
      bool known = config.tenants.empty() && burst.tenant == "default";
      for (const serve::TenantSpec& tenant : config.tenants) {
        known = known || tenant.name == burst.tenant;
      }
      if (!known) {
        std::fprintf(stderr,
                     "extnc_serve: --plan tenantburst names unknown tenant "
                     "'%s' (declare it with --tenants)\n",
                     burst.tenant.c_str());
        return usage();
      }
    }
    config.plan = *parsed_plan;
  }

  const std::string profile = args.text("--fault-profile", "");
  if (!profile.empty()) {
    const auto parsed_faults = simgpu::FaultPlan::parse(
        profile, static_cast<std::uint64_t>(args.number("--fault-seed", 1)));
    if (!parsed_faults.has_value()) {
      std::fprintf(stderr, "extnc_serve: bad --fault-profile '%s'\n",
                   profile.c_str());
      return usage();
    }
    config.fleet.faults = *parsed_faults;
  }

  const std::size_t min_completed = args.size("--min-completed", 0);
  const bool json = args.has("--json");
  const std::string journal_path = args.text("--journal", "");

  std::unique_ptr<serve::CodingService> service;
  if (args.has("--recover")) {
    if (journal_path.empty()) {
      std::fprintf(stderr, "extnc_serve: --recover needs --journal PATH\n");
      return usage();
    }
    std::vector<std::uint8_t> journal;
    if (!read_file(journal_path, &journal)) {
      std::fprintf(stderr, "extnc_serve: cannot read journal '%s'\n",
                   journal_path.c_str());
      return usage();
    }
    std::optional<double> recover_at;
    if (args.has("--recover-at")) {
      recover_at = args.number("--recover-at", 0);
    }
    service = serve::CodingService::recover(std::move(config), journal,
                                            recover_at);
    if (service == nullptr) {
      std::fprintf(stderr,
                   "extnc_serve: journal '%s' is unusable (corrupt header "
                   "or from a different configuration)\n",
                   journal_path.c_str());
      return 1;
    }
  } else {
    service = std::make_unique<serve::CodingService>(std::move(config));
  }

  const serve::ServiceReport report = service->run();
  print_report(report, json);

  if (!journal_path.empty() &&
      !write_file(journal_path, service->journal_bytes())) {
    std::fprintf(stderr, "extnc_serve: cannot write journal '%s'\n",
                 journal_path.c_str());
    return 1;
  }

  // A scripted crash ends the process here: the report is partial (the
  // accounting is deliberately open) and the journal just persisted is
  // what a --recover invocation resumes from.
  if (report.crashed) return 3;

  // The robustness contract CI soaks against.
  if (!report.accounting_exact()) return 1;
  if (report.bitexact_failures != 0) return 1;
  if (report.decode_mismatches != 0) return 1;
  if (report.completed < min_completed) {
    std::fprintf(stderr,
                 "extnc_serve: only %llu sessions completed "
                 "(--min-completed %zu)\n",
                 static_cast<unsigned long long>(report.completed),
                 min_completed);
    return 1;
  }
  return 0;
}
