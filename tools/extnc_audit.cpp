// extnc_audit — static pre-launch audit of every shipped kernel.
//
//   extnc_audit [--device gtx280|8800gt|all] [--n N] [--k K] [--blocks B]
//               [--class uniform|stride64|sparse] [--zero-every N]
//               [--conflict-threshold D] [--uncoalesced-threshold T]
//               [--verbose]
//
// Derives the static access-pattern model of each kernel (the seven
// encode schemes, both preprocess kernels, the multi-segment inverter and
// the recoder) from DeviceSpec + geometry alone — no kernel runs — and
// audits geometry, shared/global footprints (OOB-freedom) and barrier
// structure, with advisory bank-conflict / uncoalesced lints. Prints one
// line per kernel with its closed-form access summary. Exit 1 if any
// audit *error* fires; advisories are printed but never affect the exit
// code (same contract as the dynamic sanitizer).
//
//   extnc_audit --seed-bug oob-tail|divergent-barrier|conflict-regression
//
// Negative controls: substitutes one deliberately mis-modeled kernel and
// exits 1 when the audit catches it (CTest WILL_FAIL asserts each class
// is caught; exit 0 would mean the audit lost its teeth).
#include <cstdio>
#include <string>
#include <vector>

#include "gpu/kernel_audit.h"
#include "simgpu/device_spec.h"
#include "simgpu/static_model.h"
#include "util/cli_flags.h"

namespace {

using namespace extnc;
using gpu::AuditCase;
using gpu::AuditFinding;
using gpu::AuditOptions;
using gpu::AuditReport;

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "extnc_audit: %s\n", message.c_str());
  std::exit(2);
}

void print_case(const AuditCase& c, bool verbose) {
  const simgpu::KernelMetrics totals = c.model.totals();
  std::size_t errors = 0;
  std::size_t advisories = 0;
  for (const AuditFinding& f : c.findings) {
    if (f.advisory) {
      ++advisories;
    } else {
      ++errors;
    }
  }
  std::printf(
      "  %-28s %-5s %4zux%-3zu deg<=%-2llu tx<=%-2llu "
      "(%llu shared, %llu tx, %llu tex, %zu errors, %zu advisories)\n",
      c.kernel.c_str(), errors == 0 ? "clean" : "DIRTY", c.model.blocks,
      c.model.threads_per_block,
      static_cast<unsigned long long>(c.model.max_conflict_degree()),
      static_cast<unsigned long long>(c.model.max_group_transactions()),
      static_cast<unsigned long long>(totals.shared_accesses),
      static_cast<unsigned long long>(totals.global_transactions),
      static_cast<unsigned long long>(totals.texture_fetches), errors,
      advisories);
  for (const AuditFinding& f : c.findings) {
    if (!f.advisory || verbose) {
      std::printf("    [%s%s] %s\n", gpu::audit_kind_name(f.kind),
                  f.advisory ? " advisory" : "", f.detail.c_str());
    }
  }
  if (verbose) {
    for (const simgpu::SegmentModel& seg : c.model.segments) {
      std::printf(
          "    segment %-16s width %-4zu deg<=%-2llu "
          "(%llu events, %llu cycles)\n",
          seg.name.c_str(), seg.step_width,
          static_cast<unsigned long long>(seg.max_conflict_degree()),
          static_cast<unsigned long long>(seg.counters.shared_access_events),
          static_cast<unsigned long long>(
              seg.counters.shared_serialized_cycles));
    }
    for (const simgpu::FootprintRegion& region : c.model.footprint) {
      std::printf("    footprint %-18s %s %zu / %zu bytes\n",
                  region.name.c_str(), region.written ? "writes" : "reads",
                  region.bytes_needed, region.bytes_registered);
    }
  }
}

int audit_device(const simgpu::DeviceSpec& spec, const AuditOptions& options,
                 bool verbose) {
  const AuditReport report = gpu::run_kernel_audit(spec, options);
  std::printf("extnc_audit: %zu kernel models on %s (n=%zu, k=%zu, "
              "batch=%zu)\n",
              report.cases.size(), spec.name, options.params.n,
              options.params.k, options.batch_blocks);
  for (const AuditCase& c : report.cases) print_case(c, verbose);
  std::printf("extnc_audit: %s on %s (%zu errors, %zu advisories)\n",
              report.clean() ? "clean" : "FAILED", spec.name,
              report.error_count, report.advisory_count);
  return report.clean() ? 0 : 1;
}

int run_seed_bug(const simgpu::DeviceSpec& spec, const AuditOptions& options,
                 const std::string& name) {
  gpu::AuditSeedBug bug;
  if (name == "oob-tail") {
    bug = gpu::AuditSeedBug::kOobTail;
  } else if (name == "divergent-barrier") {
    bug = gpu::AuditSeedBug::kDivergentBarrier;
  } else if (name == "conflict-regression") {
    bug = gpu::AuditSeedBug::kConflictRegression;
  } else {
    die("unknown seed bug '" + name +
        "' (expected oob-tail, divergent-barrier or conflict-regression)");
  }
  const AuditReport report = gpu::run_seeded_audit(spec, options, bug);
  for (const AuditCase& c : report.cases) print_case(c, true);
  // The conflict regression surfaces as an advisory (bank-conflict lint at
  // the full degree); the footprint and barrier bugs as errors. Either way
  // a caught defect exits 1 for the WILL_FAIL harness.
  const bool caught = report.error_count > 0 || report.advisory_count > 0;
  std::printf("extnc_audit: seeded %s %s\n", name.c_str(),
              caught ? "caught" : "MISSED");
  return caught ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string error;
  const auto flags = CliFlags::parse(
      argc, argv, 1,
      {{"--device", CliFlag::Kind::kText},
       {"--n", CliFlag::Kind::kSize},
       {"--k", CliFlag::Kind::kSize},
       {"--blocks", CliFlag::Kind::kSize},
       {"--class", CliFlag::Kind::kText},
       {"--zero-every", CliFlag::Kind::kSize},
       {"--conflict-threshold", CliFlag::Kind::kSize},
       {"--uncoalesced-threshold", CliFlag::Kind::kSize},
       {"--seed-bug", CliFlag::Kind::kText},
       {"--verbose", CliFlag::Kind::kBool}},
      &error);
  if (!flags) die(error);

  AuditOptions options;
  options.params.n = flags->size("--n", options.params.n);
  options.params.k = flags->size("--k", options.params.k);
  options.batch_blocks = flags->size("--blocks", options.batch_blocks);
  options.bank_conflict_threshold =
      flags->size("--conflict-threshold", options.bank_conflict_threshold);
  options.uncoalesced_threshold =
      flags->size("--uncoalesced-threshold", options.uncoalesced_threshold);
  options.assume.coeff_zero_every = flags->size("--zero-every", 0);
  const std::string cls = flags->text("--class", "uniform");
  if (cls == "uniform") {
    options.assume.payload_class = gpu::PayloadClass::kUniform;
  } else if (cls == "stride64") {
    options.assume.payload_class = gpu::PayloadClass::kStride64;
  } else if (cls == "sparse") {
    options.assume.payload_class = gpu::PayloadClass::kSparse;
  } else {
    die("unknown payload class '" + cls +
        "' (expected uniform, stride64 or sparse)");
  }
  if (options.params.n % 4 != 0 || options.params.k % 4 != 0) {
    die("--n and --k must be multiples of 4");
  }

  const std::string device = flags->text("--device", "gtx280");
  std::vector<const simgpu::DeviceSpec*> specs;
  if (device == "all") {
    specs = {&simgpu::gtx280(), &simgpu::geforce_8800gt()};
  } else if (device == "gtx280") {
    specs = {&simgpu::gtx280()};
  } else if (device == "8800gt") {
    specs = {&simgpu::geforce_8800gt()};
  } else {
    die("unknown device '" + device + "' (expected gtx280, 8800gt or all)");
  }

  if (flags->has("--seed-bug")) {
    return run_seed_bug(*specs.front(), options,
                        flags->text("--seed-bug", ""));
  }
  int exit_code = 0;
  for (const simgpu::DeviceSpec* spec : specs) {
    exit_code |= audit_device(*spec, options, flags->has("--verbose"));
  }
  return exit_code;
}
