#include "codes/lt_code.h"

#include <cstring>

#include <gtest/gtest.h>

namespace extnc::codes {
namespace {

TEST(Soliton, PmfSumsToOne) {
  const LtParams params{.source_blocks = 64, .block_bytes = 8};
  const SolitonDistribution dist(params);
  double total = 0;
  for (std::size_t d = 1; d <= params.source_blocks; ++d) total += dist.pmf(d);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Soliton, DegreeOneAndTwoCarryMostMass) {
  // The ideal soliton puts 1/2 on degree 2; the robust variant keeps
  // degrees 1-2 dominant — that is what makes peeling start and keep going.
  const LtParams params{.source_blocks = 100, .block_bytes = 8};
  const SolitonDistribution dist(params);
  EXPECT_GT(dist.pmf(1), 0.005);
  EXPECT_GT(dist.pmf(2), 0.3);
  EXPECT_GT(dist.pmf(1) + dist.pmf(2), 0.4);
}

TEST(Soliton, SamplesStayInRange) {
  const LtParams params{.source_blocks = 32, .block_bytes = 8};
  const SolitonDistribution dist(params);
  Rng rng(1);
  for (int trial = 0; trial < 10000; ++trial) {
    const std::size_t d = dist.sample(rng);
    ASSERT_GE(d, 1u);
    ASSERT_LE(d, params.source_blocks);
  }
}

TEST(LtCode, RoundTrip) {
  const LtParams params{.source_blocks = 32, .block_bytes = 48};
  Rng rng(2);
  const LtEncoder encoder = LtEncoder::random(params, rng);
  LtDecoder decoder(params);
  std::size_t safety = 0;
  while (!decoder.is_complete()) {
    decoder.add(encoder.encode(rng));
    ASSERT_LT(++safety, params.source_blocks * 20);
  }
  EXPECT_EQ(decoder.decoded(), encoder.data());
}

TEST(LtCode, OverheadIsModestButNonzero) {
  // Average reception overhead across seeds: must exceed k (fountain codes
  // are not MDS) but stay within a sane multiple for this k.
  const LtParams params{.source_blocks = 64, .block_bytes = 8};
  double total_packets = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    Rng rng(100 + t);
    const LtEncoder encoder = LtEncoder::random(params, rng);
    LtDecoder decoder(params);
    while (!decoder.is_complete()) decoder.add(encoder.encode(rng));
    total_packets += static_cast<double>(decoder.packets_received());
  }
  const double average = total_packets / trials;
  EXPECT_GT(average, static_cast<double>(params.source_blocks));
  EXPECT_LT(average, 3.0 * static_cast<double>(params.source_blocks));
}

TEST(LtCode, PartialProgressTracked) {
  const LtParams params{.source_blocks = 16, .block_bytes = 8};
  Rng rng(3);
  const LtEncoder encoder = LtEncoder::random(params, rng);
  LtDecoder decoder(params);
  for (int i = 0; i < 4; ++i) decoder.add(encoder.encode(rng));
  EXPECT_FALSE(decoder.is_complete());
  EXPECT_LE(decoder.decoded_count(), params.source_blocks);
  EXPECT_EQ(decoder.packets_received(), 4u);
}

TEST(LtCode, DegreeOnePacketDecodesImmediately) {
  const LtParams params{.source_blocks = 8, .block_bytes = 4};
  Rng rng(4);
  const LtEncoder encoder = LtEncoder::random(params, rng);
  LtDecoder decoder(params);
  LtPacket packet;
  packet.sources = {3};
  packet.payload = AlignedBuffer(params.block_bytes);
  std::memcpy(packet.payload.data(), encoder.data().data() + 3 * 4, 4);
  decoder.add(std::move(packet));
  EXPECT_EQ(decoder.decoded_count(), 1u);
}

TEST(LtCodeDeathTest, DecodedBeforeCompleteAborts) {
  LtDecoder decoder(LtParams{.source_blocks = 4, .block_bytes = 4});
  EXPECT_DEATH((void)decoder.decoded(), "EXTNC_CHECK");
}

class LtSeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(LtSeedSweep, AlwaysDecodesEventually) {
  const LtParams params{.source_blocks = 24, .block_bytes = 16};
  Rng rng(500 + GetParam());
  const LtEncoder encoder = LtEncoder::random(params, rng);
  LtDecoder decoder(params);
  std::size_t safety = 0;
  while (!decoder.is_complete()) {
    decoder.add(encoder.encode(rng));
    ASSERT_LT(++safety, 2000u);
  }
  EXPECT_EQ(decoder.decoded(), encoder.data());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LtSeedSweep, ::testing::Range(0, 8));

}  // namespace
}  // namespace extnc::codes
