#include "codes/reed_solomon.h"

#include <cstring>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace extnc::codes {
namespace {

std::vector<std::uint8_t> random_data(const RsParams& params,
                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> data(params.data_blocks * params.block_bytes);
  for (auto& b : data) b = rng.next_byte();
  return data;
}

// All shards (data + parity) as spans, with the given set erased.
std::vector<std::span<const std::uint8_t>> shards_with_losses(
    const RsParams& params, const std::vector<std::uint8_t>& data,
    const std::vector<AlignedBuffer>& parity,
    const std::vector<std::size_t>& lost) {
  std::vector<std::span<const std::uint8_t>> shards;
  for (std::size_t i = 0; i < params.data_blocks; ++i) {
    shards.emplace_back(data.data() + i * params.block_bytes,
                        params.block_bytes);
  }
  for (const auto& p : parity) shards.emplace_back(p.span());
  for (std::size_t index : lost) shards[index] = {};
  return shards;
}

void expect_recovered(const RsParams& params,
                      const std::vector<std::uint8_t>& data,
                      const std::vector<AlignedBuffer>& recovered) {
  ASSERT_EQ(recovered.size(), params.data_blocks);
  for (std::size_t i = 0; i < params.data_blocks; ++i) {
    ASSERT_EQ(0, std::memcmp(recovered[i].data(),
                             data.data() + i * params.block_bytes,
                             params.block_bytes))
        << "block " << i;
  }
}

TEST(ReedSolomon, NoLossDecodeIsIdentity) {
  const RsParams params;
  const auto data = random_data(params, 1);
  const ReedSolomon rs(params);
  const auto parity = rs.encode(data);
  EXPECT_EQ(parity.size(), params.parity_blocks);
  const auto recovered = rs.decode(shards_with_losses(params, data, parity, {}));
  ASSERT_TRUE(recovered.has_value());
  expect_recovered(params, data, *recovered);
}

TEST(ReedSolomon, RecoversFromAnySingleDataLoss) {
  const RsParams params{.data_blocks = 6, .parity_blocks = 3,
                        .block_bytes = 32};
  const auto data = random_data(params, 2);
  const ReedSolomon rs(params);
  const auto parity = rs.encode(data);
  for (std::size_t lost = 0; lost < params.data_blocks; ++lost) {
    const auto recovered =
        rs.decode(shards_with_losses(params, data, parity, {lost}));
    ASSERT_TRUE(recovered.has_value()) << lost;
    expect_recovered(params, data, *recovered);
  }
}

TEST(ReedSolomon, RecoversFromMaximumLossAllPatterns) {
  // MDS property: ANY m erasures are recoverable. Exhaust every pattern of
  // m = 2 losses over k + m = 7 shards.
  const RsParams params{.data_blocks = 5, .parity_blocks = 2,
                        .block_bytes = 16};
  const auto data = random_data(params, 3);
  const ReedSolomon rs(params);
  const auto parity = rs.encode(data);
  const std::size_t total = params.data_blocks + params.parity_blocks;
  for (std::size_t a = 0; a < total; ++a) {
    for (std::size_t b = a + 1; b < total; ++b) {
      const auto recovered =
          rs.decode(shards_with_losses(params, data, parity, {a, b}));
      ASSERT_TRUE(recovered.has_value()) << a << "," << b;
      expect_recovered(params, data, *recovered);
    }
  }
}

TEST(ReedSolomon, FailsGracefullyBeyondCapacity) {
  const RsParams params{.data_blocks = 4, .parity_blocks = 2,
                        .block_bytes = 16};
  const auto data = random_data(params, 4);
  const ReedSolomon rs(params);
  const auto parity = rs.encode(data);
  const auto recovered =
      rs.decode(shards_with_losses(params, data, parity, {0, 1, 2}));
  EXPECT_FALSE(recovered.has_value());
}

TEST(ReedSolomon, ParityOnlyDecode) {
  // Lose ALL data shards (m >= k case).
  const RsParams params{.data_blocks = 3, .parity_blocks = 4,
                        .block_bytes = 8};
  const auto data = random_data(params, 5);
  const ReedSolomon rs(params);
  const auto parity = rs.encode(data);
  const auto recovered =
      rs.decode(shards_with_losses(params, data, parity, {0, 1, 2}));
  ASSERT_TRUE(recovered.has_value());
  expect_recovered(params, data, *recovered);
}

TEST(ReedSolomonDeathTest, TooManyBlocksForCauchyAborts) {
  EXPECT_DEATH(ReedSolomon(RsParams{.data_blocks = 200, .parity_blocks = 100,
                                    .block_bytes = 8}),
               "EXTNC_CHECK");
}

}  // namespace
}  // namespace extnc::codes
