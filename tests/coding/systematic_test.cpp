#include "coding/systematic.h"

#include <gtest/gtest.h>

#include "coding/progressive_decoder.h"

namespace extnc::coding {
namespace {

TEST(SystematicEncoder, FirstNEmissionsAreSourceBlocks) {
  Rng rng(1);
  const Params params{.n = 8, .k = 32};
  const Segment segment = Segment::random(params, rng);
  SystematicEncoder encoder(segment);
  for (std::size_t i = 0; i < params.n; ++i) {
    EXPECT_TRUE(encoder.in_systematic_phase());
    const CodedBlock block = encoder.next(rng);
    for (std::size_t j = 0; j < params.n; ++j) {
      EXPECT_EQ(block.coefficients()[j], j == i ? 1 : 0);
    }
    EXPECT_TRUE(std::equal(block.payload().begin(), block.payload().end(),
                           segment.block(i).begin()));
  }
  EXPECT_FALSE(encoder.in_systematic_phase());
}

TEST(SystematicEncoder, FallsBackToRandomCoding) {
  Rng rng(2);
  const Params params{.n = 4, .k = 16};
  const Segment segment = Segment::random(params, rng);
  SystematicEncoder encoder(segment);
  for (std::size_t i = 0; i < params.n; ++i) (void)encoder.next(rng);
  const CodedBlock coded = encoder.next(rng);
  std::size_t nonzero = 0;
  for (std::uint8_t c : coded.coefficients()) {
    if (c != 0) ++nonzero;
  }
  EXPECT_EQ(nonzero, params.n);  // dense random draw
}

TEST(SystematicEncoder, LossFreeDecodeNeedsExactlyNBlocks) {
  Rng rng(3);
  const Params params{.n = 16, .k = 64};
  const Segment segment = Segment::random(params, rng);
  SystematicEncoder encoder(segment);
  ProgressiveDecoder decoder(params);
  for (std::size_t i = 0; i < params.n; ++i) {
    ASSERT_EQ(decoder.add(encoder.next(rng)),
              ProgressiveDecoder::Result::kAccepted);
  }
  EXPECT_TRUE(decoder.is_complete());
  EXPECT_EQ(decoder.decoded_segment(), segment);
  EXPECT_EQ(decoder.blocks_discarded(), 0u);
}

TEST(SystematicEncoder, RepairsLossWithCodedBlocks) {
  Rng rng(4);
  const Params params{.n = 12, .k = 48};
  const Segment segment = Segment::random(params, rng);
  SystematicEncoder encoder(segment);
  ProgressiveDecoder decoder(params);
  // Drop every third systematic block.
  for (std::size_t i = 0; i < params.n; ++i) {
    const CodedBlock block = encoder.next(rng);
    if (i % 3 != 2) decoder.add(block);
  }
  EXPECT_FALSE(decoder.is_complete());
  // Coded repair blocks fill the holes.
  while (!decoder.is_complete()) decoder.add(encoder.next(rng));
  EXPECT_EQ(decoder.decoded_segment(), segment);
}

TEST(SystematicEncoder, ResetRestartsSystematicPass) {
  Rng rng(5);
  const Params params{.n = 4, .k = 8};
  const Segment segment = Segment::random(params, rng);
  SystematicEncoder encoder(segment);
  for (std::size_t i = 0; i < params.n + 2; ++i) (void)encoder.next(rng);
  EXPECT_FALSE(encoder.in_systematic_phase());
  encoder.reset();
  EXPECT_TRUE(encoder.in_systematic_phase());
  const CodedBlock first = encoder.next(rng);
  EXPECT_EQ(first.coefficients()[0], 1);
}

TEST(CoefficientModel, DenseDrawsNoZeros) {
  Rng rng(6);
  std::vector<std::uint8_t> coeffs(1000);
  CoefficientModel::dense().draw(rng, coeffs);
  for (std::uint8_t c : coeffs) EXPECT_NE(c, 0);
}

TEST(CoefficientModel, SparseDensityRoughlyHonored) {
  Rng rng(7);
  std::vector<std::uint8_t> coeffs(20000);
  CoefficientModel::sparse(0.25).draw(rng, coeffs);
  std::size_t nonzero = 0;
  for (std::uint8_t c : coeffs) {
    if (c != 0) ++nonzero;
  }
  const double density = static_cast<double>(nonzero) / coeffs.size();
  EXPECT_NEAR(density, 0.25, 0.02);
}

TEST(CoefficientModel, UniformHasOccasionalZeros) {
  Rng rng(8);
  std::vector<std::uint8_t> coeffs(20000);
  CoefficientModel::uniform().draw(rng, coeffs);
  std::size_t zeros = 0;
  for (std::uint8_t c : coeffs) {
    if (c == 0) ++zeros;
  }
  EXPECT_GT(zeros, 30u);   // ~78 expected at 1/256
  EXPECT_LT(zeros, 160u);
}

TEST(CoefficientModelDeathTest, ZeroDensityRejected) {
  EXPECT_DEATH(CoefficientModel::sparse(0.0), "EXTNC_CHECK");
}

TEST(CoefficientModel, SparseStillDecodes) {
  // Sparse codes decode fine, just with a few more dependent blocks.
  Rng rng(9);
  const Params params{.n = 16, .k = 32};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment, CoefficientModel::sparse(0.3));
  ProgressiveDecoder decoder(params);
  std::size_t sent = 0;
  while (!decoder.is_complete()) {
    decoder.add(encoder.encode(rng));
    ASSERT_LT(++sent, params.n * 4);
  }
  EXPECT_EQ(decoder.decoded_segment(), segment);
}

}  // namespace
}  // namespace extnc::coding
