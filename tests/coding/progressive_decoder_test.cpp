#include "coding/progressive_decoder.h"

#include <tuple>

#include <gtest/gtest.h>

#include "coding/encoder.h"
#include "gf256/gf.h"

namespace extnc::coding {
namespace {

TEST(ProgressiveDecoder, DecodesAfterExactlyNIndependentBlocks) {
  Rng rng(1);
  const Params params{.n = 16, .k = 128};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  ProgressiveDecoder decoder(params);
  for (std::size_t i = 0; i < params.n; ++i) {
    EXPECT_FALSE(decoder.is_complete());
    // Dense random blocks are independent with overwhelming probability.
    ASSERT_EQ(decoder.add(encoder.encode(rng)),
              ProgressiveDecoder::Result::kAccepted);
  }
  ASSERT_TRUE(decoder.is_complete());
  EXPECT_EQ(decoder.decoded_segment(), segment);
}

TEST(ProgressiveDecoder, MaintainsRrefInvariantThroughout) {
  Rng rng(2);
  const Params params{.n = 12, .k = 32};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  ProgressiveDecoder decoder(params);
  while (!decoder.is_complete()) {
    decoder.add(encoder.encode(rng));
    ASSERT_TRUE(decoder.check_rref_invariant())
        << "rank=" << decoder.rank();
  }
}

TEST(ProgressiveDecoder, DetectsDuplicateAsDependent) {
  Rng rng(3);
  const Params params{.n = 8, .k = 16};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  ProgressiveDecoder decoder(params);
  const CodedBlock block = encoder.encode(rng);
  EXPECT_EQ(decoder.add(block), ProgressiveDecoder::Result::kAccepted);
  EXPECT_EQ(decoder.add(block),
            ProgressiveDecoder::Result::kLinearlyDependent);
  EXPECT_EQ(decoder.rank(), 1u);
  EXPECT_EQ(decoder.blocks_discarded(), 1u);
}

TEST(ProgressiveDecoder, DetectsScaledCopyAsDependent) {
  Rng rng(4);
  const Params params{.n = 8, .k = 16};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  ProgressiveDecoder decoder(params);
  const CodedBlock block = encoder.encode(rng);
  decoder.add(block);
  // 0x35 * block is in the same 1-dimensional span.
  CodedBlock scaled(params);
  for (std::size_t i = 0; i < params.n; ++i) {
    scaled.coefficients()[i] = gf256::mul(block.coefficients()[i], 0x35);
  }
  for (std::size_t i = 0; i < params.k; ++i) {
    scaled.payload()[i] = gf256::mul(block.payload()[i], 0x35);
  }
  EXPECT_EQ(decoder.add(scaled),
            ProgressiveDecoder::Result::kLinearlyDependent);
}

TEST(ProgressiveDecoder, DetectsCombinationAsDependent) {
  Rng rng(5);
  const Params params{.n = 8, .k = 16};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  ProgressiveDecoder decoder(params);
  const CodedBlock a = encoder.encode(rng);
  const CodedBlock b = encoder.encode(rng);
  decoder.add(a);
  decoder.add(b);
  CodedBlock combo(params);
  for (std::size_t i = 0; i < params.n; ++i) {
    combo.coefficients()[i] =
        gf256::add(gf256::mul(a.coefficients()[i], 0x11),
                   gf256::mul(b.coefficients()[i], 0x22));
  }
  for (std::size_t i = 0; i < params.k; ++i) {
    combo.payload()[i] = gf256::add(gf256::mul(a.payload()[i], 0x11),
                                    gf256::mul(b.payload()[i], 0x22));
  }
  EXPECT_EQ(decoder.add(combo),
            ProgressiveDecoder::Result::kLinearlyDependent);
  EXPECT_EQ(decoder.rank(), 2u);
}

TEST(ProgressiveDecoder, BlocksAfterCompletionAreRejected) {
  Rng rng(6);
  const Params params{.n = 4, .k = 8};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  ProgressiveDecoder decoder(params);
  while (!decoder.is_complete()) decoder.add(encoder.encode(rng));
  EXPECT_EQ(decoder.add(encoder.encode(rng)),
            ProgressiveDecoder::Result::kAlreadyComplete);
}

TEST(ProgressiveDecoder, SystematicUnitVectorsDecodeTrivially) {
  Rng rng(7);
  const Params params{.n = 6, .k = 24};
  const Segment segment = Segment::random(params, rng);
  ProgressiveDecoder decoder(params);
  // Feed the n unit vectors (uncoded blocks) in reverse order.
  for (std::size_t i = params.n; i-- > 0;) {
    CodedBlock block(params);
    block.coefficients()[i] = 1;
    std::copy(segment.block(i).begin(), segment.block(i).end(),
              block.payload().begin());
    ASSERT_EQ(decoder.add(block), ProgressiveDecoder::Result::kAccepted);
  }
  EXPECT_EQ(decoder.decoded_segment(), segment);
}

TEST(ProgressiveDecoder, CountsSeenAndDiscarded) {
  Rng rng(8);
  const Params params{.n = 4, .k = 8};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  ProgressiveDecoder decoder(params);
  const CodedBlock block = encoder.encode(rng);
  decoder.add(block);
  decoder.add(block);
  decoder.add(block);
  EXPECT_EQ(decoder.blocks_seen(), 3u);
  EXPECT_EQ(decoder.blocks_discarded(), 2u);
  EXPECT_EQ(decoder.rank(), 1u);
}

TEST(ProgressiveDecoder, OutOfOrderPivotsKeepRrefAndDecode) {
  // Regression: pivots arriving out of column order (a later pivot first)
  // once left stale entries in later pivot columns of newly inserted rows.
  Rng rng(42);
  const Params params{.n = 4, .k = 8};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  ProgressiveDecoder decoder(params);
  auto send = [&](std::initializer_list<std::uint8_t> coeffs) {
    CodedBlock block(params);
    std::copy(coeffs.begin(), coeffs.end(), block.coefficients().begin());
    encoder.encode_with_coefficients(block.coefficients(), block.payload());
    return decoder.add(block);
  };
  // Pivot columns claimed in order 2, 0, 3, 1.
  EXPECT_EQ(send({0, 0, 5, 7}), ProgressiveDecoder::Result::kAccepted);
  EXPECT_EQ(send({3, 0, 9, 1}), ProgressiveDecoder::Result::kAccepted);
  EXPECT_TRUE(decoder.check_rref_invariant());
  EXPECT_EQ(send({0, 0, 0, 2}), ProgressiveDecoder::Result::kAccepted);
  EXPECT_TRUE(decoder.check_rref_invariant());
  EXPECT_EQ(send({1, 4, 1, 1}), ProgressiveDecoder::Result::kAccepted);
  ASSERT_TRUE(decoder.is_complete());
  EXPECT_TRUE(decoder.check_rref_invariant());
  EXPECT_EQ(decoder.decoded_segment(), segment);
}

TEST(ProgressiveDecoderDeathTest, DecodedSegmentBeforeCompleteAborts) {
  ProgressiveDecoder decoder({.n = 4, .k = 8});
  EXPECT_DEATH((void)decoder.decoded_segment(), "EXTNC_CHECK");
}

// Roundtrip across a parameter sweep, including k not divisible by 4 and
// n = 1 edge cases.
class DecoderRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(DecoderRoundTrip, EncodeDecodeRecoversSegment) {
  const auto [n, k] = GetParam();
  Rng rng(1000 + n * 31 + k);
  const Params params{.n = n, .k = k};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  ProgressiveDecoder decoder(params);
  std::size_t sent = 0;
  while (!decoder.is_complete()) {
    decoder.add(encoder.encode(rng));
    ++sent;
    ASSERT_LT(sent, params.n + 20) << "too many dependent blocks";
  }
  EXPECT_EQ(decoder.decoded_segment(), segment);
}

INSTANTIATE_TEST_SUITE_P(
    ParamSweep, DecoderRoundTrip,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 8u, 16u, 32u, 64u),
                       ::testing::Values(1u, 3u, 16u, 100u, 256u)));

}  // namespace
}  // namespace extnc::coding
