#include "coding/block_decoder.h"

#include <gtest/gtest.h>

#include "coding/encoder.h"
#include "coding/progressive_decoder.h"

namespace extnc::coding {
namespace {

TEST(BlockDecoder, DecodesAfterNIndependentBlocks) {
  Rng rng(1);
  const Params params{.n = 16, .k = 64};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  BlockDecoder decoder(params);
  while (!decoder.is_ready()) {
    ASSERT_TRUE(decoder.add(encoder.encode(rng)));
  }
  EXPECT_EQ(decoder.decode(), segment);
}

TEST(BlockDecoder, RejectsDependentBlocksWithoutStoringThem) {
  Rng rng(2);
  const Params params{.n = 8, .k = 16};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  BlockDecoder decoder(params);
  const CodedBlock block = encoder.encode(rng);
  EXPECT_TRUE(decoder.add(block));
  EXPECT_FALSE(decoder.add(block));
  EXPECT_EQ(decoder.rank(), 1u);
}

TEST(BlockDecoder, MatchesProgressiveDecoder) {
  Rng rng(3);
  const Params params{.n = 24, .k = 100};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  BlockDecoder block_decoder(params);
  ProgressiveDecoder progressive(params);
  while (!block_decoder.is_ready()) {
    const CodedBlock block = encoder.encode(rng);
    const bool accepted = block_decoder.add(block);
    const auto result = progressive.add(block);
    EXPECT_EQ(accepted,
              result == ProgressiveDecoder::Result::kAccepted);
  }
  EXPECT_EQ(block_decoder.decode(), progressive.decoded_segment());
}

TEST(BlockDecoder, IgnoresBlocksOnceReady) {
  Rng rng(4);
  const Params params{.n = 4, .k = 8};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  BlockDecoder decoder(params);
  while (!decoder.is_ready()) decoder.add(encoder.encode(rng));
  EXPECT_FALSE(decoder.add(encoder.encode(rng)));
  EXPECT_EQ(decoder.rank(), params.n);
}

TEST(BlockDecoderDeathTest, DecodeBeforeReadyAborts) {
  BlockDecoder decoder({.n = 4, .k = 8});
  EXPECT_DEATH((void)decoder.decode(), "EXTNC_CHECK");
}

class BlockDecoderSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(BlockDecoderSweep, RoundTrip) {
  const auto [n, k] = GetParam();
  Rng rng(500 + n * 7 + k);
  const Params params{.n = n, .k = k};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  BlockDecoder decoder(params);
  while (!decoder.is_ready()) decoder.add(encoder.encode(rng));
  EXPECT_EQ(decoder.decode(), segment);
}

INSTANTIATE_TEST_SUITE_P(
    ParamSweep, BlockDecoderSweep,
    ::testing::Combine(::testing::Values(1u, 4u, 32u, 128u),
                       ::testing::Values(1u, 17u, 128u)));

}  // namespace
}  // namespace extnc::coding
