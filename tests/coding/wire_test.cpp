#include "coding/wire.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "coding/encoder.h"
#include "util/rng.h"

namespace extnc::coding {
namespace {

CodedBlock sample_block(const Params& params, std::uint64_t seed) {
  Rng rng(seed);
  const Segment segment = Segment::random(params, rng);
  return Encoder(segment).encode(rng);
}

TEST(Wire, RoundTripPreservesEverything) {
  const Params params{.n = 16, .k = 100};
  const CodedBlock block = sample_block(params, 1);
  const std::vector<std::uint8_t> bytes = serialize(77, block);
  EXPECT_EQ(bytes.size(), wire_size(params));
  ParseResult result = parse(bytes);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.packet().generation, 77u);
  EXPECT_EQ(result.packet().format, WireFormat::kV2);
  EXPECT_EQ(result.packet().block, block);
}

TEST(WireView, ParseViewBorrowsTheFrame) {
  const Params params{.n = 16, .k = 100};
  const CodedBlock block = sample_block(params, 1);
  const std::vector<std::uint8_t> bytes = serialize(77, block);
  const ParseViewResult result = parse_view(bytes);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.packet().generation, 77u);
  EXPECT_EQ(result.packet().format, WireFormat::kV2);
  const CodedBlockView& view = result.packet().block;
  EXPECT_EQ(view.params(), params);
  // Zero-copy: the spans point into the frame itself.
  EXPECT_EQ(view.coefficients().data(), bytes.data() + kWireHeaderBytes);
  EXPECT_EQ(view.payload().data(), bytes.data() + kWireHeaderBytes + params.n);
  EXPECT_EQ(view.materialize(), block);
}

TEST(WireView, MaterializeOutlivesTheFrame) {
  const Params params{.n = 8, .k = 32};
  const CodedBlock block = sample_block(params, 3);
  CodedBlock copy;
  {
    const std::vector<std::uint8_t> bytes = serialize(9, block);
    const ParseViewResult result = parse_view(bytes);
    ASSERT_TRUE(result.ok());
    copy = result.packet().block.materialize();
  }  // frame gone; the materialized block must be self-contained
  EXPECT_EQ(copy, block);
}

TEST(WireView, RejectsSameErrorsAsParse) {
  // parse() is implemented on top of parse_view(); both must agree on
  // every rejection, including the v2 checksum.
  const Params params{.n = 8, .k = 16};
  const std::vector<std::uint8_t> good = serialize(5, sample_block(params, 8));
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::vector<std::uint8_t> bytes = good;
    bytes[i] ^= 0x40;
    const ParseResult owned = parse(bytes);
    const ParseViewResult view = parse_view(bytes);
    ASSERT_EQ(owned.ok(), view.ok()) << "byte " << i;
    if (!owned.ok()) {
      ASSERT_EQ(owned.error(), view.error()) << "byte " << i;
    }
  }
  EXPECT_FALSE(parse_view(std::vector<std::uint8_t>(3)).ok());
  EXPECT_EQ(parse_view(std::vector<std::uint8_t>(3)).error(),
            ParseError::kTooShort);
}

TEST(Wire, V1RoundTripStillAccepted) {
  const Params params{.n = 16, .k = 100};
  const CodedBlock block = sample_block(params, 1);
  const std::vector<std::uint8_t> bytes = serialize(77, block, WireFormat::kV1);
  EXPECT_EQ(bytes.size(), wire_size(params, WireFormat::kV1));
  EXPECT_EQ(bytes.size() + kWireChecksumBytes, wire_size(params));
  ParseResult result = parse(bytes);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.packet().generation, 77u);
  EXPECT_EQ(result.packet().format, WireFormat::kV1);
  EXPECT_EQ(result.packet().block, block);
}

TEST(Wire, AnySingleBitFlipFailsTheChecksum) {
  // CRC32C detects every single-bit error, so a v2 packet with any one bit
  // flipped must be rejected — as kBadChecksum, unless the flip lands in a
  // header field that fails an earlier (cheaper) validation step.
  const Params params{.n = 8, .k = 16};
  const std::vector<std::uint8_t> good = serialize(5, sample_block(params, 8));
  for (std::size_t bit = 0; bit < good.size() * 8; ++bit) {
    std::vector<std::uint8_t> bytes = good;
    bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    ParseResult result = parse(bytes);
    ASSERT_FALSE(result.ok()) << "flipped bit " << bit;
  }
}

TEST(Wire, ChecksumFlipReportsBadChecksum) {
  const Params params{.n = 8, .k = 16};
  std::vector<std::uint8_t> bytes = serialize(5, sample_block(params, 9));
  bytes.back() ^= 0x01;  // damage the CRC trailer itself
  EXPECT_EQ(parse(bytes).error(), ParseError::kBadChecksum);
  bytes.back() ^= 0x01;
  bytes[kWireHeaderBytes] ^= 0x80;  // damage a coefficient
  EXPECT_EQ(parse(bytes).error(), ParseError::kBadChecksum);
}

TEST(Wire, SerializeIntoCallerBuffer) {
  const Params params{.n = 4, .k = 8};
  const CodedBlock block = sample_block(params, 2);
  std::vector<std::uint8_t> buffer(wire_size(params));
  serialize_into(3, block, buffer);
  ParseResult result = parse(buffer);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.packet().block, block);
}

TEST(WireDeathTest, SerializeIntoWrongSizeAborts) {
  const Params params{.n = 4, .k = 8};
  const CodedBlock block = sample_block(params, 3);
  std::vector<std::uint8_t> small(wire_size(params) - 1);
  EXPECT_DEATH(serialize_into(0, block, small), "EXTNC_CHECK");
}

TEST(Wire, RejectsTruncatedHeader) {
  std::vector<std::uint8_t> bytes(kWireHeaderBytes - 1);
  ParseResult result = parse(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error(), ParseError::kTooShort);
}

TEST(Wire, RejectsBadMagic) {
  const Params params{.n = 4, .k = 8};
  std::vector<std::uint8_t> bytes = serialize(0, sample_block(params, 4));
  bytes[0] ^= 0xff;
  EXPECT_EQ(parse(bytes).error(), ParseError::kBadMagic);
}

TEST(Wire, RejectsZeroShape) {
  const Params params{.n = 4, .k = 8};
  std::vector<std::uint8_t> bytes = serialize(0, sample_block(params, 5));
  bytes[8] = bytes[9] = bytes[10] = bytes[11] = 0;  // n = 0
  EXPECT_EQ(parse(bytes).error(), ParseError::kBadShape);
}

TEST(Wire, RejectsShapeAboveLimits) {
  const Params params{.n = 64, .k = 8};
  std::vector<std::uint8_t> bytes = serialize(0, sample_block(params, 6));
  WireLimits limits;
  limits.max_n = 32;
  EXPECT_EQ(parse(bytes, limits).error(), ParseError::kBadShape);
}

TEST(Wire, RejectsLengthMismatch) {
  const Params params{.n = 4, .k = 8};
  std::vector<std::uint8_t> bytes =
      serialize(0, sample_block(params, 7), WireFormat::kV1);
  bytes.pop_back();
  EXPECT_EQ(parse(bytes).error(), ParseError::kLengthMismatch);
  bytes.push_back(0);
  bytes.push_back(0);
  EXPECT_EQ(parse(bytes).error(), ParseError::kLengthMismatch);
}

TEST(Wire, V2TruncatedToV1LengthIsALengthMismatch) {
  // Stripping the trailer does not turn a v2 packet into a valid v1 one:
  // the magic still says XNC2, so the length check fires.
  const Params params{.n = 4, .k = 8};
  std::vector<std::uint8_t> bytes = serialize(0, sample_block(params, 7));
  bytes.resize(wire_size(params, WireFormat::kV1));
  EXPECT_EQ(parse(bytes).error(), ParseError::kLengthMismatch);
}

TEST(Wire, HugeDeclaredShapeDoesNotAllocate) {
  // A 16-byte packet claiming n = k = 2^31 must be rejected from the
  // header alone (shape precedes any allocation).
  std::vector<std::uint8_t> bytes(kWireHeaderBytes);
  bytes[0] = 0x58; bytes[1] = 0x4e; bytes[2] = 0x43; bytes[3] = 0x31;
  bytes[8] = bytes[12] = 0;
  bytes[11] = bytes[15] = 0x80;  // n = k = 0x80000000
  EXPECT_EQ(parse(bytes).error(), ParseError::kBadShape);
}

TEST(Wire, EveryParseErrorHasADistinctRealName) {
  std::set<std::string> names;
  for (ParseError error : kAllParseErrors) {
    const char* name = parse_error_name(error);
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "?") << "enumerator missing from parse_error_name";
    EXPECT_TRUE(names.insert(name).second) << "duplicate name: " << name;
  }
  EXPECT_EQ(names.size(), std::size(kAllParseErrors));
}

TEST(Wire, FuzzedBytesNeverCrash) {
  Rng rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> bytes(rng.next_below(200));
    for (auto& b : bytes) b = rng.next_byte();
    // Occasionally plant a magic to reach deeper validation.
    if (bytes.size() >= 4 && trial % 3 == 0) {
      bytes[0] = 0x58; bytes[1] = 0x4e; bytes[2] = 0x43;
      bytes[3] = (trial % 2 == 0) ? 0x31 : 0x32;
    }
    (void)parse(bytes);  // must not crash or abort
  }
}

TEST(Wire, MutatedValidPacketsNeverCrashOrMisparse) {
  // Hardening sweep: start from a valid packet (v1 or v2), apply a random
  // truncation, extension, or bit flip, and require that parse() either
  // rejects the mutant or round-trips a shape-consistent packet. It must
  // never abort, and an accepted packet must never lie about its shape.
  Rng rng(4242);
  const WireLimits limits;
  for (int trial = 0; trial < 1000; ++trial) {
    const Params params{.n = 1 + rng.next_below(12),
                        .k = 1 + rng.next_below(40)};
    const WireFormat format =
        (trial % 2 == 0) ? WireFormat::kV2 : WireFormat::kV1;
    const CodedBlock block = sample_block(params, 1000 + trial);
    std::vector<std::uint8_t> bytes =
        serialize(rng.next_below(1u << 16), block, format);

    switch (rng.next_below(3)) {
      case 0:  // truncate to a random shorter length (possibly empty)
        bytes.resize(rng.next_below(bytes.size()));
        break;
      case 1: {  // extend with random garbage
        const std::size_t extra = 1 + rng.next_below(16);
        for (std::size_t i = 0; i < extra; ++i)
          bytes.push_back(rng.next_byte());
        break;
      }
      default:  // flip one random bit
        bytes[rng.next_below(bytes.size())] ^=
            static_cast<std::uint8_t>(1u << rng.next_below(8));
        break;
    }

    ParseResult result = parse(bytes, limits);
    if (!result.ok()) continue;  // rejection is always acceptable
    const Packet& packet = result.packet();
    const Params& shape = packet.block.params();
    EXPECT_GE(shape.n, 1u);
    EXPECT_LE(shape.n, limits.max_n);
    EXPECT_GE(shape.k, 1u);
    EXPECT_LE(shape.k, limits.max_k);
    EXPECT_EQ(bytes.size(), wire_size(shape, packet.format));
    EXPECT_EQ(packet.block.coefficients().size(), shape.n);
    EXPECT_EQ(packet.block.payload().size(), shape.k);
  }
}

}  // namespace
}  // namespace extnc::coding
