#include "coding/wire.h"

#include <gtest/gtest.h>

#include "coding/encoder.h"
#include "util/rng.h"

namespace extnc::coding {
namespace {

CodedBlock sample_block(const Params& params, std::uint64_t seed) {
  Rng rng(seed);
  const Segment segment = Segment::random(params, rng);
  return Encoder(segment).encode(rng);
}

TEST(Wire, RoundTripPreservesEverything) {
  const Params params{.n = 16, .k = 100};
  const CodedBlock block = sample_block(params, 1);
  const std::vector<std::uint8_t> bytes = serialize(77, block);
  EXPECT_EQ(bytes.size(), wire_size(params));
  ParseResult result = parse(bytes);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.packet().generation, 77u);
  EXPECT_EQ(result.packet().block, block);
}

TEST(Wire, SerializeIntoCallerBuffer) {
  const Params params{.n = 4, .k = 8};
  const CodedBlock block = sample_block(params, 2);
  std::vector<std::uint8_t> buffer(wire_size(params));
  serialize_into(3, block, buffer);
  ParseResult result = parse(buffer);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.packet().block, block);
}

TEST(WireDeathTest, SerializeIntoWrongSizeAborts) {
  const Params params{.n = 4, .k = 8};
  const CodedBlock block = sample_block(params, 3);
  std::vector<std::uint8_t> small(wire_size(params) - 1);
  EXPECT_DEATH(serialize_into(0, block, small), "EXTNC_CHECK");
}

TEST(Wire, RejectsTruncatedHeader) {
  std::vector<std::uint8_t> bytes(kWireHeaderBytes - 1);
  ParseResult result = parse(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error(), ParseError::kTooShort);
}

TEST(Wire, RejectsBadMagic) {
  const Params params{.n = 4, .k = 8};
  std::vector<std::uint8_t> bytes = serialize(0, sample_block(params, 4));
  bytes[0] ^= 0xff;
  EXPECT_EQ(parse(bytes).error(), ParseError::kBadMagic);
}

TEST(Wire, RejectsZeroShape) {
  const Params params{.n = 4, .k = 8};
  std::vector<std::uint8_t> bytes = serialize(0, sample_block(params, 5));
  bytes[8] = bytes[9] = bytes[10] = bytes[11] = 0;  // n = 0
  EXPECT_EQ(parse(bytes).error(), ParseError::kBadShape);
}

TEST(Wire, RejectsShapeAboveLimits) {
  const Params params{.n = 64, .k = 8};
  std::vector<std::uint8_t> bytes = serialize(0, sample_block(params, 6));
  WireLimits limits;
  limits.max_n = 32;
  EXPECT_EQ(parse(bytes, limits).error(), ParseError::kBadShape);
}

TEST(Wire, RejectsLengthMismatch) {
  const Params params{.n = 4, .k = 8};
  std::vector<std::uint8_t> bytes = serialize(0, sample_block(params, 7));
  bytes.pop_back();
  EXPECT_EQ(parse(bytes).error(), ParseError::kLengthMismatch);
  bytes.push_back(0);
  bytes.push_back(0);
  EXPECT_EQ(parse(bytes).error(), ParseError::kLengthMismatch);
}

TEST(Wire, HugeDeclaredShapeDoesNotAllocate) {
  // A 16-byte packet claiming n = k = 2^31 must be rejected from the
  // header alone (shape precedes any allocation).
  std::vector<std::uint8_t> bytes(kWireHeaderBytes);
  bytes[0] = 0x58; bytes[1] = 0x4e; bytes[2] = 0x43; bytes[3] = 0x31;
  bytes[8] = bytes[12] = 0;
  bytes[11] = bytes[15] = 0x80;  // n = k = 0x80000000
  EXPECT_EQ(parse(bytes).error(), ParseError::kBadShape);
}

TEST(Wire, ParseErrorNamesAreDistinct) {
  EXPECT_STRNE(parse_error_name(ParseError::kTooShort),
               parse_error_name(ParseError::kBadMagic));
  EXPECT_STRNE(parse_error_name(ParseError::kBadShape),
               parse_error_name(ParseError::kLengthMismatch));
}

TEST(Wire, FuzzedBytesNeverCrash) {
  Rng rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> bytes(rng.next_below(200));
    for (auto& b : bytes) b = rng.next_byte();
    // Occasionally plant the magic to reach deeper validation.
    if (bytes.size() >= 4 && trial % 3 == 0) {
      bytes[0] = 0x58; bytes[1] = 0x4e; bytes[2] = 0x43; bytes[3] = 0x31;
    }
    (void)parse(bytes);  // must not crash or abort
  }
}

}  // namespace
}  // namespace extnc::coding
