#include "coding/encoder.h"

#include <gtest/gtest.h>

#include "gf256/gf.h"

namespace extnc::coding {
namespace {

TEST(Encoder, CodedPayloadMatchesScalarDefinition) {
  Rng rng(1);
  const Params params{.n = 8, .k = 32};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  const CodedBlock block = encoder.encode(rng);
  for (std::size_t byte = 0; byte < params.k; ++byte) {
    std::uint8_t expected = 0;
    for (std::size_t i = 0; i < params.n; ++i) {
      expected = gf256::add(
          expected, gf256::mul(block.coefficients()[i], segment.block(i)[byte]));
    }
    ASSERT_EQ(block.payload()[byte], expected) << "byte " << byte;
  }
}

TEST(Encoder, DenseCoefficientsAreAllNonzero) {
  Rng rng(2);
  const Params params{.n = 64, .k = 16};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment, CoefficientModel::dense());
  for (int trial = 0; trial < 10; ++trial) {
    const CodedBlock block = encoder.encode(rng);
    for (std::uint8_t c : block.coefficients()) EXPECT_NE(c, 0);
  }
}

TEST(Encoder, NonDenseModeEventuallyDrawsZero) {
  Rng rng(3);
  const Params params{.n = 64, .k = 4};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment, CoefficientModel::uniform());
  bool saw_zero = false;
  for (int trial = 0; trial < 50 && !saw_zero; ++trial) {
    const CodedBlock block = encoder.encode(rng);
    for (std::uint8_t c : block.coefficients()) {
      if (c == 0) saw_zero = true;
    }
  }
  EXPECT_TRUE(saw_zero);
}

TEST(Encoder, UnitCoefficientVectorSelectsBlock) {
  Rng rng(4);
  const Params params{.n = 5, .k = 64};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  std::vector<std::uint8_t> coeffs(params.n, 0);
  coeffs[3] = 1;
  std::vector<std::uint8_t> payload(params.k);
  encoder.encode_with_coefficients(coeffs, payload);
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                         segment.block(3).begin()));
}

TEST(Encoder, EncodingIsLinear) {
  // encode(a ^ b) == encode(a) ^ encode(b) coefficient-wise.
  Rng rng(5);
  const Params params{.n = 6, .k = 48};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  std::vector<std::uint8_t> a(params.n);
  std::vector<std::uint8_t> b(params.n);
  std::vector<std::uint8_t> sum(params.n);
  for (std::size_t i = 0; i < params.n; ++i) {
    a[i] = rng.next_byte();
    b[i] = rng.next_byte();
    sum[i] = a[i] ^ b[i];
  }
  std::vector<std::uint8_t> pa(params.k);
  std::vector<std::uint8_t> pb(params.k);
  std::vector<std::uint8_t> psum(params.k);
  encoder.encode_with_coefficients(a, pa);
  encoder.encode_with_coefficients(b, pb);
  encoder.encode_with_coefficients(sum, psum);
  for (std::size_t i = 0; i < params.k; ++i) {
    ASSERT_EQ(psum[i], pa[i] ^ pb[i]);
  }
}

TEST(Encoder, ZeroCoefficientsGiveZeroPayload) {
  Rng rng(6);
  const Params params{.n = 4, .k = 16};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  std::vector<std::uint8_t> coeffs(params.n, 0);
  std::vector<std::uint8_t> payload(params.k, 0xff);
  encoder.encode_with_coefficients(coeffs, payload);
  for (std::uint8_t b : payload) EXPECT_EQ(b, 0);
}

TEST(EncoderDeathTest, WrongCoefficientCountAborts) {
  Rng rng(7);
  const Params params{.n = 4, .k = 16};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  std::vector<std::uint8_t> coeffs(3);
  std::vector<std::uint8_t> payload(params.k);
  EXPECT_DEATH(encoder.encode_with_coefficients(coeffs, payload),
               "EXTNC_CHECK");
}

}  // namespace
}  // namespace extnc::coding
