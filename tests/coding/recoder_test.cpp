#include "coding/recoder.h"

#include <gtest/gtest.h>

#include "coding/encoder.h"
#include "coding/progressive_decoder.h"

namespace extnc::coding {
namespace {

TEST(Recoder, RecodedBlocksStillDecodeToSources) {
  // Source -> relay (recodes) -> sink. The sink decodes the original
  // segment without the relay ever decoding.
  Rng rng(1);
  const Params params{.n = 16, .k = 64};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  Recoder relay(params);
  for (std::size_t i = 0; i < params.n; ++i) relay.add(encoder.encode(rng));

  ProgressiveDecoder sink(params);
  std::size_t sent = 0;
  while (!sink.is_complete()) {
    sink.add(relay.recode(rng));
    ASSERT_LT(++sent, params.n + 30);
  }
  EXPECT_EQ(sink.decoded_segment(), segment);
}

TEST(Recoder, RecodedBlockIsConsistentLinearCombination) {
  // The recoded payload must equal the encoding of its own coefficient
  // vector: x' = C'(b), i.e. recoding preserves Eq. (1).
  Rng rng(2);
  const Params params{.n = 8, .k = 32};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  Recoder relay(params);
  for (int i = 0; i < 5; ++i) relay.add(encoder.encode(rng));
  const CodedBlock recoded = relay.recode(rng);
  std::vector<std::uint8_t> expected(params.k);
  encoder.encode_with_coefficients(recoded.coefficients(), expected);
  EXPECT_TRUE(std::equal(expected.begin(), expected.end(),
                         recoded.payload().begin()));
}

TEST(Recoder, CannotExceedSpanOfBufferedBlocks) {
  // A relay holding only r < n blocks can never raise a decoder above
  // rank r.
  Rng rng(3);
  const Params params{.n = 12, .k = 16};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  Recoder relay(params);
  const std::size_t held = 5;
  for (std::size_t i = 0; i < held; ++i) relay.add(encoder.encode(rng));
  ProgressiveDecoder sink(params);
  for (int i = 0; i < 50; ++i) sink.add(relay.recode(rng));
  EXPECT_EQ(sink.rank(), held);
}

TEST(Recoder, ChainOfRelaysPreservesDecodability) {
  Rng rng(4);
  const Params params{.n = 8, .k = 24};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  Recoder hop1(params);
  for (std::size_t i = 0; i < params.n + 2; ++i) hop1.add(encoder.encode(rng));
  Recoder hop2(params);
  for (std::size_t i = 0; i < params.n + 2; ++i) hop2.add(hop1.recode(rng));
  ProgressiveDecoder sink(params);
  std::size_t sent = 0;
  while (!sink.is_complete()) {
    sink.add(hop2.recode(rng));
    ASSERT_LT(++sent, params.n + 30);
  }
  EXPECT_EQ(sink.decoded_segment(), segment);
}

TEST(RecoderDeathTest, RecodeWithEmptyBufferAborts) {
  Recoder relay({.n = 4, .k = 8});
  Rng rng(5);
  EXPECT_DEATH((void)relay.recode(rng), "EXTNC_CHECK");
}

}  // namespace
}  // namespace extnc::coding
