#include "coding/generation_stream.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace extnc::coding {
namespace {

std::vector<std::uint8_t> random_content(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> content(size);
  for (auto& b : content) b = rng.next_byte();
  return content;
}

TEST(GenerationStream, SplitsContentIntoGenerations) {
  const Params params{.n = 4, .k = 16};  // 64 B per generation
  const auto content = random_content(200, 1);
  GenerationEncoder encoder(params, content);
  EXPECT_EQ(encoder.generations(), 4u);  // ceil(200/64)
  EXPECT_EQ(encoder.content_bytes(), 200u);
}

TEST(GenerationStream, EmptyContentStillHasOneGeneration) {
  GenerationEncoder encoder({.n = 2, .k = 4}, {});
  EXPECT_EQ(encoder.generations(), 1u);
}

TEST(GenerationStream, FullTransferRoundTrip) {
  const Params params{.n = 8, .k = 32};
  const auto content = random_content(1000, 2);
  Rng rng(3);
  GenerationEncoder encoder(params, content);
  GenerationDecoder decoder(params, encoder.generations());
  std::size_t packets = 0;
  while (!decoder.is_complete()) {
    decoder.add_packet(encoder.encode_next_packet(rng));
    ASSERT_LT(++packets, 10 * encoder.generations() * params.n);
  }
  const auto out = decoder.reassemble();
  ASSERT_GE(out.size(), content.size());
  EXPECT_TRUE(std::equal(content.begin(), content.end(), out.begin()));
  // Padding of the final generation is zero.
  for (std::size_t i = content.size(); i < out.size(); ++i) {
    EXPECT_EQ(out[i], 0);
  }
}

TEST(GenerationStream, SystematicTransferNeedsMinimalPackets) {
  const Params params{.n = 8, .k = 32};
  const auto content = random_content(params.n * params.k * 3, 4);
  Rng rng(5);
  GenerationEncoder encoder(params, content, /*systematic=*/true);
  GenerationDecoder decoder(params, encoder.generations());
  std::size_t packets = 0;
  while (!decoder.is_complete()) {
    decoder.add_packet(encoder.encode_next_packet(rng));
    ++packets;
  }
  // Loss-free systematic transfer: exactly generations * n packets.
  EXPECT_EQ(packets, encoder.generations() * params.n);
}

TEST(GenerationStream, SurvivesLossAndReordering) {
  const Params params{.n = 8, .k = 16};
  const auto content = random_content(300, 6);
  Rng rng(7);
  GenerationEncoder encoder(params, content);
  GenerationDecoder decoder(params, encoder.generations());
  // Generate a burst, drop a third, shuffle, deliver, repeat.
  std::size_t safety = 0;
  while (!decoder.is_complete()) {
    ASSERT_LT(++safety, 100u);
    std::vector<std::vector<std::uint8_t>> burst;
    for (std::size_t i = 0; i < encoder.generations() * params.n; ++i) {
      if (rng.next_double() < 0.33) continue;  // lost
      burst.push_back(encoder.encode_next_packet(rng));
    }
    for (std::size_t i = burst.size(); i > 1; --i) {
      std::swap(burst[i - 1], burst[rng.next_below(i)]);
    }
    for (const auto& packet : burst) decoder.add_packet(packet);
  }
  const auto out = decoder.reassemble();
  EXPECT_TRUE(std::equal(content.begin(), content.end(), out.begin()));
}

TEST(GenerationStream, RejectsGarbagePacketsGracefully) {
  const Params params{.n = 4, .k = 8};
  GenerationDecoder decoder(params, 2);
  std::vector<std::uint8_t> garbage(10, 0xab);
  EXPECT_EQ(decoder.add_packet(garbage), GenerationDecoder::Accept::kRejected);
  EXPECT_EQ(decoder.packets_rejected(), 1u);
}

TEST(GenerationStream, RejectsUnknownGeneration) {
  const Params params{.n = 4, .k = 8};
  const auto content = random_content(params.segment_bytes(), 8);
  Rng rng(9);
  GenerationEncoder encoder(params, content);
  GenerationDecoder decoder(params, 1);
  auto packet = encoder.encode_packet(0, rng);
  packet[4] = 5;  // forge generation id 5
  EXPECT_EQ(decoder.add_packet(packet), GenerationDecoder::Accept::kRejected);
}

TEST(GenerationStream, RejectsShapeMismatch) {
  const Params sender_params{.n = 8, .k = 8};
  const Params receiver_params{.n = 4, .k = 8};
  const auto content = random_content(64, 10);
  Rng rng(11);
  GenerationEncoder encoder(sender_params, content);
  GenerationDecoder decoder(receiver_params, 1);
  EXPECT_EQ(decoder.add_packet(encoder.encode_packet(0, rng)),
            GenerationDecoder::Accept::kRejected);
}

TEST(GenerationStream, ReportsCompletionTransitions) {
  const Params params{.n = 2, .k = 4};
  const auto content = random_content(params.segment_bytes(), 12);
  Rng rng(13);
  GenerationEncoder encoder(params, content, /*systematic=*/true);
  GenerationDecoder decoder(params, 1);
  EXPECT_EQ(decoder.add_packet(encoder.encode_packet(0, rng)),
            GenerationDecoder::Accept::kInnovative);
  EXPECT_EQ(decoder.add_packet(encoder.encode_packet(0, rng)),
            GenerationDecoder::Accept::kGenerationComplete);
  EXPECT_EQ(decoder.add_packet(encoder.encode_packet(0, rng)),
            GenerationDecoder::Accept::kDependent);
  EXPECT_EQ(decoder.generations_complete(), 1u);
}

TEST(GenerationStreamDeathTest, ReassembleBeforeCompleteAborts) {
  GenerationDecoder decoder({.n = 2, .k = 4}, 1);
  EXPECT_DEATH((void)decoder.reassemble(), "EXTNC_CHECK");
}

}  // namespace
}  // namespace extnc::coding
