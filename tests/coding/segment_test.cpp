#include "coding/segment.h"

#include <vector>

#include <gtest/gtest.h>

namespace extnc::coding {
namespace {

TEST(Segment, ConstructedZeroed) {
  Segment s({.n = 4, .k = 8});
  for (std::uint8_t b : s.bytes()) EXPECT_EQ(b, 0);
  EXPECT_EQ(s.bytes().size(), 32u);
}

TEST(Segment, BlocksViewContiguousStorage) {
  Segment s({.n = 3, .k = 4});
  s.block(1)[2] = 42;
  EXPECT_EQ(s.bytes()[1 * 4 + 2], 42);
}

TEST(Segment, FromBytesCopiesAndPads) {
  std::vector<std::uint8_t> data{1, 2, 3, 4, 5};
  Segment s = Segment::from_bytes({.n = 2, .k = 4}, data);
  EXPECT_EQ(s.block(0)[0], 1);
  EXPECT_EQ(s.block(1)[0], 5);
  EXPECT_EQ(s.block(1)[1], 0);  // padded
}

TEST(Segment, FromBytesExactFit) {
  std::vector<std::uint8_t> data(8, 0xab);
  Segment s = Segment::from_bytes({.n = 2, .k = 4}, data);
  for (std::uint8_t b : s.bytes()) EXPECT_EQ(b, 0xab);
}

TEST(SegmentDeathTest, FromBytesTooLongAborts) {
  std::vector<std::uint8_t> data(9);
  EXPECT_DEATH(Segment::from_bytes({.n = 2, .k = 4}, data), "EXTNC_CHECK");
}

TEST(Segment, RandomIsDeterministicPerSeed) {
  Rng a(5);
  Rng b(5);
  EXPECT_EQ(Segment::random({.n = 4, .k = 16}, a),
            Segment::random({.n = 4, .k = 16}, b));
}

TEST(Segment, EqualityRequiresSameParams) {
  Rng rng(1);
  Segment a({.n = 2, .k = 8});
  Segment b({.n = 4, .k = 4});
  EXPECT_FALSE(a == b);  // same byte count, different shape
}

}  // namespace
}  // namespace extnc::coding
