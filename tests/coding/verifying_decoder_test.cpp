#include "coding/verifying_decoder.h"

#include <gtest/gtest.h>

#include "coding/encoder.h"
#include "coding/segment.h"
#include "coding/segment_digest.h"
#include "util/rng.h"

namespace extnc::coding {
namespace {

using Result = VerifyingDecoder::Result;

struct Fixture {
  explicit Fixture(Params params, std::uint64_t seed = 1)
      : rng(seed),
        source(Segment::random(params, rng)),
        encoder(source),
        decoder(SegmentDigest::compute(source)) {}

  CodedBlock clean_block() { return encoder.encode(rng); }

  // A valid-looking coded block whose payload was damaged after encoding —
  // exactly what a lying relay or post-parse memory corruption produces.
  CodedBlock polluted_block() {
    CodedBlock block = encoder.encode(rng);
    block.payload()[block.payload().size() / 2] ^= 0x5a;
    return block;
  }

  Rng rng;
  Segment source;
  Encoder encoder;
  VerifyingDecoder decoder;
};

TEST(VerifyingDecoder, CleanStreamVerifies) {
  const Params params{.n = 8, .k = 32};
  Fixture f(params);
  Result last = Result::kAccepted;
  while (!f.decoder.is_verified()) last = f.decoder.add(f.clean_block());
  EXPECT_EQ(last, Result::kVerified);
  EXPECT_EQ(f.decoder.rank(), params.n);
  EXPECT_EQ(f.decoder.decoded_segment(), f.source);
  EXPECT_EQ(f.decoder.verification_failures(), 0u);
  EXPECT_EQ(f.decoder.blocks_quarantined(), 0u);
  // Extra blocks after verification are reported, not re-processed.
  EXPECT_EQ(f.decoder.add(f.clean_block()), Result::kAlreadyVerified);
}

TEST(VerifyingDecoder, DependentBlockIsRetainedForGroupTesting) {
  const Params params{.n = 4, .k = 16};
  Fixture f(params);
  const CodedBlock block = f.clean_block();
  EXPECT_EQ(f.decoder.add(block), Result::kAccepted);
  EXPECT_EQ(f.decoder.add(block), Result::kLinearlyDependent);
  EXPECT_EQ(f.decoder.rank(), 1u);
  EXPECT_EQ(f.decoder.blocks_seen(), 2u);
  EXPECT_EQ(f.decoder.blocks_retained(), 2u);
}

TEST(VerifyingDecoder, SinglePollutedBlockIsIdentifiedAndEjected) {
  const Params params{.n = 8, .k = 32};
  Fixture f(params);
  const CodedBlock bad = f.polluted_block();
  ASSERT_EQ(f.decoder.add(bad), Result::kAccepted);

  // Clean blocks until the inner decoder completes. The completion fails
  // verification, and with zero redundancy the culprit cannot be isolated
  // yet: every leave-out subset is rank deficient.
  Result last = Result::kAccepted;
  while (f.decoder.rank() < params.n) last = f.decoder.add(f.clean_block());
  EXPECT_EQ(last, Result::kPollutionUnresolved);
  EXPECT_FALSE(f.decoder.is_verified());
  EXPECT_EQ(f.decoder.verification_failures(), 1u);

  // One redundant clean block gives leave-one-out the slack it needs.
  EXPECT_EQ(f.decoder.add(f.clean_block()), Result::kPollutionEjected);
  EXPECT_TRUE(f.decoder.is_verified());
  EXPECT_EQ(f.decoder.decoded_segment(), f.source);
  ASSERT_EQ(f.decoder.blocks_quarantined(), 1u);
  EXPECT_EQ(f.decoder.quarantined()[0], bad);
}

TEST(VerifyingDecoder, TwoPollutedBlocksAreEjectedByPairSearch) {
  const Params params{.n = 6, .k = 24};
  Fixture f(params, 3);
  f.decoder.add(f.polluted_block());
  f.decoder.add(f.polluted_block());
  while (f.decoder.rank() < params.n) f.decoder.add(f.clean_block());
  EXPECT_FALSE(f.decoder.is_verified());

  // Two redundant clean blocks; leave-one-out keeps failing (singles can't
  // explain two pollutions) until leave-two-out finds the pair.
  Result last = f.decoder.add(f.clean_block());
  if (last != Result::kPollutionEjected) last = f.decoder.add(f.clean_block());
  EXPECT_EQ(last, Result::kPollutionEjected);
  EXPECT_TRUE(f.decoder.is_verified());
  EXPECT_EQ(f.decoder.decoded_segment(), f.source);
  EXPECT_EQ(f.decoder.blocks_quarantined(), 2u);
}

TEST(VerifyingDecoder, PollutionArrivingLateIsStillCaught) {
  // Pollution in the last block to complete the basis, not the first.
  const Params params{.n = 5, .k = 16};
  Fixture f(params, 4);
  while (f.decoder.rank() < params.n - 1) f.decoder.add(f.clean_block());
  const Result completion = f.decoder.add(f.polluted_block());
  EXPECT_EQ(completion, Result::kPollutionUnresolved);
  EXPECT_EQ(f.decoder.add(f.clean_block()), Result::kPollutionEjected);
  EXPECT_EQ(f.decoder.decoded_segment(), f.source);
}

TEST(VerifyingDecoder, ManyCleanStreamsNeverFalselyQuarantine) {
  // Regression guard for the subset-search commit path: clean runs must
  // never report pollution.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Params params{.n = 4 + seed % 5, .k = 8};
    Fixture f(params, 100 + seed);
    while (!f.decoder.is_verified()) f.decoder.add(f.clean_block());
    EXPECT_EQ(f.decoder.verification_failures(), 0u) << "seed " << seed;
    EXPECT_EQ(f.decoder.blocks_quarantined(), 0u) << "seed " << seed;
    EXPECT_EQ(f.decoder.decoded_segment(), f.source) << "seed " << seed;
  }
}

TEST(VerifyingDecoderDeathTest, DecodedSegmentBeforeVerificationAborts) {
  const Params params{.n = 4, .k = 8};
  Fixture f(params);
  f.decoder.add(f.clean_block());
  EXPECT_DEATH((void)f.decoder.decoded_segment(), "EXTNC_CHECK");
}

TEST(VerifyingDecoderDeathTest, WrongShapeBlockAborts) {
  const Params params{.n = 4, .k = 8};
  Fixture f(params);
  EXPECT_DEATH(f.decoder.add(CodedBlock(Params{.n = 4, .k = 16})),
               "EXTNC_CHECK");
}

}  // namespace
}  // namespace extnc::coding
