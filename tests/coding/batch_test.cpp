#include "coding/batch.h"

#include <gtest/gtest.h>

#include "coding/params.h"
#include "util/rng.h"

namespace extnc::coding {
namespace {

TEST(Params, SegmentBytes) {
  const Params p{.n = 128, .k = 4096};
  EXPECT_EQ(p.segment_bytes(), 512u * 1024u);
}

TEST(ParamsDeathTest, ZeroDimensionsRejected) {
  const Params zero_n{.n = 0, .k = 4};
  const Params zero_k{.n = 4, .k = 0};
  EXPECT_DEATH(zero_n.validate(), "EXTNC_CHECK");
  EXPECT_DEATH(zero_k.validate(), "EXTNC_CHECK");
}

TEST(CodedBlock, WireSizeIsHeaderlessPayloadPlusCoefficients) {
  const CodedBlock block(Params{.n = 16, .k = 100});
  EXPECT_EQ(block.wire_size(), 116u);
}

TEST(CodedBlock, EqualityComparesContents) {
  const Params p{.n = 4, .k = 8};
  CodedBlock a(p);
  CodedBlock b(p);
  EXPECT_TRUE(a == b);
  b.payload()[3] = 1;
  EXPECT_FALSE(a == b);
  b.payload()[3] = 0;
  b.coefficients()[0] = 9;
  EXPECT_FALSE(a == b);
}

TEST(CodedBatch, ViewsAreContiguousRows) {
  const Params p{.n = 4, .k = 8};
  CodedBatch batch(p, 3);
  EXPECT_EQ(batch.count(), 3u);
  batch.coefficients(1)[2] = 42;
  batch.payload(2)[7] = 7;
  EXPECT_EQ(batch.coefficients_data()[1 * 4 + 2], 42);
  EXPECT_EQ(batch.payloads_data()[2 * 8 + 7], 7);
  EXPECT_EQ(batch.payload_bytes(), 24u);
}

TEST(CodedBatch, BlockMaterializesCopy) {
  const Params p{.n = 2, .k = 4};
  CodedBatch batch(p, 2);
  batch.coefficients(1)[0] = 5;
  batch.payload(1)[1] = 6;
  const CodedBlock block = batch.block(1);
  EXPECT_EQ(block.coefficients()[0], 5);
  EXPECT_EQ(block.payload()[1], 6);
  // Copy, not a view.
  batch.payload(1)[1] = 0;
  EXPECT_EQ(block.payload()[1], 6);
}

TEST(CodedBatch, EmptyBatch) {
  const CodedBatch batch(Params{.n = 2, .k = 4}, 0);
  EXPECT_EQ(batch.count(), 0u);
  EXPECT_EQ(batch.payload_bytes(), 0u);
}

}  // namespace
}  // namespace extnc::coding
