#include "coding/segment_digest.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "coding/segment.h"
#include "util/rng.h"

namespace extnc::coding {
namespace {

Segment sample_segment(const Params& params, std::uint64_t seed) {
  Rng rng(seed);
  return Segment::random(params, rng);
}

TEST(SegmentDigest, MatchesItsOwnSegment) {
  const Params params{.n = 8, .k = 32};
  const Segment segment = sample_segment(params, 1);
  const SegmentDigest digest = SegmentDigest::compute(segment, 7);
  EXPECT_EQ(digest.params(), params);
  EXPECT_EQ(digest.generation(), 7u);
  EXPECT_EQ(digest.size(), params.n);
  EXPECT_TRUE(digest.matches(segment));
  for (std::size_t i = 0; i < params.n; ++i) {
    EXPECT_TRUE(digest.matches_block(i, segment.block(i)));
  }
}

TEST(SegmentDigest, DetectsASingleFlippedBit) {
  const Params params{.n = 8, .k = 32};
  Segment segment = sample_segment(params, 2);
  const SegmentDigest digest = SegmentDigest::compute(segment);
  segment.block(3)[17] ^= 0x01;
  EXPECT_FALSE(digest.matches(segment));
  EXPECT_FALSE(digest.matches_block(3, segment.block(3)));
  // Only the damaged block mismatches.
  for (std::size_t i = 0; i < params.n; ++i) {
    if (i == 3) continue;
    EXPECT_TRUE(digest.matches_block(i, segment.block(i)));
  }
}

TEST(SegmentDigest, BlockIndexIsPartOfTheDigest) {
  // Identical blocks still get distinct digest values (domain separation
  // by index), so the manifest never contains exploitable repeats.
  const Params params{.n = 4, .k = 16};
  Segment segment(params);  // all-zero blocks, pairwise identical
  const SegmentDigest digest = SegmentDigest::compute(segment);
  EXPECT_NE(digest.block_digest(0), digest.block_digest(1));
}

TEST(SegmentDigest, SwappedBlocksAreDetected) {
  // A relay that swaps two (distinct) blocks produces a segment where
  // every block is individually authentic content — only the index
  // binding catches the confusion.
  const Params params{.n = 4, .k = 16};
  Segment segment = sample_segment(params, 8);
  const SegmentDigest digest = SegmentDigest::compute(segment);
  EXPECT_FALSE(digest.matches_block(1, segment.block(0)));
  EXPECT_FALSE(digest.matches_block(0, segment.block(1)));

  std::vector<std::uint8_t> tmp(segment.block(0).begin(),
                                segment.block(0).end());
  std::copy(segment.block(1).begin(), segment.block(1).end(),
            segment.block(0).begin());
  std::copy(tmp.begin(), tmp.end(), segment.block(1).begin());
  EXPECT_FALSE(digest.matches(segment));
}

TEST(SegmentDigest, MismatchedShapeNeverMatches) {
  const Params params{.n = 4, .k = 16};
  const SegmentDigest digest =
      SegmentDigest::compute(sample_segment(params, 3));
  EXPECT_FALSE(digest.matches(sample_segment({.n = 4, .k = 8}, 3)));
  EXPECT_FALSE(digest.matches(sample_segment({.n = 8, .k = 16}, 3)));
  std::vector<std::uint8_t> short_block(params.k - 1, 0);
  EXPECT_FALSE(digest.matches_block(0, short_block));
}

TEST(SegmentDigest, WireRoundTrip) {
  const Params params{.n = 16, .k = 64};
  const SegmentDigest digest =
      SegmentDigest::compute(sample_segment(params, 4), 42);
  const std::vector<std::uint8_t> bytes = digest.serialize();
  const std::optional<SegmentDigest> parsed = SegmentDigest::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, digest);
  EXPECT_EQ(parsed->generation(), 42u);
}

TEST(SegmentDigest, ParseRejectsDamage) {
  const Params params{.n = 8, .k = 32};
  const SegmentDigest digest =
      SegmentDigest::compute(sample_segment(params, 5), 1);
  const std::vector<std::uint8_t> good = digest.serialize();

  // Truncation at every length short of the full frame.
  for (std::size_t len = 0; len < good.size(); ++len) {
    std::vector<std::uint8_t> bytes(good.begin(), good.begin() + len);
    EXPECT_FALSE(SegmentDigest::parse(bytes).has_value()) << "len " << len;
  }
  // Any single flipped bit.
  for (std::size_t bit = 0; bit < good.size() * 8; ++bit) {
    std::vector<std::uint8_t> bytes = good;
    bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(SegmentDigest::parse(bytes).has_value()) << "bit " << bit;
  }
  // Trailing garbage.
  std::vector<std::uint8_t> extended = good;
  extended.push_back(0);
  EXPECT_FALSE(SegmentDigest::parse(extended).has_value());
}

TEST(SegmentDigest, FuzzedBytesNeverCrash) {
  Rng rng(6);
  for (int trial = 0; trial < 1000; ++trial) {
    std::vector<std::uint8_t> bytes(rng.next_below(128));
    for (auto& b : bytes) b = rng.next_byte();
    if (bytes.size() >= 4 && trial % 3 == 0) {
      bytes[0] = 0x58; bytes[1] = 0x4e; bytes[2] = 0x43; bytes[3] = 0x44;
    }
    (void)SegmentDigest::parse(bytes);  // must not crash or abort
  }
}

TEST(SegmentDigest, GenerationsDiffer) {
  const Params params{.n = 4, .k = 16};
  const Segment segment = sample_segment(params, 7);
  EXPECT_FALSE(SegmentDigest::compute(segment, 0) ==
               SegmentDigest::compute(segment, 1));
}

}  // namespace
}  // namespace extnc::coding
