// Failure-injection tests: what the system does when blocks are corrupted,
// truncated, replayed or mismatched. The raw coding core has no integrity
// protection — a corrupted coded block decodes to silently wrong data —
// and the first tests document that boundary precisely. The defense lives
// one layer up and is exercised here end to end: the XNC2 wire CRC rejects
// damaged packets at the first honest hop, and the VerifyingDecoder checks
// every completed decode against the encoder's SegmentDigest manifest,
// isolating and ejecting pollution that arrives post-parse.
#include <gtest/gtest.h>

#include "coding/block_decoder.h"
#include "coding/encoder.h"
#include "coding/progressive_decoder.h"
#include "coding/recoder.h"
#include "coding/segment_digest.h"
#include "coding/verifying_decoder.h"
#include "coding/wire.h"
#include "net/line_network.h"
#include "util/rng.h"

namespace extnc::coding {
namespace {

TEST(FailureInjection, CorruptedPayloadDecodesToWrongData) {
  // A flipped payload byte is indistinguishable from valid coded data to
  // the raw decoder: decode "succeeds" but the output differs. This is the
  // boundary the integrity layer (wire CRC + SegmentDigest) exists for.
  Rng rng(1);
  const Params params{.n = 8, .k = 32};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  ProgressiveDecoder decoder(params);
  for (std::size_t i = 0; i < params.n; ++i) {
    CodedBlock block = encoder.encode(rng);
    if (i == 3) block.payload()[7] ^= 0x01;
    decoder.add(block);
  }
  ASSERT_TRUE(decoder.is_complete());
  EXPECT_FALSE(decoder.decoded_segment() == segment);
}

TEST(FailureInjection, CorruptedCoefficientDecodesToWrongData) {
  Rng rng(2);
  const Params params{.n = 8, .k = 32};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  ProgressiveDecoder decoder(params);
  for (std::size_t i = 0; i < params.n; ++i) {
    CodedBlock block = encoder.encode(rng);
    if (i == 5) block.coefficients()[2] ^= 0x40;
    decoder.add(block);
  }
  ASSERT_TRUE(decoder.is_complete());
  EXPECT_FALSE(decoder.decoded_segment() == segment);
}

TEST(FailureInjection, CorruptionThroughRelayPollutesDownstream) {
  // Recoding spreads a corrupted block into every output — the known
  // pollution-attack surface of network coding, and the reason relays
  // must CRC-check packets *before* recoding them (see the line-network
  // tests below for the defended path).
  Rng rng(3);
  const Params params{.n = 6, .k = 16};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  Recoder relay(params);
  for (std::size_t i = 0; i < params.n; ++i) {
    CodedBlock block = encoder.encode(rng);
    if (i == 0) block.payload()[0] ^= 0xff;
    relay.add(block);
  }
  ProgressiveDecoder sink(params);
  while (!sink.is_complete()) sink.add(relay.recode(rng));
  EXPECT_FALSE(sink.decoded_segment() == segment);
}

TEST(FailureInjection, ReplayedBlocksNeverAdvanceRank) {
  Rng rng(4);
  const Params params{.n = 8, .k = 16};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  ProgressiveDecoder decoder(params);
  const CodedBlock block = encoder.encode(rng);
  decoder.add(block);
  for (int replay = 0; replay < 50; ++replay) {
    EXPECT_EQ(decoder.add(block),
              ProgressiveDecoder::Result::kLinearlyDependent);
  }
  EXPECT_EQ(decoder.rank(), 1u);
}

TEST(FailureInjection, AllZeroBlockIsAlwaysDependent) {
  const Params params{.n = 4, .k = 8};
  ProgressiveDecoder decoder(params);
  CodedBlock zero(params);
  EXPECT_EQ(decoder.add(zero), ProgressiveDecoder::Result::kLinearlyDependent);
  EXPECT_EQ(decoder.rank(), 0u);
}

TEST(FailureInjection, AdversarialLowRankStreamNeverCompletes) {
  // A malicious sender that only ever spans 3 dimensions can stall a
  // decoder forever but never corrupt it.
  Rng rng(5);
  const Params params{.n = 8, .k = 16};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  Recoder adversary(params);
  for (int i = 0; i < 3; ++i) adversary.add(encoder.encode(rng));
  ProgressiveDecoder decoder(params);
  for (int i = 0; i < 200; ++i) decoder.add(adversary.recode(rng));
  EXPECT_EQ(decoder.rank(), 3u);
  EXPECT_FALSE(decoder.is_complete());
}

TEST(FailureInjection, BitflipAnywhereInV2PacketIsRejectedNotDecoded) {
  // Under the default XNC2 format the CRC trailer covers the entire frame
  // including the generation id, so no single bit flip — header,
  // coefficients, payload or trailer — survives parsing.
  Rng rng(6);
  const Params params{.n = 4, .k = 16};
  const Segment segment = Segment::random(params, rng);
  const auto bytes = serialize(0, Encoder(segment).encode(rng));
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto copy = bytes;
    copy[i] ^= 0x10;
    EXPECT_FALSE(parse(copy).ok()) << "byte " << i;
  }
}

TEST(FailureInjection, LegacyV1GenerationBitflipStillParses) {
  // The v1 gap the CRC closes, kept as documentation: without a trailer, a
  // flipped generation-id byte (not integrity-relevant to the block
  // itself) parses fine, and payload flips decode to wrong data.
  Rng rng(6);
  const Params params{.n = 4, .k = 16};
  const Segment segment = Segment::random(params, rng);
  const auto bytes = serialize(0, Encoder(segment).encode(rng), WireFormat::kV1);
  for (std::size_t i = 0; i < kWireHeaderBytes; ++i) {
    auto copy = bytes;
    copy[i] ^= 0x10;
    const auto result = parse(copy);
    if (i >= 4 && i < 8) {
      EXPECT_TRUE(result.ok()) << i;  // generation id changed only
    } else {
      EXPECT_FALSE(result.ok()) << "header byte " << i;
    }
  }
}

TEST(FailureInjection, CorruptedPacketIsRejectedWithBadChecksum) {
  // Acceptance (a): a corrupted wire packet is rejected at parse with
  // kBadChecksum — it never reaches a decoder or a recoder.
  Rng rng(10);
  const Params params{.n = 8, .k = 32};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  for (int trial = 0; trial < 50; ++trial) {
    auto bytes = serialize(7, encoder.encode(rng));
    // Anything past the magic/shape fields: coefficients, payload, CRC.
    const std::size_t lo = kWireHeaderBytes;
    const std::size_t byte = lo + rng.next_below(bytes.size() - lo);
    bytes[byte] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    const auto result = parse(bytes);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error(), ParseError::kBadChecksum);
  }
}

TEST(FailureInjection, VerifyingDecoderEjectsPostParsePollution) {
  // Acceptance (b): pollution injected *after* the wire layer (a lying
  // relay, post-parse memory corruption) is identified by the digest
  // check, ejected into quarantine, and the decode still completes with
  // the correct content.
  Rng rng(11);
  const Params params{.n = 8, .k = 32};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  VerifyingDecoder sink(SegmentDigest::compute(segment));

  CodedBlock polluted = encoder.encode(rng);
  polluted.payload()[3] ^= 0xa5;
  sink.add(polluted);
  VerifyingDecoder::Result last = VerifyingDecoder::Result::kAccepted;
  while (!sink.is_verified()) last = sink.add(encoder.encode(rng));

  EXPECT_EQ(last, VerifyingDecoder::Result::kPollutionEjected);
  EXPECT_GE(sink.verification_failures(), 1u);
  ASSERT_EQ(sink.blocks_quarantined(), 1u);
  EXPECT_EQ(sink.quarantined()[0], polluted);
  EXPECT_EQ(sink.decoded_segment(), segment);
}

TEST(FailureInjection, LineNetworkHasZeroSilentCorruptionAcross100Seeds) {
  // Acceptance (c): a multi-hop line network with per-link fault injection
  // (corruption, truncation, duplication, reordering on top of erasures)
  // delivers a digest-verified segment in every one of 100 seeded trials —
  // zero silent corruption — while the per-link ChannelStats account for
  // every packet and every injected fault.
  net::LineNetworkConfig config;
  config.params = {.n = 8, .k = 32};
  config.hops = 3;
  config.loss_probability = 0.1;
  config.faults = {.corrupt = 0.15, .truncate = 0.05, .duplicate = 0.05,
                   .reorder = 0.05};

  std::size_t total_damaged = 0;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    config.seed = seed;
    const net::LineNetworkResult result = net::run_line_network(config);
    ASSERT_TRUE(result.completed) << "seed " << seed;
    EXPECT_TRUE(result.digest_verified) << "seed " << seed;
    EXPECT_TRUE(result.decoded_correctly) << "seed " << seed;

    ASSERT_EQ(result.link_stats.size(), config.hops);
    std::size_t damaged = 0;
    for (std::size_t link = 0; link < result.link_stats.size(); ++link) {
      const net::ChannelStats& s = result.link_stats[link];
      // Exclusive per-packet faults partition `sent` exactly; after the
      // drain nothing is left in flight.
      EXPECT_EQ(s.delivered, s.sent - s.lost + s.duplicated)
          << "seed " << seed << " link " << link;
      EXPECT_EQ(s.faults(), s.lost + s.corrupted + s.truncated +
                                s.duplicated + s.reordered);
      damaged += s.damaged();
    }
    // Every damaged (corrupted/truncated) arrival is rejected by the wire
    // layer at the receiving node — no more, no less.
    EXPECT_EQ(result.packets_rejected, damaged) << "seed " << seed;
    total_damaged += damaged;
  }
  // The sweep must actually have exercised the fault path.
  EXPECT_GT(total_damaged, 100u);
}

TEST(FailureInjection, BlockDecoderCollectsOnlyIndependentRows) {
  // Even when an adversary interleaves duplicates and stale blocks, the
  // two-stage decoder's stored set stays independent, so decode() cannot
  // hit a singular matrix.
  Rng rng(7);
  const Params params{.n = 8, .k = 16};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  BlockDecoder decoder(params);
  std::vector<CodedBlock> history;
  while (!decoder.is_ready()) {
    if (!history.empty() && rng.next_double() < 0.5) {
      decoder.add(history[rng.next_below(history.size())]);  // replay
    } else {
      CodedBlock block = encoder.encode(rng);
      decoder.add(block);
      history.push_back(std::move(block));
    }
  }
  EXPECT_EQ(decoder.decode(), segment);
}

TEST(FailureInjection, MismatchedParamsBlocksAreFatalByContract) {
  // In-process APIs treat shape mismatches as programming errors (aborts);
  // only the wire layer tolerates them. Both behaviours verified.
  Rng rng(8);
  const Params a{.n = 4, .k = 16};
  const Params b{.n = 8, .k = 16};
  const Segment segment = Segment::random(b, rng);
  const CodedBlock wrong = Encoder(segment).encode(rng);
  ProgressiveDecoder decoder(a);
  EXPECT_DEATH(decoder.add(wrong), "EXTNC_CHECK");
}

}  // namespace
}  // namespace extnc::coding
