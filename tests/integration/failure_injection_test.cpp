// Failure-injection tests: what the system does when blocks are corrupted,
// truncated, replayed or mismatched. RLNC has no integrity protection of
// its own — a corrupted coded block decodes to silently wrong data — and
// these tests document that boundary precisely, along with every failure
// the library DOES detect.
#include <gtest/gtest.h>

#include "coding/block_decoder.h"
#include "coding/encoder.h"
#include "coding/progressive_decoder.h"
#include "coding/recoder.h"
#include "coding/wire.h"
#include "util/rng.h"

namespace extnc::coding {
namespace {

TEST(FailureInjection, CorruptedPayloadDecodesToWrongData) {
  // A flipped payload byte is indistinguishable from valid coded data:
  // decode "succeeds" but the output differs. Integrity must come from an
  // outer checksum — documented library behaviour.
  Rng rng(1);
  const Params params{.n = 8, .k = 32};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  ProgressiveDecoder decoder(params);
  for (std::size_t i = 0; i < params.n; ++i) {
    CodedBlock block = encoder.encode(rng);
    if (i == 3) block.payload()[7] ^= 0x01;
    decoder.add(block);
  }
  ASSERT_TRUE(decoder.is_complete());
  EXPECT_FALSE(decoder.decoded_segment() == segment);
}

TEST(FailureInjection, CorruptedCoefficientDecodesToWrongData) {
  Rng rng(2);
  const Params params{.n = 8, .k = 32};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  ProgressiveDecoder decoder(params);
  for (std::size_t i = 0; i < params.n; ++i) {
    CodedBlock block = encoder.encode(rng);
    if (i == 5) block.coefficients()[2] ^= 0x40;
    decoder.add(block);
  }
  ASSERT_TRUE(decoder.is_complete());
  EXPECT_FALSE(decoder.decoded_segment() == segment);
}

TEST(FailureInjection, CorruptionThroughRelayPollutesDownstream) {
  // Recoding spreads a corrupted block into every output — the known
  // pollution-attack surface of network coding.
  Rng rng(3);
  const Params params{.n = 6, .k = 16};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  Recoder relay(params);
  for (std::size_t i = 0; i < params.n; ++i) {
    CodedBlock block = encoder.encode(rng);
    if (i == 0) block.payload()[0] ^= 0xff;
    relay.add(block);
  }
  ProgressiveDecoder sink(params);
  while (!sink.is_complete()) sink.add(relay.recode(rng));
  EXPECT_FALSE(sink.decoded_segment() == segment);
}

TEST(FailureInjection, ReplayedBlocksNeverAdvanceRank) {
  Rng rng(4);
  const Params params{.n = 8, .k = 16};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  ProgressiveDecoder decoder(params);
  const CodedBlock block = encoder.encode(rng);
  decoder.add(block);
  for (int replay = 0; replay < 50; ++replay) {
    EXPECT_EQ(decoder.add(block),
              ProgressiveDecoder::Result::kLinearlyDependent);
  }
  EXPECT_EQ(decoder.rank(), 1u);
}

TEST(FailureInjection, AllZeroBlockIsAlwaysDependent) {
  const Params params{.n = 4, .k = 8};
  ProgressiveDecoder decoder(params);
  CodedBlock zero(params);
  EXPECT_EQ(decoder.add(zero), ProgressiveDecoder::Result::kLinearlyDependent);
  EXPECT_EQ(decoder.rank(), 0u);
}

TEST(FailureInjection, AdversarialLowRankStreamNeverCompletes) {
  // A malicious sender that only ever spans 3 dimensions can stall a
  // decoder forever but never corrupt it.
  Rng rng(5);
  const Params params{.n = 8, .k = 16};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  Recoder adversary(params);
  for (int i = 0; i < 3; ++i) adversary.add(encoder.encode(rng));
  ProgressiveDecoder decoder(params);
  for (int i = 0; i < 200; ++i) decoder.add(adversary.recode(rng));
  EXPECT_EQ(decoder.rank(), 3u);
  EXPECT_FALSE(decoder.is_complete());
}

TEST(FailureInjection, BitflipInWireHeaderIsRejectedNotDecoded) {
  Rng rng(6);
  const Params params{.n = 4, .k = 16};
  const Segment segment = Segment::random(params, rng);
  auto bytes = serialize(0, Encoder(segment).encode(rng));
  // Flip every header byte one at a time; parse must reject or, for the
  // generation-id field (bytes 4..7, not integrity-relevant), still parse.
  for (std::size_t i = 0; i < kWireHeaderBytes; ++i) {
    auto copy = bytes;
    copy[i] ^= 0x10;
    const auto result = parse(copy);
    if (i >= 4 && i < 8) {
      EXPECT_TRUE(result.ok()) << i;  // generation id changed only
    } else {
      EXPECT_FALSE(result.ok()) << "header byte " << i;
    }
  }
}

TEST(FailureInjection, BlockDecoderCollectsOnlyIndependentRows) {
  // Even when an adversary interleaves duplicates and stale blocks, the
  // two-stage decoder's stored set stays independent, so decode() cannot
  // hit a singular matrix.
  Rng rng(7);
  const Params params{.n = 8, .k = 16};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  BlockDecoder decoder(params);
  std::vector<CodedBlock> history;
  while (!decoder.is_ready()) {
    if (!history.empty() && rng.next_double() < 0.5) {
      decoder.add(history[rng.next_below(history.size())]);  // replay
    } else {
      CodedBlock block = encoder.encode(rng);
      decoder.add(block);
      history.push_back(std::move(block));
    }
  }
  EXPECT_EQ(decoder.decode(), segment);
}

TEST(FailureInjection, MismatchedParamsBlocksAreFatalByContract) {
  // In-process APIs treat shape mismatches as programming errors (aborts);
  // only the wire layer tolerates them. Both behaviours verified.
  Rng rng(8);
  const Params a{.n = 4, .k = 16};
  const Params b{.n = 8, .k = 16};
  const Segment segment = Segment::random(b, rng);
  const CodedBlock wrong = Encoder(segment).encode(rng);
  ProgressiveDecoder decoder(a);
  EXPECT_DEATH(decoder.add(wrong), "EXTNC_CHECK");
}

}  // namespace
}  // namespace extnc::coding
