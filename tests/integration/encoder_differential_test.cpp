// Differential test across EVERY encoder implementation in the library:
// for identical coefficient rows they must all produce identical payloads.
// This is the single strongest guard on the reproduction's correctness —
// seven GPU schemes, two CPU partitioning schemes, the CPU table port, the
// hybrid splitter and the scalar reference all reduce to the same algebra.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "coding/encoder.h"
#include "cpu/cpu_encoder.h"
#include "cpu/cpu_table_encoder.h"
#include "gpu/gpu_encoder.h"
#include "gpu/hybrid_encoder.h"
#include "util/rng.h"

namespace extnc {
namespace {

using coding::CodedBatch;
using coding::Params;
using coding::Segment;

struct Case {
  std::size_t n;
  std::size_t k;
};

class EncoderDifferential : public ::testing::TestWithParam<Case> {};

TEST_P(EncoderDifferential, AllImplementationsAgree) {
  const auto [n, k] = GetParam();
  const Params params{.n = n, .k = k};
  Rng rng(n * 1000 + k);
  Segment segment = Segment::random(params, rng);
  // Sprinkle zero bytes to exercise every sentinel path.
  segment.block(0)[0] = 0;
  if (n > 2) std::fill(segment.block(2).begin(), segment.block(2).end(), 0);

  // One shared coefficient batch.
  CodedBatch reference_batch(params, 6);
  for (std::size_t j = 0; j < reference_batch.count(); ++j) {
    for (auto& c : reference_batch.coefficients(j)) {
      c = (j == 1) ? rng.next_byte()  // block 1 may contain zero coeffs
                   : rng.next_nonzero_byte();
    }
  }
  const coding::Encoder reference(segment);
  std::vector<std::vector<std::uint8_t>> expected(reference_batch.count());
  for (std::size_t j = 0; j < reference_batch.count(); ++j) {
    expected[j].resize(params.k);
    reference.encode_with_coefficients(reference_batch.coefficients(j),
                                       expected[j]);
  }

  auto check = [&](const std::string& name, auto&& encode_into) {
    CodedBatch batch(params, reference_batch.count());
    for (std::size_t j = 0; j < batch.count(); ++j) {
      std::copy(reference_batch.coefficients(j).begin(),
                reference_batch.coefficients(j).end(),
                batch.coefficients(j).begin());
    }
    encode_into(batch);
    for (std::size_t j = 0; j < batch.count(); ++j) {
      ASSERT_TRUE(std::equal(expected[j].begin(), expected[j].end(),
                             batch.payload(j).begin()))
          << name << " block " << j << " (n=" << n << ", k=" << k << ")";
    }
  };

  ThreadPool pool(3);
  check("cpu full-block", [&](CodedBatch& b) {
    cpu::CpuEncoder(segment, pool, cpu::EncodePartitioning::kFullBlock)
        .encode_into(b);
  });
  check("cpu partitioned", [&](CodedBatch& b) {
    cpu::CpuEncoder(segment, pool, cpu::EncodePartitioning::kPartitionedBlock)
        .encode_into(b);
  });
  check("cpu table", [&](CodedBatch& b) {
    cpu::CpuTableEncoder(segment, pool).encode_into(b);
  });
  for (gpu::EncodeScheme scheme :
       {gpu::EncodeScheme::kLoopBased, gpu::EncodeScheme::kTable0,
        gpu::EncodeScheme::kTable1, gpu::EncodeScheme::kTable2,
        gpu::EncodeScheme::kTable3, gpu::EncodeScheme::kTable4,
        gpu::EncodeScheme::kTable5}) {
    check(std::string("gpu ") + gpu::scheme_name(scheme),
          [&](CodedBatch& b) {
            gpu::GpuEncoder(simgpu::gtx280(), segment, scheme).encode_into(b);
          });
    check(std::string("gpu-8800gt ") + gpu::scheme_name(scheme),
          [&](CodedBatch& b) {
            gpu::GpuEncoder(simgpu::geforce_8800gt(), segment, scheme)
                .encode_into(b);
          });
  }
  check("hybrid", [&](CodedBatch& b) {
    gpu::HybridEncoder(simgpu::gtx280(), segment, pool).encode_into(b);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EncoderDifferential,
    ::testing::Values(Case{4, 4}, Case{4, 64}, Case{16, 128}, Case{32, 68},
                      Case{64, 256}, Case{128, 32}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_k" +
             std::to_string(info.param.k);
    });

}  // namespace
}  // namespace extnc
