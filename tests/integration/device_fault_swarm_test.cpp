// End-to-end graceful degradation: a swarm whose seed encodes on a GPU
// that dies mid-transfer must still complete, bit-exact, by falling back
// to the CPU — with the whole episode visible in the metrics registry and
// on the profiler trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gpu/resilient_launcher.h"
#include "net/file_transfer.h"
#include "net/swarm.h"
#include "simgpu/profiler.h"
#include "util/metrics_registry.h"

namespace extnc {
namespace {

TEST(DeviceFaultSwarm, SeedLosesGpuMidTransferSwarmStillCompletes) {
  metrics::Registry::instance().reset();
  const simgpu::DeviceSpec device = simgpu::gtx280();
  simgpu::Profiler profiler;

  // The seed's device dies partway through serving the swarm (each served
  // batch costs two kernel launches, so index 9 is well into the run).
  simgpu::FaultPlan plan;
  plan.scripted[9] = simgpu::FaultClass::kDeviceLost;
  gpu::ResilientSeed seed(device, gpu::EncodeScheme::kTable5,
                          gpu::SupervisorConfig{}, plan, /*threads=*/2,
                          /*blocks_per_launch=*/4);
  ASSERT_NE(seed.injector(), nullptr);
  seed.supervisor().set_trace(&profiler, &device);

  net::SwarmConfig config;
  config.params = {.n = 8, .k = 64};
  config.peers = 6;
  config.neighbors = 3;
  config.seed = 5;
  config.make_seed_encoder = [&seed](const coding::Segment& segment) {
    return seed.bind_segment(segment);
  };
  const net::SwarmResult result = net::run_swarm(config);

  // The transfer finished and every peer holds the exact source segment.
  EXPECT_TRUE(result.all_completed);
  EXPECT_TRUE(result.all_decoded_correctly);

  // The device really was lost, and the seed degraded rather than died.
  const gpu::SupervisorTotals& totals = seed.supervisor().totals();
  EXPECT_EQ(totals.device_losses, 1u);
  EXPECT_GT(totals.gpu_ok, 0u);      // served from the GPU before the loss
  EXPECT_GT(totals.fallbacks, 0u);   // and from the CPU after
  EXPECT_TRUE(seed.supervisor().breaker_open());

  // The episode is counted in the registry...
  metrics::Registry& registry = metrics::Registry::instance();
  EXPECT_EQ(registry.value("gpu.resilient.device_lost"), 1.0);
  EXPECT_GT(registry.value("gpu.resilient.fallbacks"), 0.0);
  EXPECT_GT(registry.value("gpu.resilient.operations"),
            registry.value("gpu.resilient.fallbacks"));
  EXPECT_EQ(registry.value("gpu.resilient.breaker_open"), 1.0);
  EXPECT_EQ(registry.value("simgpu.faults.device_lost"), 1.0);

  // ...and marked on the trace timeline.
  EXPECT_EQ(profiler.label_summary("fault/device_lost").launches, 1u);
  EXPECT_GT(profiler.label_summary("fault/cpu_fallback").launches, 0u);
}

TEST(DeviceFaultSwarm, FaultFreeGpuSeedMatchesBaselineCompletion) {
  // Sanity: with no faults injected the supervised GPU seed changes
  // nothing about what the swarm receives — every peer decodes correctly
  // and the seed never leaves the GPU path.
  const simgpu::DeviceSpec device = simgpu::gtx280();
  gpu::ResilientSeed seed(device, gpu::EncodeScheme::kTable5);
  EXPECT_EQ(seed.injector(), nullptr);  // empty plan: no injector at all

  net::SwarmConfig config;
  config.params = {.n = 8, .k = 64};
  config.peers = 5;
  config.seed = 6;
  config.make_seed_encoder = [&seed](const coding::Segment& segment) {
    return seed.bind_segment(segment);
  };
  const net::SwarmResult result = net::run_swarm(config);
  EXPECT_TRUE(result.all_completed);
  EXPECT_TRUE(result.all_decoded_correctly);
  const gpu::SupervisorTotals& totals = seed.supervisor().totals();
  EXPECT_GT(totals.operations, 0u);
  EXPECT_EQ(totals.operations, totals.gpu_ok);
  EXPECT_EQ(totals.fallbacks, 0u);
  EXPECT_FALSE(seed.supervisor().breaker_open());
}

TEST(DeviceFaultSwarm, FileTransferRoundtripsThroughFaultySupervisedSeed) {
  // The generation-addressed hook: a whole-file encode served by a seed
  // whose device misbehaves (transient failures + a silent bit flip + a
  // late loss) must still produce a container that decodes to the exact
  // original content.
  Rng rng(7);
  std::vector<std::uint8_t> content(3000);
  for (auto& b : content) b = static_cast<std::uint8_t>(rng.next_below(256));

  auto plan = simgpu::FaultPlan::parse("flip@3,fail@6,lost@30", 13);
  ASSERT_TRUE(plan.has_value());
  gpu::SupervisorConfig supervision;
  supervision.verify_sample = 64;  // catch the flip deterministically
  gpu::ResilientSeed seed(simgpu::gtx280(), gpu::EncodeScheme::kTable5,
                          supervision, *plan);

  net::FileEncodeOptions options;
  options.params = {.n = 8, .k = 64};
  options.redundancy = 0.25;
  options.seed = 8;
  options.make_seed_encoder = [&seed](const coding::Params& params,
                                      std::span<const std::uint8_t> data) {
    return seed.bind_content(params, data);
  };
  const auto container = net::encode_file(content, options);
  const auto decoded = net::decode_file(container);
  ASSERT_TRUE(decoded.ok) << decoded.error;
  EXPECT_EQ(decoded.content, content);

  const gpu::SupervisorTotals& totals = seed.supervisor().totals();
  EXPECT_GT(totals.corrupted_outputs, 0u);  // the flip was caught, not shipped
  EXPECT_GT(totals.launch_failures, 0u);
  EXPECT_EQ(totals.device_losses, 1u);
  EXPECT_GT(totals.fallbacks, 0u);
}

}  // namespace
}  // namespace extnc
