#include "cpu/xeon_model.h"

#include <gtest/gtest.h>

namespace extnc::cpu {
namespace {

using coding::Params;

// These tests pin the model to the paper's published CPU numbers; if a
// calibration constant drifts, they fail.

TEST(XeonModel, FullBlockEncodeMatchesFig10Labels) {
  const XeonModel model;
  EXPECT_NEAR(model.encode_mb_per_s({.n = 128, .k = 4096},
                                    EncodePartitioning::kFullBlock),
              67.2, 0.1);
  EXPECT_NEAR(model.encode_mb_per_s({.n = 256, .k = 4096},
                                    EncodePartitioning::kFullBlock),
              33.6, 0.1);
  EXPECT_NEAR(model.encode_mb_per_s({.n = 512, .k = 4096},
                                    EncodePartitioning::kFullBlock),
              16.8, 0.1);
}

TEST(XeonModel, FullBlockEncodeIsFlatAcrossBlockSize) {
  const XeonModel model;
  const double at_128b = model.encode_mb_per_s(
      {.n = 128, .k = 128}, EncodePartitioning::kFullBlock);
  const double at_32k = model.encode_mb_per_s(
      {.n = 128, .k = 32768}, EncodePartitioning::kFullBlock);
  EXPECT_DOUBLE_EQ(at_128b, at_32k);
}

TEST(XeonModel, PartitionedEncodeConvergesToFullBlockAtLargeK) {
  const XeonModel model;
  const Params small{.n = 128, .k = 128};
  const Params large{.n = 128, .k = 32768};
  const double fb = model.encode_mb_per_s(small, EncodePartitioning::kFullBlock);
  const double part_small =
      model.encode_mb_per_s(small, EncodePartitioning::kPartitionedBlock);
  const double part_large =
      model.encode_mb_per_s(large, EncodePartitioning::kPartitionedBlock);
  EXPECT_LT(part_small, 0.5 * fb);   // big gap at 128 B
  EXPECT_GT(part_large, 0.95 * fb);  // converged at 32 KB
}

TEST(XeonModel, TableEncodeLosesVsLoopBased) {
  const XeonModel model;
  const Params p{.n = 128, .k = 4096};
  EXPECT_NEAR(model.encode_table_mb_per_s(p) /
                  model.encode_mb_per_s(p, EncodePartitioning::kFullBlock),
              0.57, 0.01);
}

TEST(XeonModel, SingleSegmentDecodeGrowsWithBlockSize) {
  const XeonModel model;
  double prev = 0;
  for (std::size_t k = 128; k <= 32768; k *= 2) {
    const double rate = model.decode_single_segment_mb_per_s({.n = 128, .k = k});
    EXPECT_GT(rate, prev);
    prev = rate;
  }
}

TEST(XeonModel, SingleSegmentDecodeNearPaperAnchor) {
  // Fig. 9 discussion: Mac Pro multi-segment gain at (128, 16 KB) is ~1.3x
  // over single-segment; multi-segment peak is ~46 MB/s, so single-segment
  // sits in the mid-30s.
  const XeonModel model;
  const double rate =
      model.decode_single_segment_mb_per_s({.n = 128, .k = 16384});
  EXPECT_GT(rate, 30.0);
  EXPECT_LT(rate, 42.0);
}

TEST(XeonModel, MultiSegmentDecodeGainNearPaperAnchor) {
  const XeonModel model;
  const Params p{.n = 128, .k = 16384};
  const double gain = model.decode_multi_segment_mb_per_s(p) /
                      model.decode_single_segment_mb_per_s(p);
  EXPECT_GT(gain, 1.1);
  EXPECT_LT(gain, 1.6);  // paper: ~1.3x
}

TEST(XeonModel, MultiSegmentDecodeHasCacheCliff) {
  // Mac Pro decoding drops at 32 KB for n=128 (working set exceeds 24 MB).
  const XeonModel model;
  const double at_16k =
      model.decode_multi_segment_mb_per_s({.n = 128, .k = 16384});
  const double at_32k =
      model.decode_multi_segment_mb_per_s({.n = 128, .k = 32768});
  EXPECT_LT(at_32k, at_16k);
}

TEST(XeonModel, CliffStartsEarlierForLargerN) {
  // Paper: drop at 8 KB for n=512, 16 KB for n=256, 32 KB for n=128.
  const XeonModel model;
  auto cliff_k = [&model](std::size_t n) {
    double prev = 0;
    for (std::size_t k = 128; k <= 65536; k *= 2) {
      const double rate = model.decode_multi_segment_mb_per_s({.n = n, .k = k});
      if (rate < prev) return k;
      prev = rate;
    }
    return std::size_t{0};
  };
  const std::size_t cliff_512 = cliff_k(512);
  const std::size_t cliff_128 = cliff_k(128);
  ASSERT_NE(cliff_512, 0u);
  ASSERT_NE(cliff_128, 0u);
  EXPECT_LT(cliff_512, cliff_128);
}

}  // namespace
}  // namespace extnc::cpu
