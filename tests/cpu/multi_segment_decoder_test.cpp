#include "cpu/multi_segment_decoder.h"

#include <gtest/gtest.h>

#include "coding/block_decoder.h"
#include "coding/encoder.h"

namespace extnc::cpu {
namespace {

using coding::CodedBatch;
using coding::Encoder;
using coding::Params;
using coding::Segment;

// Builds a batch of exactly n independent coded blocks for a segment.
CodedBatch independent_batch(const Segment& segment, Rng& rng) {
  const Params& params = segment.params();
  const Encoder encoder(segment);
  coding::BlockDecoder probe(params);
  CodedBatch batch(params, params.n);
  std::size_t stored = 0;
  while (stored < params.n) {
    coding::CodedBlock block = encoder.encode(rng);
    if (!probe.add(block)) continue;
    std::copy(block.coefficients().begin(), block.coefficients().end(),
              batch.coefficients(stored).begin());
    std::copy(block.payload().begin(), block.payload().end(),
              batch.payload(stored).begin());
    ++stored;
  }
  return batch;
}

TEST(MultiSegmentDecoder, DecodesAllSegments) {
  Rng rng(1);
  const Params params{.n = 12, .k = 96};
  ThreadPool pool(4);
  std::vector<Segment> segments;
  std::vector<CodedBatch> batches;
  for (int s = 0; s < 6; ++s) {
    segments.push_back(Segment::random(params, rng));
    batches.push_back(independent_batch(segments.back(), rng));
  }
  MultiSegmentDecoder decoder(params, pool);
  const std::vector<Segment> decoded = decoder.decode_all(batches);
  ASSERT_EQ(decoded.size(), segments.size());
  for (std::size_t s = 0; s < segments.size(); ++s) {
    EXPECT_EQ(decoded[s], segments[s]) << "segment " << s;
  }
}

TEST(MultiSegmentDecoder, MoreSegmentsThanThreads) {
  Rng rng(2);
  const Params params{.n = 6, .k = 24};
  ThreadPool pool(2);
  std::vector<Segment> segments;
  std::vector<CodedBatch> batches;
  for (int s = 0; s < 9; ++s) {
    segments.push_back(Segment::random(params, rng));
    batches.push_back(independent_batch(segments.back(), rng));
  }
  MultiSegmentDecoder decoder(params, pool);
  const auto decoded = decoder.decode_all(batches);
  for (std::size_t s = 0; s < segments.size(); ++s) {
    EXPECT_EQ(decoded[s], segments[s]);
  }
}

TEST(MultiSegmentDecoder, EmptyInputYieldsEmptyOutput) {
  ThreadPool pool(2);
  MultiSegmentDecoder decoder({.n = 4, .k = 8}, pool);
  EXPECT_TRUE(decoder.decode_all({}).empty());
}

TEST(MultiSegmentDecoderDeathTest, WrongBlockCountAborts) {
  Rng rng(3);
  const Params params{.n = 4, .k = 8};
  ThreadPool pool(2);
  MultiSegmentDecoder decoder(params, pool);
  std::vector<CodedBatch> batches;
  batches.emplace_back(params, params.n - 1);  // short one block
  EXPECT_DEATH((void)decoder.decode_all(batches), "EXTNC_CHECK");
}

}  // namespace
}  // namespace extnc::cpu
