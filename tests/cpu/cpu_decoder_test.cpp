#include "cpu/cpu_decoder.h"

#include <gtest/gtest.h>

#include "coding/encoder.h"
#include "coding/progressive_decoder.h"

namespace extnc::cpu {
namespace {

using coding::CodedBlock;
using coding::Encoder;
using coding::Params;
using coding::ProgressiveDecoder;
using coding::Segment;

TEST(CpuDecoder, RoundTripMatchesSegment) {
  Rng rng(1);
  const Params params{.n = 32, .k = 500};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  ThreadPool pool(4);
  CpuDecoder decoder(params, pool);
  while (!decoder.is_complete()) {
    decoder.add(encoder.encode(rng));
  }
  EXPECT_EQ(decoder.decoded_segment(), segment);
}

TEST(CpuDecoder, AgreesWithSerialDecoderBlockByBlock) {
  Rng rng(2);
  const Params params{.n = 16, .k = 64};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  ThreadPool pool(3);
  CpuDecoder parallel(params, pool);
  ProgressiveDecoder serial(params);
  while (!serial.is_complete()) {
    const CodedBlock block = encoder.encode(rng);
    const auto pr = parallel.add(block);
    const auto sr = serial.add(block);
    ASSERT_EQ(pr == CpuDecoder::Result::kAccepted,
              sr == ProgressiveDecoder::Result::kAccepted);
    ASSERT_EQ(parallel.rank(), serial.rank());
  }
  EXPECT_TRUE(parallel.is_complete());
  EXPECT_EQ(parallel.decoded_segment(), serial.decoded_segment());
}

TEST(CpuDecoder, DetectsDependentBlocks) {
  Rng rng(3);
  const Params params{.n = 8, .k = 32};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  ThreadPool pool(2);
  CpuDecoder decoder(params, pool);
  const CodedBlock block = encoder.encode(rng);
  EXPECT_EQ(decoder.add(block), CpuDecoder::Result::kAccepted);
  EXPECT_EQ(decoder.add(block), CpuDecoder::Result::kLinearlyDependent);
}

TEST(CpuDecoder, RejectsAfterComplete) {
  Rng rng(4);
  const Params params{.n = 4, .k = 16};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  ThreadPool pool(2);
  CpuDecoder decoder(params, pool);
  while (!decoder.is_complete()) decoder.add(encoder.encode(rng));
  EXPECT_EQ(decoder.add(encoder.encode(rng)),
            CpuDecoder::Result::kAlreadyComplete);
}

TEST(CpuDecoder, SingleThreadPoolStillWorks) {
  Rng rng(5);
  const Params params{.n = 12, .k = 47};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  ThreadPool pool(1);
  CpuDecoder decoder(params, pool);
  while (!decoder.is_complete()) decoder.add(encoder.encode(rng));
  EXPECT_EQ(decoder.decoded_segment(), segment);
}

class CpuDecoderSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(CpuDecoderSweep, RoundTrip) {
  const auto [n, k] = GetParam();
  Rng rng(600 + n + k);
  const Params params{.n = n, .k = k};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  ThreadPool pool(4);
  CpuDecoder decoder(params, pool);
  while (!decoder.is_complete()) decoder.add(encoder.encode(rng));
  EXPECT_EQ(decoder.decoded_segment(), segment);
}

INSTANTIATE_TEST_SUITE_P(
    ParamSweep, CpuDecoderSweep,
    ::testing::Combine(::testing::Values(1u, 8u, 64u),
                       ::testing::Values(1u, 63u, 1024u)));

}  // namespace
}  // namespace extnc::cpu
