#include "cpu/cpu_table_encoder.h"

#include <gtest/gtest.h>

#include "coding/encoder.h"

namespace extnc::cpu {
namespace {

using coding::CodedBatch;
using coding::Encoder;
using coding::Params;
using coding::Segment;

TEST(CpuTableEncoder, MatchesLoopBasedReferenceBitExactly) {
  Rng rng(1);
  const Params params{.n = 16, .k = 200};
  const Segment segment = Segment::random(params, rng);
  ThreadPool pool(4);
  const CpuTableEncoder table_encoder(segment, pool);
  const Encoder reference(segment);
  const CodedBatch batch = table_encoder.encode_batch(10, rng);
  std::vector<std::uint8_t> expected(params.k);
  for (std::size_t j = 0; j < batch.count(); ++j) {
    reference.encode_with_coefficients(batch.coefficients(j), expected);
    ASSERT_TRUE(std::equal(expected.begin(), expected.end(),
                           batch.payload(j).begin()));
  }
}

TEST(CpuTableEncoder, HandlesZeroSourceBytes) {
  // Zero bytes map to the 0xff log sentinel; the encoder must skip them,
  // not index exp[] with a bogus sum.
  Rng rng(2);
  const Params params{.n = 4, .k = 64};
  Segment segment(params);  // all zeros
  ThreadPool pool(2);
  const CpuTableEncoder encoder(segment, pool);
  const CodedBatch batch = encoder.encode_batch(3, rng);
  for (std::size_t j = 0; j < batch.count(); ++j) {
    for (std::uint8_t b : batch.payload(j)) EXPECT_EQ(b, 0);
  }
}

TEST(CpuTableEncoder, MixedZeroAndNonzeroContent) {
  Rng rng(3);
  const Params params{.n = 8, .k = 128};
  Segment segment = Segment::random(params, rng);
  // Zero out one entire block and scatter zero bytes elsewhere.
  std::fill(segment.block(3).begin(), segment.block(3).end(), 0);
  segment.block(5)[7] = 0;
  ThreadPool pool(2);
  const CpuTableEncoder table_encoder(segment, pool);
  const Encoder reference(segment);
  const CodedBatch batch = table_encoder.encode_batch(5, rng);
  std::vector<std::uint8_t> expected(params.k);
  for (std::size_t j = 0; j < batch.count(); ++j) {
    reference.encode_with_coefficients(batch.coefficients(j), expected);
    ASSERT_TRUE(std::equal(expected.begin(), expected.end(),
                           batch.payload(j).begin()));
  }
}

}  // namespace
}  // namespace extnc::cpu
