#include "cpu/cpu_encoder.h"

#include <gtest/gtest.h>

#include "coding/encoder.h"
#include "coding/progressive_decoder.h"

namespace extnc::cpu {
namespace {

using coding::CodedBatch;
using coding::Encoder;
using coding::Params;
using coding::ProgressiveDecoder;
using coding::Segment;

// Fill a batch's coefficient rows deterministically.
void fill_coefficients(CodedBatch& batch, Rng& rng) {
  for (std::size_t j = 0; j < batch.count(); ++j) {
    for (auto& c : batch.coefficients(j)) c = rng.next_nonzero_byte();
  }
}

class CpuEncoderModes : public ::testing::TestWithParam<EncodePartitioning> {};

TEST_P(CpuEncoderModes, MatchesReferenceEncoderBitExactly) {
  Rng rng(1);
  const Params params{.n = 32, .k = 257};  // awkward k on purpose
  const Segment segment = Segment::random(params, rng);
  ThreadPool pool(4);
  const CpuEncoder cpu_encoder(segment, pool, GetParam());
  const Encoder reference(segment);

  CodedBatch batch(params, 16);
  fill_coefficients(batch, rng);
  cpu_encoder.encode_into(batch);

  std::vector<std::uint8_t> expected(params.k);
  for (std::size_t j = 0; j < batch.count(); ++j) {
    reference.encode_with_coefficients(batch.coefficients(j), expected);
    ASSERT_TRUE(std::equal(expected.begin(), expected.end(),
                           batch.payload(j).begin()))
        << "block " << j;
  }
}

TEST_P(CpuEncoderModes, OutputDecodes) {
  Rng rng(2);
  const Params params{.n = 16, .k = 100};
  const Segment segment = Segment::random(params, rng);
  ThreadPool pool(3);
  const CpuEncoder encoder(segment, pool, GetParam());
  const CodedBatch batch = encoder.encode_batch(params.n + 4, rng);
  ProgressiveDecoder decoder(params);
  for (std::size_t j = 0; j < batch.count() && !decoder.is_complete(); ++j) {
    decoder.add(batch.coefficients(j), batch.payload(j));
  }
  ASSERT_TRUE(decoder.is_complete());
  EXPECT_EQ(decoder.decoded_segment(), segment);
}

TEST_P(CpuEncoderModes, DeterministicAcrossThreadCounts) {
  Rng rng(3);
  const Params params{.n = 24, .k = 333};
  const Segment segment = Segment::random(params, rng);
  CodedBatch batch1(params, 9);
  fill_coefficients(batch1, rng);
  CodedBatch batch8(params, 9);
  for (std::size_t j = 0; j < 9; ++j) {
    std::copy(batch1.coefficients(j).begin(), batch1.coefficients(j).end(),
              batch8.coefficients(j).begin());
  }
  ThreadPool pool1(1);
  ThreadPool pool8(8);
  CpuEncoder enc1(segment, pool1, GetParam());
  CpuEncoder enc8(segment, pool8, GetParam());
  enc1.encode_into(batch1);
  enc8.encode_into(batch8);
  for (std::size_t j = 0; j < 9; ++j) {
    ASSERT_TRUE(std::equal(batch1.payload(j).begin(), batch1.payload(j).end(),
                           batch8.payload(j).begin()));
  }
}

TEST_P(CpuEncoderModes, EmptyBatchIsNoop) {
  Rng rng(4);
  const Params params{.n = 4, .k = 16};
  const Segment segment = Segment::random(params, rng);
  ThreadPool pool(2);
  const CpuEncoder encoder(segment, pool, GetParam());
  CodedBatch batch(params, 0);
  encoder.encode_into(batch);  // must not crash
  EXPECT_EQ(batch.count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(BothSchemes, CpuEncoderModes,
                         ::testing::Values(EncodePartitioning::kFullBlock,
                                           EncodePartitioning::kPartitionedBlock));

TEST(CpuEncoder, BothSchemesAgreeWithEachOther) {
  Rng rng(5);
  const Params params{.n = 48, .k = 1024};
  const Segment segment = Segment::random(params, rng);
  ThreadPool pool(4);
  CodedBatch a(params, 8);
  fill_coefficients(a, rng);
  CodedBatch b(params, 8);
  for (std::size_t j = 0; j < 8; ++j) {
    std::copy(a.coefficients(j).begin(), a.coefficients(j).end(),
              b.coefficients(j).begin());
  }
  CpuEncoder full(segment, pool, EncodePartitioning::kFullBlock);
  CpuEncoder part(segment, pool, EncodePartitioning::kPartitionedBlock);
  full.encode_into(a);
  part.encode_into(b);
  for (std::size_t j = 0; j < 8; ++j) {
    ASSERT_TRUE(std::equal(a.payload(j).begin(), a.payload(j).end(),
                           b.payload(j).begin()));
  }
}

}  // namespace
}  // namespace extnc::cpu
