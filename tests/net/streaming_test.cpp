#include "net/streaming.h"

#include <gtest/gtest.h>

namespace extnc::net {
namespace {

// Pins the Sec. 5.1.1 streaming-server arithmetic to the paper's numbers.

TEST(Streaming, SegmentDurationIs5Point33Seconds) {
  // 512 KB at 768 kbps: "each segment contains content that lasts 5.33 s".
  EXPECT_NEAR(segment_duration_s(StreamConfig{}), 5.46, 0.2);
  // (The paper's 5.33 uses decimal kilobytes; binary gives 5.46.)
}

TEST(Streaming, LoopBasedRateServes1385Peers) {
  EXPECT_EQ(peers_by_coding_rate(133.0, StreamConfig{}), 1385u);
}

TEST(Streaming, FirstTableSchemeServes1844Peers) {
  // "now more than 1844 downstream peers can be supported" at ~177 MB/s.
  EXPECT_NEAR(static_cast<double>(peers_by_coding_rate(177.0, StreamConfig{})),
              1844, 15);
}

TEST(Streaming, BestSchemeServesMoreThan3000Peers) {
  EXPECT_GT(peers_by_coding_rate(294.0, StreamConfig{}), 3000u);
}

TEST(Streaming, BestSchemeSaturatesTwoGigabitNics) {
  EXPECT_GT(nics_saturated(294.0, StreamConfig{}), 2.0);
  EXPECT_LT(nics_saturated(133.0, StreamConfig{}), 1.1);
}

TEST(Streaming, CodedBlocksPerSegmentMatchesPaper) {
  // "serving so many peers ... requires generating at least 177,333 coded
  // blocks from every video segment" (1385 peers x 128 blocks).
  EXPECT_NEAR(static_cast<double>(
                  coded_blocks_per_segment(1385, StreamConfig{})),
              177333, 500);
}

TEST(Streaming, HundredsOfSegmentsFitGpuMemory) {
  // "1024 MB memory on the GTX 280 is able to easily accommodate hundreds
  // of such segments."
  const std::size_t segments =
      segments_in_memory(1024ull * 1024 * 1024, StreamConfig{});
  EXPECT_GE(segments, 2000u);  // 1 GB / 512 KB
}

TEST(Streaming, NicLimitIndependentOfCodingRate) {
  EXPECT_EQ(peers_by_nic(StreamConfig{}, 1), 1302u);
  EXPECT_EQ(peers_by_nic(StreamConfig{}, 2), 2604u);
}

TEST(Streaming, HigherStreamRateServesFewerPeers) {
  StreamConfig hd;
  hd.stream_kbps = 2000;
  EXPECT_LT(peers_by_coding_rate(294.0, hd),
            peers_by_coding_rate(294.0, StreamConfig{}));
}

}  // namespace
}  // namespace extnc::net
