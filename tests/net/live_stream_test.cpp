#include "net/live_stream.h"

#include <gtest/gtest.h>

namespace extnc::net {
namespace {

LiveStreamConfig base_config() {
  LiveStreamConfig config;
  config.params = {.n = 8, .k = 32};
  config.viewers = 6;
  config.stream_segments = 4;
  config.segment_duration_s = 1.0;
  // Capacity for 25 viewers (200 blocks/s, 8 needed per viewer-second).
  config.server_blocks_per_second = 200.0;
  config.seed = 11;
  return config;
}

TEST(LiveStream, UnderloadedServerStreamsSmoothly) {
  const LiveStreamResult result = run_live_stream(base_config());
  EXPECT_EQ(result.rebuffer_events, 0u);
  EXPECT_EQ(result.smooth_viewers, 6u);
  EXPECT_TRUE(result.all_content_decoded_correctly);
}

TEST(LiveStream, EveryViewerPlaysWholeStream) {
  LiveStreamConfig config = base_config();
  const LiveStreamResult result = run_live_stream(config);
  EXPECT_EQ(result.segments_played,
            config.viewers * config.stream_segments);
}

TEST(LiveStream, CapacityFormulaMatchesConfig) {
  EXPECT_EQ(stall_free_capacity(base_config()), 25u);
}

TEST(LiveStream, OverloadedServerCausesStalls) {
  LiveStreamConfig config = base_config();
  config.viewers = 60;  // far beyond the 25-viewer capacity
  const LiveStreamResult result = run_live_stream(config);
  EXPECT_GT(result.rebuffer_events, 0u);
  EXPECT_LT(result.smooth_viewers, config.viewers);
}

TEST(LiveStream, StallsGrowWithViewerCount) {
  LiveStreamConfig config = base_config();
  config.viewers = 30;
  const std::size_t stalls_30 = run_live_stream(config).rebuffer_events;
  config.viewers = 80;
  const std::size_t stalls_80 = run_live_stream(config).rebuffer_events;
  EXPECT_GT(stalls_80, stalls_30);
}

TEST(LiveStream, ModerateLossAbsorbedByHeadroom) {
  LiveStreamConfig config = base_config();
  config.viewers = 5;
  config.loss_probability = 0.2;  // capacity 25 >> 5 viewers
  const LiveStreamResult result = run_live_stream(config);
  EXPECT_EQ(result.rebuffer_events, 0u);
  EXPECT_TRUE(result.all_content_decoded_correctly);
}

TEST(LiveStream, LossAtFullLoadCausesStalls) {
  LiveStreamConfig config = base_config();
  config.viewers = 25;  // exactly at capacity
  config.loss_probability = 0.3;
  const LiveStreamResult result = run_live_stream(config);
  EXPECT_GT(result.rebuffer_events, 0u);
}

TEST(LiveStream, DeterministicForSeed) {
  const LiveStreamResult a = run_live_stream(base_config());
  const LiveStreamResult b = run_live_stream(base_config());
  EXPECT_EQ(a.blocks_sent, b.blocks_sent);
  EXPECT_EQ(a.rebuffer_events, b.rebuffer_events);
}

TEST(LiveStream, ServerStopsSendingAfterBroadcast) {
  LiveStreamConfig config = base_config();
  config.viewers = 1;
  const LiveStreamResult result = run_live_stream(config);
  // One viewer, 4 segments, 8 blocks each: exactly 32 innovative blocks
  // needed; dependent extras are possible but bounded by the send loop
  // stopping once the viewer completes each segment.
  EXPECT_GE(result.blocks_sent,
            config.stream_segments * config.params.n);
  EXPECT_LT(result.blocks_sent,
            config.stream_segments * config.params.n + 8);
}

}  // namespace
}  // namespace extnc::net
