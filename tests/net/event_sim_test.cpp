#include "net/event_sim.h"

#include <vector>

#include <gtest/gtest.h>

namespace extnc::net {
namespace {

TEST(EventSim, RunsEventsInTimeOrder) {
  EventSim sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(EventSim, EqualTimesFireInSchedulingOrder) {
  EventSim sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventSim, CallbacksCanScheduleMoreEvents) {
  EventSim sim;
  int fired = 0;
  std::function<void()> tick = [&] {
    ++fired;
    if (fired < 5) sim.schedule_in(1.0, tick);
  };
  sim.schedule_in(1.0, tick);
  sim.run_all();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(EventSim, RunUntilStopsAtDeadline) {
  EventSim sim;
  int fired = 0;
  std::function<void()> tick = [&] {
    ++fired;
    sim.schedule_in(1.0, tick);  // endless
  };
  sim.schedule_in(1.0, tick);
  sim.run_until(10.5);
  EXPECT_EQ(fired, 10);
  EXPECT_DOUBLE_EQ(sim.now(), 10.5);
  EXPECT_FALSE(sim.empty());
}

TEST(EventSim, StepReturnsFalseWhenEmpty) {
  EventSim sim;
  EXPECT_FALSE(sim.step());
  EXPECT_TRUE(sim.empty());
}

TEST(EventSimDeathTest, SchedulingInThePastAborts) {
  EventSim sim;
  sim.schedule_at(5.0, [] {});
  sim.run_all();
  EXPECT_DEATH(sim.schedule_at(1.0, [] {}), "EXTNC_CHECK");
}

}  // namespace
}  // namespace extnc::net
