#include "net/event_sim.h"

#include <vector>

#include <gtest/gtest.h>

namespace extnc::net {
namespace {

TEST(EventSim, RunsEventsInTimeOrder) {
  EventSim sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(EventSim, EqualTimesFireInSchedulingOrder) {
  EventSim sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventSim, CallbacksCanScheduleMoreEvents) {
  EventSim sim;
  int fired = 0;
  std::function<void()> tick = [&] {
    ++fired;
    if (fired < 5) sim.schedule_in(1.0, tick);
  };
  sim.schedule_in(1.0, tick);
  sim.run_all();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(EventSim, RunUntilStopsAtDeadline) {
  EventSim sim;
  int fired = 0;
  std::function<void()> tick = [&] {
    ++fired;
    sim.schedule_in(1.0, tick);  // endless
  };
  sim.schedule_in(1.0, tick);
  sim.run_until(10.5);
  EXPECT_EQ(fired, 10);
  EXPECT_DOUBLE_EQ(sim.now(), 10.5);
  EXPECT_FALSE(sim.empty());
}

TEST(EventSim, StepReturnsFalseWhenEmpty) {
  EventSim sim;
  EXPECT_FALSE(sim.step());
  EXPECT_TRUE(sim.empty());
}

TEST(EventSim, SchedulingInThePastClampsToNow) {
  // A callback reacting to an event conceptually happens "now"; asking for
  // an earlier time is clamped to now rather than rejected, so jittered
  // retransmit timers can't abort the simulation.
  EventSim sim;
  sim.schedule_at(5.0, [] {});
  sim.run_all();
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);

  std::vector<int> order;
  sim.schedule_at(1.0, [&] { order.push_back(1); });   // the past: clamps
  sim.schedule_at(5.0, [&] { order.push_back(2); });   // "now" exactly
  sim.schedule_at(6.0, [&] { order.push_back(3); });
  sim.run_all();
  // Both clamped-past and exactly-now events fire at t = 5, in scheduling
  // order, before the future one; the clock never moves backwards.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 6.0);
}

TEST(EventSim, CallbackSchedulingEarlierThanNowFiresImmediately) {
  EventSim sim;
  std::vector<int> order;
  sim.schedule_at(2.0, [&] {
    order.push_back(1);
    sim.schedule_at(0.5, [&] { order.push_back(2); });  // clamped to 2.0
  });
  sim.schedule_at(2.0, [&] { order.push_back(3); });
  sim.run_all();
  // The clamped event lands at t = 2 but behind everything already queued
  // there (stable FIFO order at equal times).
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(EventSim, RunUntilFiresDeadlineExactEvents) {
  // run_until(t) is inclusive: an event scheduled at exactly t fires, and
  // the clock then sits at t so a later run_until continues cleanly.
  EventSim sim;
  int fired = 0;
  sim.schedule_at(10.0, [&] { ++fired; });
  sim.run_until(10.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
  EXPECT_TRUE(sim.empty());

  // An event spawned at the deadline, for the deadline, still fires in the
  // same run_until call.
  sim.schedule_at(20.0, [&] {
    sim.schedule_at(20.0, [&] { ++fired; });
  });
  sim.run_until(20.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 20.0);
}

}  // namespace
}  // namespace extnc::net
