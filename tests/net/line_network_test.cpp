#include "net/line_network.h"

#include <gtest/gtest.h>

namespace extnc::net {
namespace {

LineNetworkConfig base_config() {
  LineNetworkConfig config;
  config.params = {.n = 16, .k = 32};
  config.hops = 3;
  config.loss_probability = 0.2;
  config.seed = 5;
  return config;
}

TEST(LineNetwork, LossFreeChainDeliversAtUnitRate) {
  LineNetworkConfig config = base_config();
  config.loss_probability = 0.0;
  const LineNetworkResult result = run_line_network(config);
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(result.decoded_correctly);
  // n blocks through h hops of pipeline: n + (h - 1) rounds plus at most a
  // couple of dependent combinations.
  EXPECT_LE(result.rounds, config.params.n + config.hops + 3);
}

TEST(LineNetwork, RecodingSustainsMinCutRateUnderLoss) {
  const LineNetworkResult result = run_line_network(base_config());
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(result.decoded_correctly);
  // Min-cut rate is (1 - eps) = 0.8 blocks/round, independent of hops.
  EXPECT_GT(result.goodput(base_config().params), 0.55);
}

TEST(LineNetwork, ForwardingCollapsesWithHopCount) {
  LineNetworkConfig config = base_config();
  config.recode_at_relays = false;
  const LineNetworkResult result = run_line_network(config);
  ASSERT_TRUE(result.completed);
  // End-to-end survival (1 - eps)^3 = 0.512: visibly below the coded rate.
  EXPECT_LT(result.goodput(config.params), 0.55);
}

TEST(LineNetwork, CodingGainGrowsWithHops) {
  double previous_gain = 0;
  for (std::size_t hops : {2u, 4u, 6u}) {
    LineNetworkConfig coded = base_config();
    coded.hops = hops;
    coded.max_rounds = 1000000;
    LineNetworkConfig forwarded = coded;
    forwarded.recode_at_relays = false;
    const auto coded_result = run_line_network(coded);
    const auto forwarded_result = run_line_network(forwarded);
    ASSERT_TRUE(coded_result.completed) << hops;
    ASSERT_TRUE(forwarded_result.completed) << hops;
    const double gain = static_cast<double>(forwarded_result.rounds) /
                        static_cast<double>(coded_result.rounds);
    EXPECT_GT(gain, previous_gain * 0.85) << hops;  // grows (noisy)
    previous_gain = gain;
  }
  // At 6 hops and 20% loss, theory predicts ~(1/0.8)^5 ~= 3x; accept wide
  // tolerance for a finite generation.
  EXPECT_GT(previous_gain, 1.6);
}

TEST(LineNetwork, SingleHopModesAreEquivalent) {
  // With no relays there is nothing to recode; both modes are just the
  // source retrying until n independent blocks survive.
  LineNetworkConfig config = base_config();
  config.hops = 1;
  const auto coded = run_line_network(config);
  config.recode_at_relays = false;
  const auto forwarded = run_line_network(config);
  ASSERT_TRUE(coded.completed);
  ASSERT_TRUE(forwarded.completed);
  EXPECT_EQ(coded.rounds, forwarded.rounds);  // same RNG trajectory
}

TEST(LineNetwork, HeavyLossStillCompletesWithRecoding) {
  LineNetworkConfig config = base_config();
  config.loss_probability = 0.5;
  config.max_rounds = 1000000;
  const LineNetworkResult result = run_line_network(config);
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(result.decoded_correctly);
}

TEST(LineNetwork, SinkReportsDigestVerification) {
  const LineNetworkResult result = run_line_network(base_config());
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(result.digest_verified);
  EXPECT_EQ(result.packets_rejected, 0u);
  EXPECT_EQ(result.blocks_quarantined, 0u);
  ASSERT_EQ(result.link_stats.size(), base_config().hops);
  // Without fault injection the channels are never engaged.
  for (const auto& stats : result.link_stats) EXPECT_EQ(stats.sent, 0u);
}

TEST(LineNetwork, RoundLimitReportsIncomplete) {
  LineNetworkConfig config = base_config();
  config.max_rounds = 3;  // cannot finish
  const LineNetworkResult result = run_line_network(config);
  EXPECT_FALSE(result.completed);
  EXPECT_FALSE(result.decoded_correctly);
}

TEST(LineNetworkDeathTest, ZeroHopsAborts) {
  LineNetworkConfig config = base_config();
  config.hops = 0;
  EXPECT_DEATH((void)run_line_network(config), "EXTNC_CHECK");
}

}  // namespace
}  // namespace extnc::net
