#include "net/swarm.h"

#include <gtest/gtest.h>

namespace extnc::net {
namespace {

SwarmConfig small_config() {
  SwarmConfig config;
  config.params = {.n = 8, .k = 32};
  config.peers = 8;
  config.neighbors = 3;
  config.server_blocks_per_second = 8.0;
  config.peer_blocks_per_second = 4.0;
  config.seed = 42;
  config.max_seconds = 2000.0;
  return config;
}

TEST(Swarm, AllPeersCompleteAndDecodeCorrectly) {
  const SwarmResult result = run_swarm(small_config());
  EXPECT_TRUE(result.all_completed);
  EXPECT_TRUE(result.all_decoded_correctly);
  EXPECT_GT(result.completion_seconds, 0.0);
}

TEST(Swarm, RecodingKeepsOverheadLow) {
  // With true network coding, nearly every delivered block is innovative
  // until a peer completes (Avalanche's "little overhead" observation).
  const SwarmResult result = run_swarm(small_config());
  EXPECT_TRUE(result.all_completed);
  EXPECT_LT(result.dependent_overhead(), 0.15);
}

TEST(Swarm, ForwardingHasMoreOverheadThanRecoding) {
  SwarmConfig coded = small_config();
  SwarmConfig forwarded = small_config();
  forwarded.use_recoding = false;
  const SwarmResult with_coding = run_swarm(coded);
  const SwarmResult without = run_swarm(forwarded);
  ASSERT_TRUE(with_coding.all_completed);
  // Verbatim forwarding delivers duplicates; recoded traffic is almost
  // always innovative.
  EXPECT_GT(without.dependent_overhead(), with_coding.dependent_overhead());
}

TEST(Swarm, RecodingCompletesNoLaterThanForwarding) {
  SwarmConfig coded = small_config();
  SwarmConfig forwarded = small_config();
  forwarded.use_recoding = false;
  const SwarmResult with_coding = run_swarm(coded);
  const SwarmResult without = run_swarm(forwarded);
  ASSERT_TRUE(with_coding.all_completed);
  if (without.all_completed) {
    EXPECT_LE(with_coding.completion_seconds,
              without.completion_seconds * 1.25);
  }
}

TEST(Swarm, SurvivesPacketLoss) {
  SwarmConfig config = small_config();
  config.loss_probability = 0.2;
  config.max_seconds = 5000.0;
  const SwarmResult result = run_swarm(config);
  EXPECT_TRUE(result.all_completed);
  EXPECT_TRUE(result.all_decoded_correctly);
  EXPECT_GT(result.blocks_lost, 0u);
}

TEST(Swarm, LossDelaysCompletion) {
  SwarmConfig clean = small_config();
  SwarmConfig lossy = small_config();
  lossy.loss_probability = 0.3;
  lossy.max_seconds = 5000.0;
  const SwarmResult a = run_swarm(clean);
  const SwarmResult b = run_swarm(lossy);
  ASSERT_TRUE(a.all_completed);
  ASSERT_TRUE(b.all_completed);
  EXPECT_GT(b.completion_seconds, a.completion_seconds);
}

TEST(Swarm, DeterministicForSameSeed) {
  const SwarmResult a = run_swarm(small_config());
  const SwarmResult b = run_swarm(small_config());
  EXPECT_EQ(a.completion_seconds, b.completion_seconds);
  EXPECT_EQ(a.blocks_sent, b.blocks_sent);
  EXPECT_EQ(a.blocks_dependent, b.blocks_dependent);
}

TEST(Swarm, SinglePeerServedDirectly) {
  SwarmConfig config = small_config();
  config.peers = 1;
  config.neighbors = 0;
  const SwarmResult result = run_swarm(config);
  EXPECT_TRUE(result.all_completed);
  EXPECT_TRUE(result.all_decoded_correctly);
}

TEST(Swarm, TimeLimitReportsIncomplete) {
  SwarmConfig config = small_config();
  config.max_seconds = 0.5;  // far too short
  const SwarmResult result = run_swarm(config);
  EXPECT_FALSE(result.all_completed);
}

TEST(Swarm, FaultFreeChannelsDoNotChangeTheRun) {
  // Enabling the fault layer with all-zero probabilities must be a pure
  // pass-through: same completion time, same traffic, draw for draw.
  SwarmConfig config = small_config();
  config.faults = FaultSpec{};
  const SwarmResult plain = run_swarm(small_config());
  const SwarmResult channeled = run_swarm(config);
  EXPECT_EQ(plain.completion_seconds, channeled.completion_seconds);
  EXPECT_EQ(plain.blocks_sent, channeled.blocks_sent);
  EXPECT_EQ(channeled.blocks_rejected, 0u);
}

TEST(Swarm, CorruptionIsRejectedAtEveryPeerAndAbsorbed) {
  SwarmConfig config = small_config();
  config.faults.corrupt = 0.15;
  config.faults.truncate = 0.05;
  config.max_seconds = 5000.0;
  const SwarmResult result = run_swarm(config);
  EXPECT_TRUE(result.all_completed);
  EXPECT_TRUE(result.all_decoded_correctly);
  // Exact accounting: every damaged packet was rejected at parse, nothing
  // damaged slipped through, nothing intact was dropped.
  EXPECT_GT(result.channel.damaged(), 0u);
  EXPECT_EQ(result.blocks_rejected, result.channel.damaged());
  EXPECT_EQ(result.channel.delivered,
            result.channel.sent - result.channel.lost +
                result.channel.duplicated);
}

class SwarmScaleSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SwarmScaleSweep, CompletesAtVariousSwarmSizes) {
  SwarmConfig config = small_config();
  config.peers = GetParam();
  config.max_seconds = 5000.0;
  const SwarmResult result = run_swarm(config);
  EXPECT_TRUE(result.all_completed) << GetParam();
  EXPECT_TRUE(result.all_decoded_correctly);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SwarmScaleSweep,
                         ::testing::Values(2u, 4u, 12u, 24u));

}  // namespace
}  // namespace extnc::net
