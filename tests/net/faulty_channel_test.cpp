#include "net/faulty_channel.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace extnc::net {
namespace {

std::vector<std::uint8_t> sample_packet(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> packet(size);
  for (auto& b : packet) b = rng.next_byte();
  return packet;
}

std::size_t bit_difference(const std::vector<std::uint8_t>& a,
                           const std::vector<std::uint8_t>& b) {
  std::size_t bits = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    bits += static_cast<std::size_t>(__builtin_popcount(a[i] ^ b[i]));
  }
  return bits;
}

TEST(FaultyChannel, NoFaultsIsAPurePassThrough) {
  FaultyChannel channel({}, 1);
  for (int i = 0; i < 50; ++i) {
    const auto packet = sample_packet(64, i);
    const auto arrivals = channel.transmit(packet);
    ASSERT_EQ(arrivals.size(), 1u);
    EXPECT_EQ(arrivals[0], packet);
  }
  EXPECT_EQ(channel.stats().sent, 50u);
  EXPECT_EQ(channel.stats().delivered, 50u);
  EXPECT_EQ(channel.stats().faults(), 0u);
  EXPECT_EQ(channel.in_flight(), 0u);
}

TEST(FaultyChannel, LossDropsThePacket) {
  FaultyChannel channel({.loss = 1.0}, 2);
  EXPECT_TRUE(channel.transmit(sample_packet(32, 0)).empty());
  EXPECT_EQ(channel.stats().lost, 1u);
  EXPECT_EQ(channel.stats().delivered, 0u);
}

TEST(FaultyChannel, CorruptionFlipsExactlyOneBit) {
  FaultyChannel channel({.corrupt = 1.0}, 3);
  for (int i = 0; i < 20; ++i) {
    const auto packet = sample_packet(48, i);
    const auto arrivals = channel.transmit(packet);
    ASSERT_EQ(arrivals.size(), 1u);
    EXPECT_EQ(arrivals[0].size(), packet.size());
    EXPECT_EQ(bit_difference(arrivals[0], packet), 1u);
  }
  EXPECT_EQ(channel.stats().corrupted, 20u);
  EXPECT_EQ(channel.stats().damaged(), 20u);
}

TEST(FaultyChannel, TruncationShortensThePacket) {
  FaultyChannel channel({.truncate = 1.0}, 4);
  for (int i = 0; i < 20; ++i) {
    const auto packet = sample_packet(48, i);
    const auto arrivals = channel.transmit(packet);
    ASSERT_EQ(arrivals.size(), 1u);
    EXPECT_LT(arrivals[0].size(), packet.size());
    // The surviving prefix is undamaged.
    EXPECT_TRUE(std::equal(arrivals[0].begin(), arrivals[0].end(),
                           packet.begin()));
  }
  EXPECT_EQ(channel.stats().truncated, 20u);
}

TEST(FaultyChannel, DuplicationDeliversTheSamePacketTwice) {
  FaultyChannel channel({.duplicate = 1.0}, 5);
  const auto packet = sample_packet(32, 0);
  const auto arrivals = channel.transmit(packet);
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], packet);
  EXPECT_EQ(arrivals[1], packet);
  EXPECT_EQ(channel.stats().duplicated, 1u);
  EXPECT_EQ(channel.stats().delivered, 2u);
}

TEST(FaultyChannel, ReorderingSwapsAdjacentPackets) {
  FaultyChannel channel({.reorder = 1.0}, 6);
  const auto first = sample_packet(32, 1);
  const auto second = sample_packet(32, 2);

  EXPECT_TRUE(channel.transmit(first).empty());
  EXPECT_EQ(channel.in_flight(), 1u);

  // Only one packet is held at a time: the second rides through and pulls
  // the held one out behind it, in swapped order.
  const auto arrivals = channel.transmit(second);
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], second);
  EXPECT_EQ(arrivals[1], first);
  EXPECT_EQ(channel.in_flight(), 0u);
  EXPECT_EQ(channel.stats().reordered, 1u);
  EXPECT_EQ(channel.stats().delivered, 2u);
}

TEST(FaultyChannel, FlushReleasesAHeldPacket) {
  FaultyChannel channel({.reorder = 1.0}, 7);
  const auto packet = sample_packet(32, 0);
  EXPECT_TRUE(channel.transmit(packet).empty());
  const auto flushed = channel.flush();
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_EQ(flushed[0], packet);
  EXPECT_EQ(channel.in_flight(), 0u);
  EXPECT_TRUE(channel.flush().empty());
}

TEST(FaultyChannel, StatsPartitionEverySentPacket) {
  // Every packet suffers at most one fault, so after draining the reorder
  // buffer the counters must account exactly for everything that happened.
  const FaultSpec spec{.loss = 0.1, .corrupt = 0.1, .truncate = 0.1,
                       .duplicate = 0.1, .reorder = 0.1};
  FaultyChannel channel(spec, 8);
  for (int i = 0; i < 2000; ++i) {
    (void)channel.transmit(sample_packet(40, i));
  }
  (void)channel.flush();
  const ChannelStats& s = channel.stats();
  EXPECT_EQ(s.sent, 2000u);
  EXPECT_EQ(s.delivered, s.sent - s.lost + s.duplicated);
  EXPECT_EQ(s.faults(),
            s.lost + s.corrupted + s.truncated + s.duplicated + s.reordered);
  // With p = 0.1 each over 2000 packets, every class must have fired.
  EXPECT_GT(s.lost, 0u);
  EXPECT_GT(s.corrupted, 0u);
  EXPECT_GT(s.truncated, 0u);
  EXPECT_GT(s.duplicated, 0u);
  EXPECT_GT(s.reordered, 0u);
}

TEST(FaultyChannel, DeterministicForAFixedSeed) {
  const FaultSpec spec{.loss = 0.2, .corrupt = 0.2, .truncate = 0.2};
  FaultyChannel a(spec, 99);
  FaultyChannel b(spec, 99);
  for (int i = 0; i < 200; ++i) {
    const auto packet = sample_packet(24, i);
    EXPECT_EQ(a.transmit(packet), b.transmit(packet));
  }
  EXPECT_EQ(a.stats().faults(), b.stats().faults());
}

TEST(FaultyChannel, EmptyPacketsNeverCrash) {
  const FaultSpec spec{.loss = 0.2, .corrupt = 0.2, .truncate = 0.2,
                       .duplicate = 0.2, .reorder = 0.2};
  FaultyChannel channel(spec, 10);
  for (int i = 0; i < 100; ++i) (void)channel.transmit({});
  (void)channel.flush();
  EXPECT_EQ(channel.stats().sent, 100u);
}

TEST(FaultyChannel, StatsAggregateAcrossLinks) {
  ChannelStats total;
  ChannelStats a{.sent = 10, .delivered = 9, .lost = 1};
  ChannelStats b{.sent = 5, .delivered = 5, .corrupted = 2};
  total += a;
  total += b;
  EXPECT_EQ(total.sent, 15u);
  EXPECT_EQ(total.delivered, 14u);
  EXPECT_EQ(total.lost, 1u);
  EXPECT_EQ(total.corrupted, 2u);
  EXPECT_EQ(total.faults(), 3u);
  EXPECT_EQ(total.damaged(), 2u);
}

TEST(FaultyChannelDeathTest, OutOfRangeProbabilityAborts) {
  EXPECT_DEATH(FaultyChannel({.loss = 1.5}, 0), "EXTNC_CHECK");
  EXPECT_DEATH(FaultyChannel({.corrupt = -0.1}, 0), "EXTNC_CHECK");
}

}  // namespace
}  // namespace extnc::net
