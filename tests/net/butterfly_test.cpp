#include "net/butterfly.h"

#include <gtest/gtest.h>

namespace extnc::net {
namespace {

constexpr coding::Params kParams{.n = 24, .k = 32};

TEST(Butterfly, CodedDeliveryDecodesAtBothSinks) {
  const ButterflyResult result = run_butterfly_coded(kParams, 1);
  EXPECT_TRUE(result.decoded_correctly);
}

TEST(Butterfly, RoutedDeliveryDecodesAtBothSinks) {
  const ButterflyResult result = run_butterfly_routed(kParams, 1);
  EXPECT_TRUE(result.decoded_correctly);
}

TEST(Butterfly, CodingAchievesRateNearTwo) {
  // Multicast capacity of the butterfly is 2 blocks/round per sink.
  const ButterflyResult result = run_butterfly_coded(kParams, 2);
  EXPECT_GT(result.blocks_per_round(kParams), 1.8);
  EXPECT_LE(result.blocks_per_round(kParams), 2.0);
}

TEST(Butterfly, RoutingCapsAtRateOnePointFive) {
  const ButterflyResult result = run_butterfly_routed(kParams, 2);
  EXPECT_GT(result.blocks_per_round(kParams), 1.3);
  EXPECT_LE(result.blocks_per_round(kParams), 1.55);
}

TEST(Butterfly, CodingBeatsOptimalRouting) {
  // The canonical 2 vs 1.5 gap (Ahlswede et al.).
  const ButterflyResult coded = run_butterfly_coded(kParams, 3);
  const ButterflyResult routed = run_butterfly_routed(kParams, 3);
  EXPECT_LT(coded.rounds, routed.rounds);
  const double speedup = static_cast<double>(routed.rounds) /
                         static_cast<double>(coded.rounds);
  EXPECT_NEAR(speedup, 2.0 / 1.5, 0.2);
}

TEST(Butterfly, CodedRedundancyIsLow) {
  // Random combinations are almost never dependent until the very end.
  const ButterflyResult result = run_butterfly_coded(kParams, 4);
  EXPECT_LE(result.redundant_blocks, kParams.n / 2);
}

class ButterflySeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ButterflySeedSweep, CodedAlwaysDecodesWithinCapacityBound) {
  const ButterflyResult result = run_butterfly_coded(kParams, GetParam());
  EXPECT_TRUE(result.decoded_correctly);
  // n blocks at 2/round: optimum is n/2 rounds; random coding wastes at
  // most a few combinations.
  EXPECT_LE(result.rounds, kParams.n / 2 + 4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ButterflySeedSweep,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace extnc::net
