#include "net/file_transfer.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace extnc::net {
namespace {

std::vector<std::uint8_t> random_content(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> content(size);
  for (auto& b : content) b = rng.next_byte();
  return content;
}

TEST(FileTransfer, LosslessRoundTrip) {
  const auto content = random_content(5000, 1);
  FileEncodeOptions options;
  options.params = {.n = 8, .k = 64};
  const auto container = encode_file(content, options);
  const FileDecodeResult result = decode_file(container);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.content, content);
  EXPECT_EQ(result.packets_rejected, 0u);
}

TEST(FileTransfer, EmptyFileRoundTrip) {
  FileEncodeOptions options;
  options.params = {.n = 2, .k = 8};
  const auto container = encode_file({}, options);
  const FileDecodeResult result = decode_file(container);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.content.empty());
}

TEST(FileTransfer, ExactGenerationBoundary) {
  FileEncodeOptions options;
  options.params = {.n = 4, .k = 16};
  const auto content = random_content(options.params.segment_bytes() * 3, 2);
  const auto container = encode_file(content, options);
  const auto info = describe_file(container);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->generations, 3u);
  const FileDecodeResult result = decode_file(container);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.content, content);
}

TEST(FileTransfer, RedundancyAbsorbsLoss) {
  const auto content = random_content(4000, 3);
  FileEncodeOptions options;
  options.params = {.n = 8, .k = 64};
  options.redundancy = 0.8;
  options.loss = 0.3;
  options.seed = 7;
  const auto container = encode_file(content, options);
  const FileDecodeResult result = decode_file(container);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.content, content);
}

TEST(FileTransfer, HeavyLossWithoutRedundancyFailsGracefully) {
  const auto content = random_content(4000, 4);
  FileEncodeOptions options;
  options.params = {.n = 8, .k = 64};
  options.loss = 0.5;  // no redundancy: some generation will fall short
  options.seed = 9;
  const auto container = encode_file(content, options);
  const FileDecodeResult result = decode_file(container);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("insufficient"), std::string::npos);
}

TEST(FileTransfer, SystematicWithoutLossUsesMinimumPackets) {
  const auto content = random_content(2048, 5);
  FileEncodeOptions options;
  options.params = {.n = 8, .k = 64};
  options.systematic = true;
  const auto container = encode_file(content, options);
  const FileDecodeResult result = decode_file(container);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.packets_dependent, 0u);
}

TEST(FileTransfer, DescribeRejectsGarbage) {
  EXPECT_FALSE(describe_file(random_content(100, 6)).has_value());
  EXPECT_FALSE(describe_file(random_content(10, 7)).has_value());
  EXPECT_FALSE(describe_file({}).has_value());
}

TEST(FileTransfer, DecodeRejectsTruncatedContainer) {
  const auto content = random_content(1000, 8);
  FileEncodeOptions options;
  options.params = {.n = 4, .k = 32};
  auto container = encode_file(content, options);
  container.resize(container.size() - 10);
  const FileDecodeResult result = decode_file(container);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.error, "container truncated");
}

TEST(FileTransfer, CorruptedPacketIsCountedNotFatal) {
  const auto content = random_content(1000, 9);
  FileEncodeOptions options;
  options.params = {.n = 4, .k = 32};
  options.redundancy = 0.5;  // spares cover the corrupted one
  auto container = encode_file(content, options);
  container[40] ^= 0xff;  // smash a header field of the first packet
  const FileDecodeResult result = decode_file(container);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.content, content);
  EXPECT_GE(result.packets_rejected, 1u);
}

TEST(FileTransfer, SimulatedCorruptionIsDetectedAndAbsorbed) {
  // Damaged packets stay in the container; the wire CRC rejects each one
  // at decode, and the redundant packets cover the holes — the decode
  // succeeds with the exact content and reports how many were rejected.
  const auto content = random_content(4000, 11);
  FileEncodeOptions options;
  options.params = {.n = 8, .k = 64};
  options.redundancy = 1.0;
  options.corruption = 0.2;
  options.seed = 12;
  const auto container = encode_file(content, options);
  const FileDecodeResult result = decode_file(container);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.content, content);
  EXPECT_GE(result.packets_rejected, 1u);
}

TEST(FileTransfer, LegacyV1ContainerRoundTrips) {
  const auto content = random_content(2000, 12);
  FileEncodeOptions options;
  options.params = {.n = 4, .k = 32};
  options.wire_format = coding::WireFormat::kV1;
  const auto container = encode_file(content, options);
  const auto info = describe_file(container);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->wire_format, coding::WireFormat::kV1);
  const FileDecodeResult result = decode_file(container);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.content, content);
}

TEST(FileTransfer, V2ContainerIsLargerByTheTrailers) {
  const auto content = random_content(2000, 13);
  FileEncodeOptions options;
  options.params = {.n = 4, .k = 32};
  const auto v2 = encode_file(content, options);
  options.wire_format = coding::WireFormat::kV1;
  const auto v1 = encode_file(content, options);
  const auto info = describe_file(v2);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->wire_format, coding::WireFormat::kV2);
  EXPECT_EQ(v2.size(), v1.size() + info->packets * coding::kWireChecksumBytes);
}

TEST(FileTransfer, InfoMatchesOptions) {
  const auto content = random_content(10000, 10);
  FileEncodeOptions options;
  options.params = {.n = 16, .k = 128};
  options.redundancy = 0.25;
  const auto container = encode_file(content, options);
  const auto info = describe_file(container);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->params, options.params);
  EXPECT_EQ(info->content_bytes, content.size());
  EXPECT_EQ(info->generations, 5u);  // ceil(10000 / 2048)
  EXPECT_EQ(info->packets, info->generations * 20u);  // n * 1.25
}

TEST(FileTransferDeathTest, InvalidLossAborts) {
  FileEncodeOptions options;
  options.loss = 1.0;
  EXPECT_DEATH((void)encode_file({}, options), "EXTNC_CHECK");
}

}  // namespace
}  // namespace extnc::net
