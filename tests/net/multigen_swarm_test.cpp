#include "net/multigen_swarm.h"

#include <gtest/gtest.h>

namespace extnc::net {
namespace {

MultiGenSwarmConfig base_config() {
  MultiGenSwarmConfig config;
  config.params = {.n = 6, .k = 16};
  config.generations = 3;
  config.peers = 8;
  config.neighbors = 3;
  config.seed_blocks_per_second = 12.0;
  config.peer_blocks_per_second = 6.0;
  config.rng_seed = 21;
  config.max_seconds = 10000.0;
  return config;
}

class SwarmSchedules : public ::testing::TestWithParam<GenerationSchedule> {};

TEST_P(SwarmSchedules, DistributesWholeFileCorrectly) {
  MultiGenSwarmConfig config = base_config();
  config.schedule = GetParam();
  const MultiGenSwarmResult result = run_multigen_swarm(config);
  EXPECT_TRUE(result.all_completed) << schedule_name(GetParam());
  EXPECT_TRUE(result.content_verified);
  EXPECT_EQ(result.packets_rejected, 0u);
}

TEST_P(SwarmSchedules, SurvivesLoss) {
  MultiGenSwarmConfig config = base_config();
  config.schedule = GetParam();
  config.loss_probability = 0.25;
  const MultiGenSwarmResult result = run_multigen_swarm(config);
  EXPECT_TRUE(result.all_completed);
  EXPECT_TRUE(result.content_verified);
  EXPECT_GT(result.packets_lost, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllSchedules, SwarmSchedules,
                         ::testing::Values(GenerationSchedule::kRandom,
                                           GenerationSchedule::kSequential,
                                           GenerationSchedule::kRarestFirst),
                         [](const auto& info) {
                           std::string name = schedule_name(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(MultiGenSwarm, SequentialFinishesEarlyGenerationsFirst) {
  MultiGenSwarmConfig config = base_config();
  config.generations = 4;
  config.schedule = GenerationSchedule::kSequential;
  const MultiGenSwarmResult result = run_multigen_swarm(config);
  ASSERT_TRUE(result.all_completed);
  // Half-completion times must be (weakly) increasing by generation index.
  for (std::size_t g = 1; g < config.generations; ++g) {
    EXPECT_LE(result.generation_half_completion[g - 1],
              result.generation_half_completion[g] + 1e-9)
        << g;
  }
}

TEST(MultiGenSwarm, SequentialDeliversFirstGenerationSoonerThanRandom) {
  MultiGenSwarmConfig config = base_config();
  config.generations = 4;
  config.schedule = GenerationSchedule::kSequential;
  const auto sequential = run_multigen_swarm(config);
  config.schedule = GenerationSchedule::kRandom;
  const auto random = run_multigen_swarm(config);
  ASSERT_TRUE(sequential.all_completed);
  ASSERT_TRUE(random.all_completed);
  EXPECT_LE(sequential.generation_half_completion[0],
            random.generation_half_completion[0] * 1.2);
}

TEST(MultiGenSwarm, DeterministicForSeed) {
  const auto a = run_multigen_swarm(base_config());
  const auto b = run_multigen_swarm(base_config());
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.completion_seconds, b.completion_seconds);
}

TEST(MultiGenSwarm, SingleGenerationSinglePeer) {
  MultiGenSwarmConfig config = base_config();
  config.generations = 1;
  config.peers = 1;
  config.neighbors = 0;
  const auto result = run_multigen_swarm(config);
  EXPECT_TRUE(result.all_completed);
  EXPECT_TRUE(result.content_verified);
}

TEST(MultiGenSwarm, TimeLimitReportsIncomplete) {
  MultiGenSwarmConfig config = base_config();
  config.max_seconds = 0.2;
  const auto result = run_multigen_swarm(config);
  EXPECT_FALSE(result.all_completed);
}

TEST(MultiGenSwarm, CorruptedPacketsAreRejectedNeverBuffered) {
  MultiGenSwarmConfig config = base_config();
  config.faults.corrupt = 0.1;
  config.faults.duplicate = 0.05;
  const auto result = run_multigen_swarm(config);
  EXPECT_TRUE(result.all_completed);
  EXPECT_TRUE(result.content_verified);
  EXPECT_GT(result.channel.damaged(), 0u);
  // The wire CRC at each receiving peer accounts for every damaged packet.
  EXPECT_EQ(result.packets_rejected, result.channel.damaged());
  EXPECT_EQ(result.channel.delivered,
            result.channel.sent - result.channel.lost +
                result.channel.duplicated);
}

}  // namespace
}  // namespace extnc::net
