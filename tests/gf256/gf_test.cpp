#include "gf256/gf.h"

#include <gtest/gtest.h>

namespace extnc::gf256 {
namespace {

TEST(Gf, AddIsXor) {
  EXPECT_EQ(add(0x53, 0xca), 0x53 ^ 0xca);
  EXPECT_EQ(add(0xff, 0xff), 0);
}

TEST(Gf, XtimeKnownValues) {
  // AES reference values.
  EXPECT_EQ(xtime(0x57), 0xae);
  EXPECT_EQ(xtime(0xae), 0x47);
  EXPECT_EQ(xtime(0x47), 0x8e);
  EXPECT_EQ(xtime(0x8e), 0x07);
}

TEST(Gf, MulLoopKnownValue) {
  // 0x57 * 0x83 == 0xc1 in Rijndael's field (FIPS-197 example).
  EXPECT_EQ(mul_loop(0x57, 0x83), 0xc1);
  EXPECT_EQ(mul_loop(0x57, 0x13), 0xfe);
}

TEST(Gf, TableMulMatchesLoopMulExhaustively) {
  for (int x = 0; x < 256; ++x) {
    for (int y = 0; y < 256; ++y) {
      ASSERT_EQ(mul(static_cast<std::uint8_t>(x), static_cast<std::uint8_t>(y)),
                mul_loop(static_cast<std::uint8_t>(x),
                         static_cast<std::uint8_t>(y)))
          << "x=" << x << " y=" << y;
    }
  }
}

TEST(Gf, PreprocessedMulMatchesExhaustively) {
  const Tables& t = tables();
  for (int x = 0; x < 256; ++x) {
    for (int y = 0; y < 256; ++y) {
      const auto xx = static_cast<std::uint8_t>(x);
      const auto yy = static_cast<std::uint8_t>(y);
      ASSERT_EQ(mul_preprocessed(t.log[xx], t.log[yy]), mul(xx, yy));
    }
  }
}

TEST(Gf, ShiftedPreprocessedMulMatchesExhaustively) {
  const Tables& t = tables();
  for (int x = 0; x < 256; ++x) {
    for (int y = 0; y < 256; ++y) {
      const auto xx = static_cast<std::uint8_t>(x);
      const auto yy = static_cast<std::uint8_t>(y);
      ASSERT_EQ(
          mul_preprocessed_shifted(t.log_shifted[xx], t.log_shifted[yy]),
          mul(xx, yy));
    }
  }
}

TEST(Gf, ShiftedLogZeroSentinelIsZero) {
  const Tables& t = tables();
  EXPECT_EQ(t.log_shifted[0], 0);
  for (int x = 1; x < 256; ++x) EXPECT_NE(t.log_shifted[x], 0) << x;
}

TEST(Gf, LogExpRoundTrip) {
  const Tables& t = tables();
  for (int x = 1; x < 256; ++x) {
    EXPECT_EQ(t.exp[t.log[x]], x);
  }
  EXPECT_EQ(t.log[0], kLogZero);
}

TEST(Gf, ExpTableDoubledForModFreeIndexing) {
  const Tables& t = tables();
  for (int i = 0; i < 255; ++i) EXPECT_EQ(t.exp[i], t.exp[i + 255]);
}

TEST(Gf, MultiplicativeIdentity) {
  for (int x = 0; x < 256; ++x) {
    EXPECT_EQ(mul(static_cast<std::uint8_t>(x), 1), x);
    EXPECT_EQ(mul(1, static_cast<std::uint8_t>(x)), x);
  }
}

TEST(Gf, ZeroAnnihilates) {
  for (int x = 0; x < 256; ++x) {
    EXPECT_EQ(mul(static_cast<std::uint8_t>(x), 0), 0);
    EXPECT_EQ(mul(0, static_cast<std::uint8_t>(x)), 0);
  }
}

TEST(Gf, InverseProperty) {
  for (int x = 1; x < 256; ++x) {
    const auto xx = static_cast<std::uint8_t>(x);
    EXPECT_EQ(mul(xx, inv(xx)), 1) << x;
  }
  EXPECT_EQ(inv(0), 0);
}

TEST(Gf, DivisionInvertsMultiplication) {
  for (int x = 0; x < 256; ++x) {
    for (int y = 1; y < 256; ++y) {
      const auto xx = static_cast<std::uint8_t>(x);
      const auto yy = static_cast<std::uint8_t>(y);
      ASSERT_EQ(div(mul(xx, yy), yy), xx);
    }
  }
}

TEST(Gf, PowMatchesRepeatedMultiplication) {
  for (int x = 0; x < 256; x += 7) {
    std::uint8_t expected = 1;
    for (unsigned e = 0; e < 20; ++e) {
      ASSERT_EQ(pow(static_cast<std::uint8_t>(x), e), expected)
          << "x=" << x << " e=" << e;
      expected = mul(expected, static_cast<std::uint8_t>(x));
    }
  }
}

TEST(Gf, PowZeroConventions) {
  EXPECT_EQ(pow(0, 0), 1);
  EXPECT_EQ(pow(0, 5), 0);
}

// Field axioms as parameterized sweeps over structured triples.
class FieldAxioms : public ::testing::TestWithParam<int> {};

TEST_P(FieldAxioms, MulCommutative) {
  const int seed = GetParam();
  for (int i = 0; i < 256; ++i) {
    const auto x = static_cast<std::uint8_t>(i);
    const auto y = static_cast<std::uint8_t>((i * 31 + seed) & 0xff);
    EXPECT_EQ(mul(x, y), mul(y, x));
  }
}

TEST_P(FieldAxioms, MulAssociative) {
  const int seed = GetParam();
  for (int i = 0; i < 256; ++i) {
    const auto x = static_cast<std::uint8_t>(i);
    const auto y = static_cast<std::uint8_t>((i * 17 + seed) & 0xff);
    const auto z = static_cast<std::uint8_t>((i * 101 + seed * 3) & 0xff);
    EXPECT_EQ(mul(mul(x, y), z), mul(x, mul(y, z)));
  }
}

TEST_P(FieldAxioms, Distributive) {
  const int seed = GetParam();
  for (int i = 0; i < 256; ++i) {
    const auto x = static_cast<std::uint8_t>(i);
    const auto y = static_cast<std::uint8_t>((i * 13 + seed) & 0xff);
    const auto z = static_cast<std::uint8_t>((i * 7 + seed * 5) & 0xff);
    EXPECT_EQ(mul(x, add(y, z)), add(mul(x, y), mul(x, z)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FieldAxioms, ::testing::Range(0, 8));

}  // namespace
}  // namespace extnc::gf256
