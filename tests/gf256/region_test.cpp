#include "gf256/region.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "gf256/gf.h"
#include "util/aligned_buffer.h"
#include "util/rng.h"

namespace extnc::gf256 {
namespace {

TEST(RegionRegistry, ScalarAlwaysAvailable) {
  EXPECT_NE(find_backend("scalar"), nullptr);
  EXPECT_NE(find_backend("swar64"), nullptr);
  EXPECT_EQ(available_backends().back()->name, std::string("scalar"));
}

TEST(RegionRegistry, UnknownBackendIsNull) {
  EXPECT_EQ(find_backend("does-not-exist"), nullptr);
}

TEST(RegionRegistry, DefaultIsFirstAvailable) {
  // The suite runs under EXTNC_GF256_BACKEND in the forced-backend CI
  // matrix; ops() must then be the forced backend, not the ladder's pick.
  const char* forced = std::getenv("EXTNC_GF256_BACKEND");
  if (forced != nullptr && *forced != '\0') {
    EXPECT_EQ(&ops(), find_backend(forced));
  } else {
    EXPECT_EQ(&ops(), available_backends().front());
  }
}

TEST(RegionRegistry, EveryAvailableBackendIsRegistered) {
  // The registry is self-describing: every runnable backend's name appears
  // in registered_backend_names() and round-trips through find_backend.
  const auto registered = registered_backend_names();
  for (const Ops* backend : available_backends()) {
    EXPECT_NE(std::find(registered.begin(), registered.end(),
                        std::string_view(backend->name)),
              registered.end())
        << backend->name << " missing from registered_backend_names()";
    EXPECT_EQ(find_backend(backend->name), backend);
  }
}

TEST(RegionRegistry, ResolveEmptyPicksBest) {
  EXPECT_EQ(resolve_backend("", nullptr), available_backends().front());
}

TEST(RegionRegistry, ResolveKnownName) {
  std::string error;
  EXPECT_EQ(resolve_backend("scalar", &error), &scalar_ops());
  EXPECT_TRUE(error.empty());
}

TEST(RegionRegistry, ResolveUnknownNameListsSupportedSet) {
  std::string error;
  EXPECT_EQ(resolve_backend("frobnicate", &error), nullptr);
  EXPECT_NE(error.find("frobnicate"), std::string::npos);
  // The message enumerates every runnable backend so a typo'd
  // EXTNC_GF256_BACKEND is self-correcting.
  for (const Ops* backend : available_backends()) {
    EXPECT_NE(error.find(backend->name), std::string::npos)
        << "error message missing " << backend->name << ": " << error;
  }
}

TEST(RegionRegistry, AvailableBackendListIsCommaSeparated) {
  const std::string list = available_backend_list();
  EXPECT_NE(list.find("scalar"), std::string::npos);
  EXPECT_NE(list.find("swar64"), std::string::npos);
}

// Cross-check every available backend against the scalar reference, over a
// sweep of (backend, length) pairs including awkward unaligned lengths.
struct RegionCase {
  const Ops* backend;
  std::size_t length;
};

// memcmp is declared nonnull; a zero-length AlignedBuffer hands out nullptr.
bool regions_equal(const AlignedBuffer& a, const AlignedBuffer& b,
                   std::size_t len) {
  return len == 0 || std::memcmp(a.data(), b.data(), len) == 0;
}

class RegionBackend
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
 protected:
  const Ops& backend() const {
    return *available_backends()[std::get<0>(GetParam())];
  }
  std::size_t length() const { return std::get<1>(GetParam()); }
};

TEST_P(RegionBackend, MulAddMatchesScalar) {
  if (std::get<0>(GetParam()) >= available_backends().size()) GTEST_SKIP();
  Rng rng(77);
  const std::size_t len = length();
  AlignedBuffer src(len + 1);
  AlignedBuffer dst(len + 1);
  AlignedBuffer expected(len + 1);
  for (int c : {0, 1, 2, 0x53, 0xca, 0xff}) {
    for (std::size_t i = 0; i < len; ++i) {
      src[i] = rng.next_byte();
      dst[i] = rng.next_byte();
      expected[i] = dst[i];
    }
    const std::uint8_t sentinel = rng.next_byte();
    dst[len] = sentinel;
    scalar_ops().mul_add_region(expected.data(), src.data(),
                                static_cast<std::uint8_t>(c), len);
    backend().mul_add_region(dst.data(), src.data(),
                             static_cast<std::uint8_t>(c), len);
    ASSERT_EQ(0, std::memcmp(dst.data(), expected.data(), len))
        << backend().name << " c=" << c << " len=" << len;
    ASSERT_EQ(dst[len], sentinel) << "wrote past end";
  }
}

TEST_P(RegionBackend, MulMatchesScalar) {
  if (std::get<0>(GetParam()) >= available_backends().size()) GTEST_SKIP();
  Rng rng(78);
  const std::size_t len = length();
  AlignedBuffer src(len);
  AlignedBuffer dst(len);
  AlignedBuffer expected(len);
  for (int c : {0, 1, 0x02, 0x8d, 0xff}) {
    for (std::size_t i = 0; i < len; ++i) src[i] = rng.next_byte();
    scalar_ops().mul_region(expected.data(), src.data(),
                            static_cast<std::uint8_t>(c), len);
    backend().mul_region(dst.data(), src.data(), static_cast<std::uint8_t>(c),
                         len);
    ASSERT_TRUE(regions_equal(dst, expected, len))
        << backend().name << " c=" << c;
  }
}

TEST_P(RegionBackend, AddMatchesScalar) {
  if (std::get<0>(GetParam()) >= available_backends().size()) GTEST_SKIP();
  Rng rng(79);
  const std::size_t len = length();
  AlignedBuffer src(len);
  AlignedBuffer dst(len);
  AlignedBuffer expected(len);
  for (std::size_t i = 0; i < len; ++i) {
    src[i] = rng.next_byte();
    dst[i] = rng.next_byte();
    expected[i] = dst[i];
  }
  scalar_ops().add_region(expected.data(), src.data(), len);
  backend().add_region(dst.data(), src.data(), len);
  ASSERT_TRUE(regions_equal(dst, expected, len));
}

TEST_P(RegionBackend, ScaleMatchesScalar) {
  if (std::get<0>(GetParam()) >= available_backends().size()) GTEST_SKIP();
  Rng rng(80);
  const std::size_t len = length();
  AlignedBuffer dst(len);
  AlignedBuffer expected(len);
  for (int c : {0, 1, 0x1b, 0xfe}) {
    for (std::size_t i = 0; i < len; ++i) {
      dst[i] = rng.next_byte();
      expected[i] = dst[i];
    }
    scalar_ops().scale_region(expected.data(), static_cast<std::uint8_t>(c),
                              len);
    backend().scale_region(dst.data(), static_cast<std::uint8_t>(c), len);
    ASSERT_TRUE(regions_equal(dst, expected, len));
  }
}

TEST_P(RegionBackend, MulAddRegionsMatchesSequentialScalar) {
  if (std::get<0>(GetParam()) >= available_backends().size()) GTEST_SKIP();
  Rng rng(83);
  const std::size_t len = length();
  // Sweep source counts across group-size boundaries (the vector kernels
  // batch 8 sources, swar64 batches 16), with zero coefficients sprinkled
  // in — including all-zero and trailing-zero groups.
  for (const std::size_t count : {0u, 1u, 2u, 7u, 8u, 9u, 16u, 17u, 37u}) {
    std::vector<AlignedBuffer> sources;
    sources.reserve(count);
    std::vector<const std::uint8_t*> srcs(count);
    std::vector<std::uint8_t> coeffs(count);
    for (std::size_t j = 0; j < count; ++j) {
      sources.emplace_back(len);
      for (std::size_t i = 0; i < len; ++i) sources[j][i] = rng.next_byte();
      srcs[j] = sources[j].data();
      // ~1 in 3 coefficients zero, and the last group all zero when large.
      coeffs[j] = (rng.next_byte() % 3 == 0 || (count > 20 && j >= count - 6))
                      ? 0
                      : rng.next_byte();
    }
    AlignedBuffer dst(len + 1);
    AlignedBuffer expected(len + 1);
    for (std::size_t i = 0; i < len; ++i) {
      dst[i] = rng.next_byte();
      expected[i] = dst[i];
    }
    const std::uint8_t sentinel = rng.next_byte();
    dst[len] = sentinel;
    for (std::size_t j = 0; j < count; ++j) {
      scalar_ops().mul_add_region(expected.data(), srcs[j], coeffs[j], len);
    }
    backend().mul_add_regions(dst.data(), srcs.data(), coeffs.data(), count,
                              len);
    ASSERT_EQ(0, len == 0 ? 0 : std::memcmp(dst.data(), expected.data(), len))
        << backend().name << " count=" << count << " len=" << len;
    ASSERT_EQ(dst[len], sentinel)
        << backend().name << " wrote past end, count=" << count;
  }
}

TEST_P(RegionBackend, UnalignedHeadsAndTailsMatchScalar) {
  if (std::get<0>(GetParam()) >= available_backends().size()) GTEST_SKIP();
  Rng rng(84);
  const std::size_t len = length();
  // Offset dst and src independently off the allocation's alignment so the
  // vector paths exercise their peel/mask head and tail handling, with
  // sentinels on both sides of the destination window.
  constexpr std::size_t kMaxOffset = 13;
  AlignedBuffer src_buf(len + 2 * kMaxOffset);
  AlignedBuffer dst_buf(len + 2 * kMaxOffset + 1);
  AlignedBuffer exp_buf(len + 2 * kMaxOffset + 1);
  for (const std::size_t dst_off : {1u, 3u, 13u}) {
    for (const std::size_t src_off : {0u, 5u}) {
      for (std::size_t i = 0; i < dst_buf.size(); ++i) {
        dst_buf[i] = rng.next_byte();
        exp_buf[i] = dst_buf[i];
      }
      for (std::size_t i = 0; i < src_buf.size(); ++i) {
        src_buf[i] = rng.next_byte();
      }
      scalar_ops().mul_add_region(exp_buf.data() + dst_off,
                                  src_buf.data() + src_off, 0xb7, len);
      backend().mul_add_region(dst_buf.data() + dst_off,
                               src_buf.data() + src_off, 0xb7, len);
      ASSERT_TRUE(dst_buf == exp_buf)
          << backend().name << " len=" << len << " dst_off=" << dst_off
          << " src_off=" << src_off;
    }
  }
}

// Index range covers every registered backend (7 names); indices beyond
// what this host supports skip via the guard at the top of each test.
INSTANTIATE_TEST_SUITE_P(
    AllBackendsAndLengths, RegionBackend,
    ::testing::Combine(::testing::Values(0u, 1u, 2u, 3u, 4u, 5u, 6u),
                       ::testing::Values(0u, 1u, 7u, 8u, 15u, 16u, 17u, 31u,
                                         32u, 33u, 63u, 64u, 100u, 255u, 256u,
                                         1000u, 4096u)));

TEST(Region, MulAddIsLinearInCoefficient) {
  // (a ^ b) * src == a*src ^ b*src, exercised through region ops.
  Rng rng(81);
  const std::size_t len = 512;
  AlignedBuffer src(len);
  for (std::size_t i = 0; i < len; ++i) src[i] = rng.next_byte();
  for (int trial = 0; trial < 32; ++trial) {
    const std::uint8_t a = rng.next_byte();
    const std::uint8_t b = rng.next_byte();
    AlignedBuffer lhs(len);
    AlignedBuffer rhs(len);
    ops().mul_add_region(lhs.data(), src.data(), a ^ b, len);
    ops().mul_add_region(rhs.data(), src.data(), a, len);
    ops().mul_add_region(rhs.data(), src.data(), b, len);
    ASSERT_TRUE(lhs == rhs);
  }
}

TEST(Region, MulAddTwiceCancels) {
  // Adding c*src twice must cancel (characteristic 2).
  Rng rng(82);
  const std::size_t len = 333;
  AlignedBuffer src(len);
  AlignedBuffer dst(len);
  AlignedBuffer original(len);
  for (std::size_t i = 0; i < len; ++i) {
    src[i] = rng.next_byte();
    dst[i] = rng.next_byte();
    original[i] = dst[i];
  }
  ops().mul_add_region(dst.data(), src.data(), 0x5a, len);
  ops().mul_add_region(dst.data(), src.data(), 0x5a, len);
  EXPECT_TRUE(dst == original);
}

}  // namespace
}  // namespace extnc::gf256
