#include "gf256/region.h"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gf256/gf.h"
#include "util/aligned_buffer.h"
#include "util/rng.h"

namespace extnc::gf256 {
namespace {

TEST(RegionRegistry, ScalarAlwaysAvailable) {
  EXPECT_NE(find_backend("scalar"), nullptr);
  EXPECT_NE(find_backend("swar64"), nullptr);
  EXPECT_EQ(available_backends().back()->name, std::string("scalar"));
}

TEST(RegionRegistry, UnknownBackendIsNull) {
  EXPECT_EQ(find_backend("does-not-exist"), nullptr);
}

TEST(RegionRegistry, DefaultIsFirstAvailable) {
  EXPECT_EQ(&ops(), available_backends().front());
}

// Cross-check every available backend against the scalar reference, over a
// sweep of (backend, length) pairs including awkward unaligned lengths.
struct RegionCase {
  const Ops* backend;
  std::size_t length;
};

// memcmp is declared nonnull; a zero-length AlignedBuffer hands out nullptr.
bool regions_equal(const AlignedBuffer& a, const AlignedBuffer& b,
                   std::size_t len) {
  return len == 0 || std::memcmp(a.data(), b.data(), len) == 0;
}

class RegionBackend
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
 protected:
  const Ops& backend() const {
    return *available_backends()[std::get<0>(GetParam())];
  }
  std::size_t length() const { return std::get<1>(GetParam()); }
};

TEST_P(RegionBackend, MulAddMatchesScalar) {
  if (std::get<0>(GetParam()) >= available_backends().size()) GTEST_SKIP();
  Rng rng(77);
  const std::size_t len = length();
  AlignedBuffer src(len + 1);
  AlignedBuffer dst(len + 1);
  AlignedBuffer expected(len + 1);
  for (int c : {0, 1, 2, 0x53, 0xca, 0xff}) {
    for (std::size_t i = 0; i < len; ++i) {
      src[i] = rng.next_byte();
      dst[i] = rng.next_byte();
      expected[i] = dst[i];
    }
    const std::uint8_t sentinel = rng.next_byte();
    dst[len] = sentinel;
    scalar_ops().mul_add_region(expected.data(), src.data(),
                                static_cast<std::uint8_t>(c), len);
    backend().mul_add_region(dst.data(), src.data(),
                             static_cast<std::uint8_t>(c), len);
    ASSERT_EQ(0, std::memcmp(dst.data(), expected.data(), len))
        << backend().name << " c=" << c << " len=" << len;
    ASSERT_EQ(dst[len], sentinel) << "wrote past end";
  }
}

TEST_P(RegionBackend, MulMatchesScalar) {
  if (std::get<0>(GetParam()) >= available_backends().size()) GTEST_SKIP();
  Rng rng(78);
  const std::size_t len = length();
  AlignedBuffer src(len);
  AlignedBuffer dst(len);
  AlignedBuffer expected(len);
  for (int c : {0, 1, 0x02, 0x8d, 0xff}) {
    for (std::size_t i = 0; i < len; ++i) src[i] = rng.next_byte();
    scalar_ops().mul_region(expected.data(), src.data(),
                            static_cast<std::uint8_t>(c), len);
    backend().mul_region(dst.data(), src.data(), static_cast<std::uint8_t>(c),
                         len);
    ASSERT_TRUE(regions_equal(dst, expected, len))
        << backend().name << " c=" << c;
  }
}

TEST_P(RegionBackend, AddMatchesScalar) {
  if (std::get<0>(GetParam()) >= available_backends().size()) GTEST_SKIP();
  Rng rng(79);
  const std::size_t len = length();
  AlignedBuffer src(len);
  AlignedBuffer dst(len);
  AlignedBuffer expected(len);
  for (std::size_t i = 0; i < len; ++i) {
    src[i] = rng.next_byte();
    dst[i] = rng.next_byte();
    expected[i] = dst[i];
  }
  scalar_ops().add_region(expected.data(), src.data(), len);
  backend().add_region(dst.data(), src.data(), len);
  ASSERT_TRUE(regions_equal(dst, expected, len));
}

TEST_P(RegionBackend, ScaleMatchesScalar) {
  if (std::get<0>(GetParam()) >= available_backends().size()) GTEST_SKIP();
  Rng rng(80);
  const std::size_t len = length();
  AlignedBuffer dst(len);
  AlignedBuffer expected(len);
  for (int c : {0, 1, 0x1b, 0xfe}) {
    for (std::size_t i = 0; i < len; ++i) {
      dst[i] = rng.next_byte();
      expected[i] = dst[i];
    }
    scalar_ops().scale_region(expected.data(), static_cast<std::uint8_t>(c),
                              len);
    backend().scale_region(dst.data(), static_cast<std::uint8_t>(c), len);
    ASSERT_TRUE(regions_equal(dst, expected, len));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackendsAndLengths, RegionBackend,
    ::testing::Combine(::testing::Values(0u, 1u, 2u, 3u, 4u),
                       ::testing::Values(0u, 1u, 7u, 8u, 15u, 16u, 17u, 31u,
                                         32u, 33u, 63u, 64u, 100u, 255u, 256u,
                                         1000u, 4096u)));

TEST(Region, MulAddIsLinearInCoefficient) {
  // (a ^ b) * src == a*src ^ b*src, exercised through region ops.
  Rng rng(81);
  const std::size_t len = 512;
  AlignedBuffer src(len);
  for (std::size_t i = 0; i < len; ++i) src[i] = rng.next_byte();
  for (int trial = 0; trial < 32; ++trial) {
    const std::uint8_t a = rng.next_byte();
    const std::uint8_t b = rng.next_byte();
    AlignedBuffer lhs(len);
    AlignedBuffer rhs(len);
    ops().mul_add_region(lhs.data(), src.data(), a ^ b, len);
    ops().mul_add_region(rhs.data(), src.data(), a, len);
    ops().mul_add_region(rhs.data(), src.data(), b, len);
    ASSERT_TRUE(lhs == rhs);
  }
}

TEST(Region, MulAddTwiceCancels) {
  // Adding c*src twice must cancel (characteristic 2).
  Rng rng(82);
  const std::size_t len = 333;
  AlignedBuffer src(len);
  AlignedBuffer dst(len);
  AlignedBuffer original(len);
  for (std::size_t i = 0; i < len; ++i) {
    src[i] = rng.next_byte();
    dst[i] = rng.next_byte();
    original[i] = dst[i];
  }
  ops().mul_add_region(dst.data(), src.data(), 0x5a, len);
  ops().mul_add_region(dst.data(), src.data(), 0x5a, len);
  EXPECT_TRUE(dst == original);
}

}  // namespace
}  // namespace extnc::gf256
