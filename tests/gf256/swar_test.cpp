#include "gf256/swar.h"

#include <cstring>

#include <gtest/gtest.h>

#include "gf256/gf.h"
#include "util/rng.h"

namespace extnc::gf256 {
namespace {

TEST(Swar, XtimePacked32MatchesScalar) {
  Rng rng(1);
  for (int trial = 0; trial < 1000; ++trial) {
    const auto w = static_cast<std::uint32_t>(rng.next());
    std::uint8_t bytes[4];
    std::memcpy(bytes, &w, 4);
    const std::uint32_t packed = xtime_packed(w);
    std::uint8_t out[4];
    std::memcpy(out, &packed, 4);
    for (int i = 0; i < 4; ++i) ASSERT_EQ(out[i], xtime(bytes[i]));
  }
}

TEST(Swar, XtimePacked64MatchesScalar) {
  Rng rng(2);
  for (int trial = 0; trial < 1000; ++trial) {
    const std::uint64_t w = rng.next();
    std::uint8_t bytes[8];
    std::memcpy(bytes, &w, 8);
    const std::uint64_t packed = xtime_packed(w);
    std::uint8_t out[8];
    std::memcpy(out, &packed, 8);
    for (int i = 0; i < 8; ++i) ASSERT_EQ(out[i], xtime(bytes[i]));
  }
}

TEST(Swar, MulByteWord32MatchesScalarExhaustiveCoefficients) {
  Rng rng(3);
  for (int c = 0; c < 256; ++c) {
    const auto w = static_cast<std::uint32_t>(rng.next());
    std::uint8_t bytes[4];
    std::memcpy(bytes, &w, 4);
    const std::uint32_t product =
        mul_byte_word(static_cast<std::uint8_t>(c), w);
    std::uint8_t out[4];
    std::memcpy(out, &product, 4);
    for (int i = 0; i < 4; ++i) {
      ASSERT_EQ(out[i], mul_loop(static_cast<std::uint8_t>(c), bytes[i]))
          << "c=" << c << " lane=" << i;
    }
  }
}

TEST(Swar, MulByteWord64MatchesScalarExhaustiveCoefficients) {
  Rng rng(4);
  for (int c = 0; c < 256; ++c) {
    const std::uint64_t w = rng.next();
    std::uint8_t bytes[8];
    std::memcpy(bytes, &w, 8);
    const std::uint64_t product =
        mul_byte_word(static_cast<std::uint8_t>(c), w);
    std::uint8_t out[8];
    std::memcpy(out, &product, 8);
    for (int i = 0; i < 8; ++i) {
      ASSERT_EQ(out[i], mul_loop(static_cast<std::uint8_t>(c), bytes[i]));
    }
  }
}

TEST(Swar, MulByZeroIsZero) {
  EXPECT_EQ(mul_byte_word(0, std::uint32_t{0xdeadbeefu}), 0u);
  EXPECT_EQ(mul_byte_word(0, std::uint64_t{0xdeadbeefcafebabeull}), 0ull);
}

TEST(Swar, MulByOneIsIdentity) {
  EXPECT_EQ(mul_byte_word(1, std::uint32_t{0xdeadbeefu}), 0xdeadbeefu);
  EXPECT_EQ(mul_byte_word(1, std::uint64_t{0x0123456789abcdefull}),
            0x0123456789abcdefull);
}

TEST(Swar, LoopIterationsIsHighestSetBitPosition) {
  EXPECT_EQ(loop_iterations(0), 0);
  EXPECT_EQ(loop_iterations(1), 1);
  EXPECT_EQ(loop_iterations(2), 2);
  EXPECT_EQ(loop_iterations(3), 2);
  EXPECT_EQ(loop_iterations(0x80), 8);
  EXPECT_EQ(loop_iterations(0xff), 8);
}

TEST(Swar, AverageLoopIterationsNearSeven) {
  // The paper quotes ~7 average iterations per random coefficient; verify
  // the model constant matches the distribution.
  double total = 0;
  for (int c = 1; c < 256; ++c) total += loop_iterations(static_cast<std::uint8_t>(c));
  const double average = total / 255.0;
  EXPECT_GT(average, 6.9);
  EXPECT_LT(average, 7.1);
}

}  // namespace
}  // namespace extnc::gf256
