#include "gf256/matrix.h"

#include <gtest/gtest.h>

#include "gf256/gf.h"
#include "util/rng.h"

namespace extnc::gf256 {
namespace {

TEST(Matrix, IdentityHasFullRank) {
  const Matrix id = Matrix::identity(16);
  EXPECT_EQ(id.rank(), 16u);
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = 0; j < 16; ++j) {
      EXPECT_EQ(id.at(i, j), i == j ? 1 : 0);
    }
  }
}

TEST(Matrix, MultiplyByIdentityIsNoop) {
  Rng rng(1);
  const Matrix m = Matrix::random_dense(8, 8, rng);
  EXPECT_EQ(m.multiply(Matrix::identity(8)), m);
  EXPECT_EQ(Matrix::identity(8).multiply(m), m);
}

TEST(Matrix, MultiplyMatchesScalarDefinition) {
  Rng rng(2);
  const Matrix a = Matrix::random_dense(5, 7, rng);
  const Matrix b = Matrix::random_dense(7, 3, rng);
  const Matrix c = a.multiply(b);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      std::uint8_t expected = 0;
      for (std::size_t k = 0; k < 7; ++k) {
        expected = add(expected, mul(a.at(i, k), b.at(k, j)));
      }
      ASSERT_EQ(c.at(i, j), expected);
    }
  }
}

TEST(Matrix, InverseTimesSelfIsIdentity) {
  Rng rng(3);
  for (std::size_t n : {1u, 2u, 8u, 32u, 64u}) {
    const Matrix m = Matrix::random_invertible(n, rng);
    const auto inverse = m.inverted();
    ASSERT_TRUE(inverse.has_value()) << n;
    EXPECT_EQ(m.multiply(*inverse), Matrix::identity(n)) << n;
    EXPECT_EQ(inverse->multiply(m), Matrix::identity(n)) << n;
  }
}

TEST(Matrix, SingularMatrixHasNoInverse) {
  Rng rng(4);
  Matrix m = Matrix::random_dense(8, 8, rng);
  // Make row 5 a multiple of row 2.
  for (std::size_t c = 0; c < 8; ++c) {
    m.set(5, c, mul(m.at(2, c), 0x1d));
  }
  EXPECT_FALSE(m.inverted().has_value());
  EXPECT_LT(m.rank(), 8u);
}

TEST(Matrix, ZeroMatrixRankZero) {
  const Matrix m(6, 6);
  EXPECT_EQ(m.rank(), 0u);
  EXPECT_FALSE(m.inverted().has_value());
}

TEST(Matrix, RankOfWideAndTallMatrices) {
  Rng rng(5);
  const Matrix wide = Matrix::random_dense(4, 32, rng);
  EXPECT_EQ(wide.rank(), 4u);  // dense random rows almost surely independent
  const Matrix tall = Matrix::random_dense(32, 4, rng);
  EXPECT_EQ(tall.rank(), 4u);
}

TEST(Matrix, RandomInvertibleIsInvertible) {
  Rng rng(6);
  for (int trial = 0; trial < 5; ++trial) {
    const Matrix m = Matrix::random_invertible(24, rng);
    EXPECT_EQ(m.rank(), 24u);
  }
}

TEST(Matrix, MultiplyRowsMatchesMatrixMultiply) {
  Rng rng(7);
  const Matrix coeffs = Matrix::random_invertible(8, rng);
  const Matrix payload = Matrix::random_dense(8, 100, rng);
  const Matrix expected = coeffs.multiply(payload);
  Matrix out(8, 100);
  coeffs.multiply_rows(payload.data(), 100, out.data());
  EXPECT_EQ(out, expected);
}

TEST(Matrix, DecodePropertyInverseRecoversPayload) {
  // b = C^-1 * (C * b): the algebra at the heart of RLNC decoding.
  Rng rng(8);
  for (std::size_t n : {4u, 16u, 48u}) {
    const Matrix coeffs = Matrix::random_invertible(n, rng);
    const Matrix sources = Matrix::random_dense(n, 256, rng);
    const Matrix coded = coeffs.multiply(sources);
    const auto inverse = coeffs.inverted();
    ASSERT_TRUE(inverse.has_value());
    EXPECT_EQ(inverse->multiply(coded), sources) << n;
  }
}

TEST(Matrix, RandomDenseIsFullyDense) {
  Rng rng(9);
  const Matrix m = Matrix::random_dense(16, 16, rng);
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = 0; j < 16; ++j) {
      EXPECT_NE(m.at(i, j), 0);
    }
  }
}

class MatrixSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MatrixSizeSweep, InversionRoundTrip) {
  Rng rng(100 + GetParam());
  const std::size_t n = GetParam();
  const Matrix m = Matrix::random_invertible(n, rng);
  const auto inverse = m.inverted();
  ASSERT_TRUE(inverse.has_value());
  EXPECT_EQ(m.multiply(*inverse), Matrix::identity(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatrixSizeSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89,
                                           128));

}  // namespace
}  // namespace extnc::gf256
