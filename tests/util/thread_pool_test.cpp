#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace extnc {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ZeroThreadsSelectsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.parallel_for(50, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForChunksPartitionExactly) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(101);
  pool.parallel_for_chunks(101, [&hits](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForChunksEmptyIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for_chunks(0, [&called](std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForChunksMoreWorkersThanItems) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for_chunks(3, [&hits](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RunBatchCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.run_batch(64, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RunBatchZeroIsNoop) {
  ThreadPool pool(2);
  pool.run_batch(0, [](std::size_t) { FAIL() << "must not be called"; });
}

// The property the simgpu parallel engine depends on: run_batch joins
// exactly its own tasks, so a caller returns even while another caller's
// longer batch is still draining (wait_idle would wait on everything).
TEST(ThreadPool, RunBatchConcurrentCallersAreIsolated) {
  ThreadPool pool(4);
  std::atomic<bool> release{false};
  std::atomic<int> slow_done{0};
  std::thread slow_caller([&] {
    pool.run_batch(2, [&](std::size_t) {
      while (!release.load()) std::this_thread::yield();
      slow_done.fetch_add(1);
    });
  });
  // The fast batch must complete while the slow batch is still blocked.
  std::atomic<int> fast_done{0};
  pool.run_batch(8, [&fast_done](std::size_t) { fast_done.fetch_add(1); });
  EXPECT_EQ(fast_done.load(), 8);
  EXPECT_EQ(slow_done.load(), 0);
  release.store(true);
  slow_caller.join();
  EXPECT_EQ(slow_done.load(), 2);
}

TEST(ThreadPool, RunBatchReusableAcrossCalls) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    pool.run_batch(10, [&counter](std::size_t) { counter.fetch_add(1); });
    EXPECT_EQ(counter.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPool, WaitIdleWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
}

// --- exception propagation -------------------------------------------------
// A throwing task used to escape its worker thread and std::terminate the
// process; now the waiter receives it.

TEST(ThreadPool, RunBatchPropagatesTaskException) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.run_batch(16,
                     [&ran](std::size_t i) {
                       ran.fetch_add(1);
                       if (i == 5) throw std::runtime_error("task 5 failed");
                     }),
      std::runtime_error);
  // Every task of the batch still ran (the batch drains; it is not
  // cancelled mid-flight).
  EXPECT_EQ(ran.load(), 16);
  // The pool stays usable and the error does not leak into later waits.
  std::atomic<int> after{0};
  pool.run_batch(4, [&after](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 4);
  pool.wait_idle();  // no stored exception on the submit path
}

TEST(ThreadPool, RunBatchPreservesExceptionMessage) {
  ThreadPool pool(2);
  try {
    pool.run_batch(1, [](std::size_t) {
      throw std::runtime_error("exact message");
    });
    FAIL() << "run_batch must rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "exact message");
  }
}

TEST(ThreadPool, WaitIdleRethrowsSubmitTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("submit failed"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // Delivered once: the next wait is clean.
  pool.wait_idle();
}

TEST(ThreadPool, ParallelForPropagatesViaWaitIdle) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [](std::size_t i) {
                                   if (i == 3) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  std::atomic<int> after{0};
  pool.parallel_for(4, [&after](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 4);
}

TEST(ThreadPool, DestructorWithPendingExceptionDoesNotTerminate) {
  {
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("never observed"); });
    // Destroyed without wait_idle: the stored exception is discarded.
  }
  SUCCEED();
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 10; ++i) pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), (batch + 1) * 10);
  }
}

}  // namespace
}  // namespace extnc
