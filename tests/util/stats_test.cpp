#include "util/stats.h"

#include <gtest/gtest.h>

namespace extnc {
namespace {

TEST(Stats, EmptySummaryIsZero) {
  Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, SingleSample) {
  Summary s = summarize({5.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
}

TEST(Stats, KnownValues) {
  Summary s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
}

TEST(Stats, MedianOddCount) {
  Summary s = summarize({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(s.median, 2.0);
}

TEST(Stats, PercentileEndpoints) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 4.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
}

TEST(Stats, PercentileClampsOutOfRangeP) {
  std::vector<double> v{1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 2.0), 2.0);
}

TEST(Stats, PercentileEmptyIsZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(Stats, PercentileSingleSampleIsThatSample) {
  std::vector<double> v{42.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 42.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 42.0);
}

TEST(Stats, PercentileIgnoresInputOrder) {
  EXPECT_DOUBLE_EQ(percentile({9.0, 1.0, 5.0}, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile({5.0, 9.0, 1.0}, 0.5), 5.0);
}

TEST(Stats, PercentileAllEqualSamples) {
  std::vector<double> v{3.0, 3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.31), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.99), 3.0);
}

TEST(Stats, SummarizeHandlesNegativeValues) {
  Summary s = summarize({-4.0, -1.0, 3.0});
  EXPECT_DOUBLE_EQ(s.min, -4.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_NEAR(s.mean, -2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.median, -1.0);
}

TEST(Stats, SummarizeTwoSamplesMedianIsMidpoint) {
  Summary s = summarize({1.0, 2.0});
  EXPECT_DOUBLE_EQ(s.median, 1.5);
  EXPECT_NEAR(s.stddev, 0.7071, 1e-4);
}

}  // namespace
}  // namespace extnc
