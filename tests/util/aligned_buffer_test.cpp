#include "util/aligned_buffer.h"

#include <cstdint>
#include <utility>

#include <gtest/gtest.h>

namespace extnc {
namespace {

TEST(AlignedBuffer, DefaultIsEmpty) {
  AlignedBuffer buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.size(), 0u);
}

TEST(AlignedBuffer, AllocatesZeroedAndAligned) {
  AlignedBuffer buf(100);
  EXPECT_EQ(buf.size(), 100u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) %
                AlignedBuffer::kAlignment,
            0u);
  for (std::size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], 0u);
}

TEST(AlignedBuffer, CopyIsDeep) {
  AlignedBuffer a(16);
  a[3] = 42;
  AlignedBuffer b(a);
  EXPECT_EQ(b[3], 42);
  b[3] = 7;
  EXPECT_EQ(a[3], 42);
}

TEST(AlignedBuffer, CopyAssignReplacesContents) {
  AlignedBuffer a(8);
  a.fill(0xaa);
  AlignedBuffer b(4);
  b = a;
  EXPECT_EQ(b.size(), 8u);
  EXPECT_EQ(b[7], 0xaa);
}

TEST(AlignedBuffer, SelfAssignmentIsNoop) {
  AlignedBuffer a(8);
  a.fill(0x55);
  a = *&a;
  EXPECT_EQ(a.size(), 8u);
  EXPECT_EQ(a[0], 0x55);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer a(32);
  a[0] = 9;
  const std::uint8_t* ptr = a.data();
  AlignedBuffer b(std::move(a));
  EXPECT_EQ(b.data(), ptr);
  EXPECT_EQ(b[0], 9);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move)
}

TEST(AlignedBuffer, SubspanViewsUnderlyingBytes) {
  AlignedBuffer a(10);
  a[5] = 1;
  auto view = a.subspan(4, 3);
  EXPECT_EQ(view.size(), 3u);
  EXPECT_EQ(view[1], 1);
  view[1] = 2;
  EXPECT_EQ(a[5], 2);
}

TEST(AlignedBuffer, EqualityComparesContent) {
  AlignedBuffer a(4);
  AlignedBuffer b(4);
  EXPECT_TRUE(a == b);
  b[2] = 1;
  EXPECT_FALSE(a == b);
  AlignedBuffer c(5);
  EXPECT_FALSE(a == c);
}

TEST(AlignedBufferDeathTest, SubspanOutOfRangeAborts) {
  AlignedBuffer a(4);
  EXPECT_DEATH((void)a.subspan(2, 3), "EXTNC_CHECK");
}

}  // namespace
}  // namespace extnc
