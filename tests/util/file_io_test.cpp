#include "util/file_io.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace extnc {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(FileIo, RoundTrip) {
  Rng rng(1);
  std::vector<std::uint8_t> data(10000);
  for (auto& b : data) b = rng.next_byte();
  const std::string path = temp_path("roundtrip.bin");
  ASSERT_TRUE(write_file(path, data));
  const auto back = read_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
  std::remove(path.c_str());
}

TEST(FileIo, EmptyFile) {
  const std::string path = temp_path("empty.bin");
  ASSERT_TRUE(write_file(path, {}));
  const auto back = read_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
  std::remove(path.c_str());
}

TEST(FileIo, OverwriteTruncates) {
  const std::string path = temp_path("truncate.bin");
  std::vector<std::uint8_t> big(100, 1);
  std::vector<std::uint8_t> small(3, 2);
  ASSERT_TRUE(write_file(path, big));
  ASSERT_TRUE(write_file(path, small));
  const auto back = read_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, small);
  std::remove(path.c_str());
}

TEST(FileIo, MissingFileReturnsNullopt) {
  EXPECT_FALSE(read_file(temp_path("does-not-exist.bin")).has_value());
}

TEST(FileIo, UnwritablePathReturnsFalse) {
  const std::vector<std::uint8_t> data{1, 2, 3};
  EXPECT_FALSE(write_file("/proc/definitely/not/writable", data));
}

TEST(FileIo, LargeFileRoundTrip) {
  Rng rng(2);
  std::vector<std::uint8_t> data(512 * 1024 + 17);  // spans many chunks
  for (auto& b : data) b = rng.next_byte();
  const std::string path = temp_path("large.bin");
  ASSERT_TRUE(write_file(path, data));
  const auto back = read_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace extnc
