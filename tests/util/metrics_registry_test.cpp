#include "util/metrics_registry.h"

#include <gtest/gtest.h>

namespace extnc::metrics {
namespace {

class MetricsRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { Registry::instance().reset(); }
  void TearDown() override { Registry::instance().reset(); }
};

TEST_F(MetricsRegistryTest, UntouchedNameReadsZero) {
  EXPECT_DOUBLE_EQ(Registry::instance().value("never.touched"), 0.0);
}

TEST_F(MetricsRegistryTest, CountAccumulates) {
  count("net.test.events");
  count("net.test.events");
  count("net.test.events", 3.5);
  EXPECT_DOUBLE_EQ(Registry::instance().value("net.test.events"), 5.5);
}

TEST_F(MetricsRegistryTest, GaugeIsLastWriteWins) {
  gauge("net.test.level", 10.0);
  gauge("net.test.level", 2.0);
  EXPECT_DOUBLE_EQ(Registry::instance().value("net.test.level"), 2.0);
}

TEST_F(MetricsRegistryTest, SnapshotIsNameSorted) {
  count("b.metric");
  count("a.metric", 2.0);
  count("c.metric");
  const auto snapshot = Registry::instance().snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].first, "a.metric");
  EXPECT_DOUBLE_EQ(snapshot[0].second, 2.0);
  EXPECT_EQ(snapshot[1].first, "b.metric");
  EXPECT_EQ(snapshot[2].first, "c.metric");
}

TEST_F(MetricsRegistryTest, ResetClearsEverything) {
  count("x");
  gauge("y", 7.0);
  Registry::instance().reset();
  EXPECT_TRUE(Registry::instance().snapshot().empty());
  EXPECT_DOUBLE_EQ(Registry::instance().value("x"), 0.0);
}

}  // namespace
}  // namespace extnc::metrics
