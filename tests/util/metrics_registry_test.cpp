#include "util/metrics_registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

namespace extnc::metrics {
namespace {

class MetricsRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { Registry::instance().reset(); }
  void TearDown() override { Registry::instance().reset(); }
};

TEST_F(MetricsRegistryTest, UntouchedNameReadsZero) {
  EXPECT_DOUBLE_EQ(Registry::instance().value("never.touched"), 0.0);
}

TEST_F(MetricsRegistryTest, CountAccumulates) {
  count("net.test.events");
  count("net.test.events");
  count("net.test.events", 3.5);
  EXPECT_DOUBLE_EQ(Registry::instance().value("net.test.events"), 5.5);
}

TEST_F(MetricsRegistryTest, GaugeIsLastWriteWins) {
  gauge("net.test.level", 10.0);
  gauge("net.test.level", 2.0);
  EXPECT_DOUBLE_EQ(Registry::instance().value("net.test.level"), 2.0);
}

TEST_F(MetricsRegistryTest, SnapshotIsNameSorted) {
  count("b.metric");
  count("a.metric", 2.0);
  count("c.metric");
  const auto snapshot = Registry::instance().snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].first, "a.metric");
  EXPECT_DOUBLE_EQ(snapshot[0].second, 2.0);
  EXPECT_EQ(snapshot[1].first, "b.metric");
  EXPECT_EQ(snapshot[2].first, "c.metric");
}

// The registry is shared by every subsystem, including the thread-pooled
// CPU coders and the supervision layer's fault accounting — concurrent
// writers, readers, and snapshotters must neither race nor lose updates.
// (Run under TSan/ASan in CI; the exact-total asserts catch lost adds.)
TEST_F(MetricsRegistryTest, ConcurrentCountersLoseNothing) {
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 5000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      const std::string own = "stress.thread." + std::to_string(t);
      for (int i = 0; i < kAddsPerThread; ++i) {
        count("stress.shared");       // contended counter
        count(own);                   // uncontended counter
        gauge("stress.level", static_cast<double>(i));
        if (i % 64 == 0) {
          // Readers interleaved with writers.
          (void)Registry::instance().value("stress.shared");
          (void)Registry::instance().snapshot();
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();

  // Integer-valued doubles this small are exact: any lost update shows.
  EXPECT_DOUBLE_EQ(Registry::instance().value("stress.shared"),
                   static_cast<double>(kThreads) * kAddsPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_DOUBLE_EQ(
        Registry::instance().value("stress.thread." + std::to_string(t)),
        static_cast<double>(kAddsPerThread));
  }
  EXPECT_DOUBLE_EQ(Registry::instance().value("stress.level"),
                   static_cast<double>(kAddsPerThread - 1));
}

TEST_F(MetricsRegistryTest, ConcurrentSnapshotsSeeConsistentMap) {
  // Snapshot while names are being created: every snapshot must be
  // internally sorted and never observe a torn entry.
  constexpr int kNames = 200;
  std::thread writer([] {
    for (int i = 0; i < kNames; ++i) {
      count("snap." + std::to_string(i), 2.0);
    }
  });
  for (int round = 0; round < 50; ++round) {
    const auto snapshot = Registry::instance().snapshot();
    EXPECT_TRUE(std::is_sorted(
        snapshot.begin(), snapshot.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; }));
    for (const auto& [name, value] : snapshot) {
      if (name.rfind("snap.", 0) == 0) {
        EXPECT_DOUBLE_EQ(value, 2.0);
      }
    }
  }
  writer.join();
  EXPECT_EQ(Registry::instance().snapshot().size(),
            static_cast<std::size_t>(kNames));
}

TEST_F(MetricsRegistryTest, ResetClearsEverything) {
  count("x");
  gauge("y", 7.0);
  Registry::instance().reset();
  EXPECT_TRUE(Registry::instance().snapshot().empty());
  EXPECT_DOUBLE_EQ(Registry::instance().value("x"), 0.0);
}

}  // namespace
}  // namespace extnc::metrics
