#include "util/rng.h"

#include <array>
#include <set>

#include <gtest/gtest.h>

namespace extnc {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NonzeroByteNeverZero) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_NE(rng.next_nonzero_byte(), 0);
}

TEST(Rng, NonzeroByteCoversRange) {
  Rng rng(11);
  std::set<std::uint8_t> seen;
  for (int i = 0; i < 20000; ++i) seen.insert(rng.next_nonzero_byte());
  EXPECT_EQ(seen.size(), 255u);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(42);
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next() == child.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ByteDistributionRoughlyUniform) {
  Rng rng(3);
  std::array<int, 256> counts{};
  const int samples = 256 * 200;
  for (int i = 0; i < samples; ++i) ++counts[rng.next_byte()];
  for (int count : counts) {
    EXPECT_GT(count, 100);
    EXPECT_LT(count, 320);
  }
}

}  // namespace
}  // namespace extnc
