#include "util/table_printer.h"

#include <cmath>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace extnc {
namespace {

std::string capture(const TablePrinter& table, bool csv) {
  std::FILE* tmp = std::tmpfile();
  EXPECT_NE(tmp, nullptr);
  if (csv) {
    table.print_csv(tmp);
  } else {
    table.print(tmp);
  }
  std::fseek(tmp, 0, SEEK_END);
  const long size = std::ftell(tmp);
  std::rewind(tmp);
  std::string out(static_cast<std::size_t>(size), '\0');
  EXPECT_EQ(std::fread(out.data(), 1, out.size(), tmp), out.size());
  std::fclose(tmp);
  return out;
}

TEST(TablePrinter, PrintsHeadersAndRows) {
  TablePrinter t({"k", "MB/s"});
  t.add_row({"1024", "133.0"});
  const std::string out = capture(t, /*csv=*/false);
  EXPECT_NE(out.find("k"), std::string::npos);
  EXPECT_NE(out.find("MB/s"), std::string::npos);
  EXPECT_NE(out.find("133.0"), std::string::npos);
}

TEST(TablePrinter, CsvUsesCommas) {
  TablePrinter t({"a", "b"});
  t.add_row({"1", "2"});
  const std::string out = capture(t, /*csv=*/true);
  EXPECT_EQ(out, "a,b\n1,2\n");
}

TEST(TablePrinter, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::num(10.0, 0), "10");
}

TEST(TablePrinter, NumNanIsDash) {
  EXPECT_EQ(TablePrinter::num(std::nan(""), 1), "-");
}

TEST(TablePrinterDeathTest, MismatchedRowWidthAborts) {
  TablePrinter t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only one"}), "EXTNC_CHECK");
}

}  // namespace
}  // namespace extnc
