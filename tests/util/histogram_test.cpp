// StreamingHistogram: bucket geometry, quantile accuracy against the
// exact order-statistic answer from util/stats.h, and merge equivalence.
#include "util/histogram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/metrics_registry.h"
#include "util/rng.h"
#include "util/stats.h"

namespace extnc {
namespace {

// Relative resolution of the bucket geometry: half a bucket either way.
constexpr double kRelTol = 0.05;  // 2^(1/16) - 1 ~= 4.4%

TEST(StreamingHistogram, EmptyIsZero) {
  StreamingHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(StreamingHistogram, EmptyQuantileIsAbsentNotZero) {
  // "No samples" must be distinguishable from "all samples were ~0":
  // reporters use quantile_if_any so an empty phase prints null/omitted
  // instead of a fake zero-latency tail.
  StreamingHistogram h;
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_FALSE(h.quantile_if_any(q).has_value()) << "q=" << q;
  }
  h.observe(0.25);
  const auto p99 = h.quantile_if_any(0.99);
  ASSERT_TRUE(p99.has_value());
  EXPECT_DOUBLE_EQ(*p99, h.quantile(0.99));
}

TEST(StreamingHistogram, SingleSampleEveryQuantile) {
  StreamingHistogram h;
  h.observe(0.125);
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    // One sample: every quantile is that sample (clamped to [min, max]).
    EXPECT_DOUBLE_EQ(h.quantile(q), 0.125) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.sum(), 0.125);
  EXPECT_DOUBLE_EQ(h.mean(), 0.125);
}

TEST(StreamingHistogram, BucketIndexMonotoneAndWithinRange) {
  std::size_t prev = 0;
  for (double v = 1e-10; v < 1e12; v *= 1.7) {
    const std::size_t idx = StreamingHistogram::bucket_index(v);
    EXPECT_GE(idx, prev);
    EXPECT_LT(idx, StreamingHistogram::kBuckets);
    if (idx > 0 && idx + 1 < StreamingHistogram::kBuckets) {
      // v lies inside its bucket's bounds.
      EXPECT_GT(v, StreamingHistogram::bucket_floor(idx) * (1 - 1e-12));
      EXPECT_LE(v, StreamingHistogram::bucket_floor(idx + 1) * (1 + 1e-12));
    }
    prev = idx;
  }
}

TEST(StreamingHistogram, SubMinimumValuesLandInBucketZero) {
  StreamingHistogram h;
  h.observe(0.0);
  h.observe(-3.0);
  h.observe(1e-12);
  EXPECT_EQ(h.bucket_count(0), 3u);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), -3.0);
  // Quantiles clamp into the exact observed range.
  EXPECT_LE(h.quantile(0.5), 1e-12);
  EXPECT_GE(h.quantile(0.5), -3.0);
}

TEST(StreamingHistogram, QuantilesTrackExactPercentilesWithinResolution) {
  Rng rng(42);
  StreamingHistogram h;
  std::vector<double> samples;
  // Log-uniform spread over 6 decades — the shape tail latencies take.
  for (int i = 0; i < 20000; ++i) {
    const double v = 1e-4 * std::pow(10.0, 6.0 * rng.next_double());
    samples.push_back(v);
    h.observe(v);
  }
  for (double q : {0.10, 0.50, 0.90, 0.99, 0.999}) {
    const double exact = percentile(samples, q);
    const double approx = h.quantile(q);
    EXPECT_NEAR(approx, exact, exact * (2 * kRelTol))
        << "q=" << q << " exact=" << exact << " approx=" << approx;
  }
  EXPECT_DOUBLE_EQ(h.quantile(0.0), h.min());
  EXPECT_DOUBLE_EQ(h.quantile(1.0), h.max());
}

TEST(StreamingHistogram, MergeEqualsObservingTheUnion) {
  Rng rng(7);
  StreamingHistogram a, b, combined;
  for (int i = 0; i < 5000; ++i) {
    const double v = 1e-3 * std::pow(10.0, 4.0 * rng.next_double());
    if (i % 2 == 0) {
      a.observe(v);
    } else {
      b.observe(v);
    }
    combined.observe(v);
  }
  StreamingHistogram merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.count(), combined.count());
  // Same samples, different summation order: equal only up to rounding.
  EXPECT_NEAR(merged.sum(), combined.sum(), combined.sum() * 1e-12);
  EXPECT_DOUBLE_EQ(merged.min(), combined.min());
  EXPECT_DOUBLE_EQ(merged.max(), combined.max());
  for (std::size_t i = 0; i < StreamingHistogram::kBuckets; ++i) {
    ASSERT_EQ(merged.bucket_count(i), combined.bucket_count(i)) << i;
  }
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(merged.quantile(q), combined.quantile(q));
  }
}

TEST(StreamingHistogram, CustomGeometryFilesAndAnswersWithinItsResolution) {
  // 16 buckets/octave halves the relative error; min_value 1e-6 trades
  // span for it. The instance must file by ITS geometry, not the default.
  StreamingHistogram h(/*buckets_per_octave=*/16, /*min_value=*/1e-6);
  EXPECT_EQ(h.buckets_per_octave(), 16u);
  EXPECT_DOUBLE_EQ(h.min_value(), 1e-6);
  h.observe(1e-7);  // below min_value: bucket 0
  EXPECT_EQ(h.bucket_count(0), 1u);
  Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 10000; ++i) {
    const double v = 1e-3 * std::pow(10.0, 3.0 * rng.next_double());
    samples.push_back(v);
    h.observe(v);
  }
  const double fine_tol = std::exp2(1.0 / 32.0) - 1;  // half a fine bucket
  for (double q : {0.50, 0.90, 0.99}) {
    const double exact = percentile(samples, q);
    EXPECT_NEAR(h.quantile(q), exact, exact * (2 * fine_tol)) << "q=" << q;
  }
}

TEST(StreamingHistogramDeathTest, MergeRejectsMismatchedGeometry) {
  // Bucket-wise addition across different layouts misfiles every sample;
  // the merge must abort loudly, not corrupt the quantiles.
  StreamingHistogram coarse;  // default: 8/octave @ 1e-9
  StreamingHistogram fine(16, 1e-9);
  StreamingHistogram shifted(8, 1e-6);
  coarse.observe(0.5);
  fine.observe(0.5);
  shifted.observe(0.5);
  EXPECT_DEATH(coarse.merge(fine), "EXTNC_CHECK");
  EXPECT_DEATH(coarse.merge(shifted), "EXTNC_CHECK");
  EXPECT_DEATH(fine.merge(coarse), "EXTNC_CHECK");
  // Identical custom geometries still merge fine.
  StreamingHistogram fine2(16, 1e-9);
  fine2.observe(2.0);
  fine.merge(fine2);
  EXPECT_EQ(fine.count(), 2u);
}

TEST(StreamingHistogramDeathTest, RejectsDegenerateGeometry) {
  EXPECT_DEATH(StreamingHistogram(0, 1e-9), "EXTNC_CHECK");
  EXPECT_DEATH(StreamingHistogram(8, 0.0), "EXTNC_CHECK");
  EXPECT_DEATH(StreamingHistogram(8, -1.0), "EXTNC_CHECK");
}

TEST(StreamingHistogram, MergeIntoEmptyAndFromEmpty) {
  StreamingHistogram a, empty;
  a.observe(2.0);
  a.observe(8.0);
  StreamingHistogram target;
  target.merge(a);  // into empty
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.min(), 2.0);
  EXPECT_DOUBLE_EQ(target.max(), 8.0);
  target.merge(empty);  // from empty: no change
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.min(), 2.0);
}

// --- registry integration --------------------------------------------------

TEST(MetricsRegistryHistogram, ObserveAndExtract) {
  metrics::Registry::instance().reset();
  for (int i = 1; i <= 100; ++i) {
    metrics::observe("test.latency", i * 0.001);
  }
  const StreamingHistogram h =
      metrics::Registry::instance().histogram("test.latency");
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.p50(), 0.050, 0.050 * 2 * kRelTol);
  EXPECT_NEAR(h.p99(), 0.099, 0.099 * 2 * kRelTol);
  // Unknown names give an empty histogram, same namespace rules as value().
  EXPECT_TRUE(metrics::Registry::instance().histogram("test.absent").empty());
  // Histograms and scalars live in separate namespaces.
  metrics::count("test.latency");
  EXPECT_EQ(metrics::Registry::instance().value("test.latency"), 1.0);
  EXPECT_EQ(metrics::Registry::instance().histogram("test.latency").count(),
            100u);

  const auto all = metrics::Registry::instance().histograms();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].first, "test.latency");
  metrics::Registry::instance().reset();
  EXPECT_TRUE(metrics::Registry::instance().histogram("test.latency").empty());
}

}  // namespace
}  // namespace extnc
