// CodingService end-to-end: plan parsing, quiet runs, overload shedding
// and degradation, device-kill failover, hedging, and the acceptance soak
// (kill 1 of 3 devices and double offered load mid-run; every admitted
// session must end in exactly one terminal state with bit-exact output).
#include "serve/service.h"

#include <gtest/gtest.h>

#include "simgpu/device_spec.h"

namespace extnc::serve {
namespace {

ServiceConfig base_config(std::size_t devices) {
  ServiceConfig config;
  config.fleet.params = {.n = 8, .k = 64};
  for (std::size_t i = 0; i < devices; ++i) {
    config.fleet.devices.push_back(simgpu::gtx280());
  }
  config.fleet.threads = 1;
  config.segments_per_session = 4;
  config.duration_s = 0.05;
  config.seed = 7;
  return config;
}

TEST(FleetPlan, ParsesKillRestoreAndLoadTokens) {
  const auto plan = FleetPlan::parse("kill@20:1,load@30:2.0,restore@45:1");
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->events.size(), 2u);
  EXPECT_DOUBLE_EQ(plan->events[0].at, 20.0);
  EXPECT_EQ(plan->events[0].device, 1u);
  EXPECT_TRUE(plan->events[0].kill);
  EXPECT_DOUBLE_EQ(plan->events[1].at, 45.0);
  EXPECT_FALSE(plan->events[1].kill);
  ASSERT_EQ(plan->load.size(), 1u);
  EXPECT_DOUBLE_EQ(plan->load[0].at, 30.0);
  EXPECT_DOUBLE_EQ(plan->load[0].multiplier, 2.0);
}

TEST(FleetPlan, SortsEventsByTimeAndAcceptsEmptySpec) {
  const auto plan = FleetPlan::parse("restore@45:0,kill@5:0");
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->events[0].kill);
  EXPECT_DOUBLE_EQ(plan->events[0].at, 5.0);

  const auto empty = FleetPlan::parse("");
  ASSERT_TRUE(empty.has_value());
  EXPECT_FALSE(empty->any());
}

TEST(FleetPlan, RejectsMalformedTokensWithoutPartialState) {
  EXPECT_FALSE(FleetPlan::parse("kill@20").has_value());
  EXPECT_FALSE(FleetPlan::parse("explode@20:1").has_value());
  EXPECT_FALSE(FleetPlan::parse("kill@-5:1").has_value());
  EXPECT_FALSE(FleetPlan::parse("kill@20:1.5").has_value());
  EXPECT_FALSE(FleetPlan::parse("load@10:0").has_value());
  EXPECT_FALSE(FleetPlan::parse("kill@20:1,").has_value());
  EXPECT_FALSE(FleetPlan::parse("kill@20:1,,load@5:2").has_value());
}

TEST(CodingService, QuietRunCompletesEverySessionBitExactly) {
  ServiceConfig config = base_config(2);
  config.offered_load = 0.3;
  CodingService service(std::move(config));
  const ServiceReport report = service.run();

  EXPECT_GT(report.arrivals, 10u);
  EXPECT_TRUE(report.accounting_exact());
  EXPECT_EQ(report.completed, report.arrivals);
  EXPECT_EQ(report.degraded, 0u);
  EXPECT_EQ(report.shed, 0u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.bitexact_failures, 0u);
  EXPECT_EQ(report.decode_mismatches, 0u);
  EXPECT_EQ(report.rank_short_segments, 0u);
  // Every segment landed in the healthy-phase histogram.
  EXPECT_EQ(report.segment_latency_s.count(), report.segments_served);
  EXPECT_EQ(report.segment_latency_healthy_s.count(), report.segments_served);
  EXPECT_EQ(report.segment_latency_faulted_s.count(), 0u);
  EXPECT_GT(report.session_latency_s.quantile(0.99), 0.0);
}

TEST(CodingService, OverloadUnderRejectPolicyShedsAndDegrades) {
  ServiceConfig config = base_config(2);
  config.offered_load = 4.0;  // far past fleet capacity
  config.admission.capacity = 8;
  config.admission.policy = ShedPolicy::kReject;
  CodingService service(std::move(config));
  const ServiceReport report = service.run();

  EXPECT_TRUE(report.accounting_exact());
  EXPECT_GT(report.shed_rejected, 0u);
  EXPECT_GT(report.shed, 0u);
  // Pressure saturates at 1.0 under kReject: the ladder must have climbed
  // past every threshold and thinned dispatches must have happened.
  EXPECT_GT(report.ladder_transitions, 0u);
  EXPECT_GT(report.mode_dispatches[static_cast<int>(ServiceMode::kThinned)],
            0u);
  EXPECT_GT(report.degraded, 0u);
  EXPECT_EQ(report.bitexact_failures, 0u);
  EXPECT_EQ(report.decode_mismatches, 0u);
}

TEST(CodingService, ShedOldestEvictsWaitersUnderOverload) {
  ServiceConfig config = base_config(2);
  config.offered_load = 4.0;
  config.admission.capacity = 8;
  config.admission.policy = ShedPolicy::kShedOldest;
  CodingService service(std::move(config));
  const ServiceReport report = service.run();

  EXPECT_TRUE(report.accounting_exact());
  EXPECT_GT(report.shed_evicted, 0u);
  EXPECT_EQ(report.shed_rejected, 0u);  // arrivals always admitted
}

TEST(CodingService, DegradePolicyTradesFidelityForAdmission) {
  ServiceConfig config = base_config(2);
  config.offered_load = 4.0;
  config.admission.capacity = 8;
  config.admission.policy = ShedPolicy::kDegrade;
  config.admission.degrade_headroom = 2.0;
  CodingService service(std::move(config));
  const ServiceReport report = service.run();

  EXPECT_TRUE(report.accounting_exact());
  EXPECT_GT(report.degraded, 0u);
  // Headroom admits sessions a reject queue would have dropped, so with
  // identical load the degrade policy must shed strictly fewer arrivals
  // at the door than its hard cap implies and still serve thinned.
  EXPECT_GT(report.mode_dispatches[static_cast<int>(ServiceMode::kThinned)],
            0u);
  EXPECT_EQ(report.bitexact_failures, 0u);
  EXPECT_EQ(report.decode_mismatches, 0u);
}

TEST(CodingService, HangsTriggerHedgedRedispatch) {
  ServiceConfig config = base_config(2);
  config.offered_load = 0.5;
  // Frequent hangs: each costs the watchdog budget (20x nominal), far past
  // the hedge threshold (2x), so stragglers must hedge onto the peer.
  ASSERT_TRUE(simgpu::FaultPlan::parse("phang=0.2").has_value());
  config.fleet.faults = *simgpu::FaultPlan::parse("phang=0.2");
  config.hedge_factor = 2.0;
  config.deadline_factor = 1e6;  // isolate hedging from deadline sheds
  CodingService service(std::move(config));
  const ServiceReport report = service.run();

  EXPECT_TRUE(report.accounting_exact());
  EXPECT_GT(report.hedges, 0u);
  EXPECT_GT(report.hedge_wins, 0u);
  EXPECT_EQ(report.bitexact_failures, 0u);
  EXPECT_EQ(report.decode_mismatches, 0u);
  EXPECT_EQ(report.failed, 0u);
}

// The ISSUE acceptance soak: 3 devices, the scripted plan kills one and
// doubles offered load mid-run. Every admitted session must end in exactly
// one terminal state, completed sessions decode bit-exactly, and the
// faulted phase is visible in the split latency histograms.
TEST(CodingService, KillOneOfThreeAndDoubleLoadSoak) {
  ServiceConfig config = base_config(3);
  config.offered_load = 0.9;
  config.duration_s = 0.1;
  config.admission.capacity = 12;
  config.admission.policy = ShedPolicy::kDegrade;
  const double t_kill = 0.04;
  const auto plan = FleetPlan::parse("kill@0.04:1,load@0.04:2.0");
  ASSERT_TRUE(plan.has_value());
  config.plan = *plan;
  // A light probabilistic fault background on top of the scripted kill.
  ASSERT_TRUE(simgpu::FaultPlan::parse("pflip=0.01").has_value());
  config.fleet.faults = *simgpu::FaultPlan::parse("pflip=0.01");
  CodingService service(std::move(config));
  const ServiceReport report = service.run();

  // Exact terminal accounting: nothing lost, nothing double-counted.
  EXPECT_TRUE(report.accounting_exact());
  EXPECT_EQ(report.completed + report.degraded + report.shed + report.failed,
            report.arrivals);
  EXPECT_GT(report.arrivals, 50u);
  EXPECT_GT(report.completed, 0u);
  EXPECT_EQ(report.failed, 0u);  // two devices always survive

  // Bit-exactness under faults and failover.
  EXPECT_EQ(report.bitexact_failures, 0u);
  EXPECT_EQ(report.decode_mismatches, 0u);

  // The kill was observed: the victim's in-flight work re-dispatched onto
  // survivors, and the faulted phase produced latency samples.
  ASSERT_EQ(report.devices.size(), 3u);
  EXPECT_FALSE(report.devices[1].alive);
  EXPECT_GT(report.stale_completions, 0u);
  EXPECT_GT(report.redispatches, 0u);
  EXPECT_GT(report.segment_latency_faulted_s.count(), 0u);
  EXPECT_GT(report.segment_latency_healthy_s.count(), 0u);
  EXPECT_EQ(report.segment_latency_s.count(),
            report.segment_latency_healthy_s.count() +
                report.segment_latency_faulted_s.count());

  // Doubled load on two survivors is overload: degradation engaged.
  EXPECT_GT(report.degraded + report.shed, 0u);
  EXPECT_GT(report.ladder_transitions, 0u);

  // The dead device served nothing after the kill.
  for (const DeviceHealth& device : report.devices) {
    EXPECT_EQ(device.segments, device.gpu_segments + device.cpu_segments);
  }
  EXPECT_GT(report.devices[0].segments + report.devices[2].segments,
            report.devices[1].segments);

  // p99s exist for both phases (the BENCH_fleet contract).
  EXPECT_GT(report.segment_latency_healthy_s.quantile(0.99), 0.0);
  EXPECT_GT(report.segment_latency_faulted_s.quantile(0.99), 0.0);
  (void)t_kill;
}

TEST(CodingService, WholeFleetDeathFailsStrandedSessionsExplicitly) {
  ServiceConfig config = base_config(1);
  config.offered_load = 0.5;
  config.duration_s = 0.05;
  const auto plan = FleetPlan::parse("kill@0.02:0");
  ASSERT_TRUE(plan.has_value());
  config.plan = *plan;
  CodingService service(std::move(config));
  const ServiceReport report = service.run();

  EXPECT_TRUE(report.accounting_exact());
  // The only device died mid-run with no restore: everything in flight or
  // queued afterwards must end failed (or shed at a deadline) — never
  // silently lost.
  EXPECT_GT(report.failed, 0u);
  EXPECT_GT(report.completed, 0u);  // pre-kill sessions finished
}

TEST(CodingService, RestoreBringsTheDeviceBackIntoRotation) {
  ServiceConfig config = base_config(2);
  config.offered_load = 0.6;
  config.duration_s = 0.1;
  const auto plan = FleetPlan::parse("kill@0.02:0,restore@0.05:0");
  ASSERT_TRUE(plan.has_value());
  config.plan = *plan;
  CodingService service(std::move(config));
  const ServiceReport report = service.run();

  EXPECT_TRUE(report.accounting_exact());
  EXPECT_EQ(report.failed, 0u);
  ASSERT_EQ(report.devices.size(), 2u);
  EXPECT_TRUE(report.devices[0].alive);  // restored
  EXPECT_TRUE(report.devices[1].alive);
}

}  // namespace
}  // namespace extnc::serve
