// CodingService end-to-end: plan parsing, quiet runs, overload shedding
// and degradation, device-kill failover, hedging, and the acceptance soak
// (kill 1 of 3 devices and double offered load mid-run; every admitted
// session must end in exactly one terminal state with bit-exact output).
#include "serve/service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "simgpu/device_spec.h"

namespace extnc::serve {
namespace {

ServiceConfig base_config(std::size_t devices) {
  ServiceConfig config;
  config.fleet.params = {.n = 8, .k = 64};
  for (std::size_t i = 0; i < devices; ++i) {
    config.fleet.devices.push_back(simgpu::gtx280());
  }
  config.fleet.threads = 1;
  config.segments_per_session = 4;
  config.duration_s = 0.05;
  config.seed = 7;
  return config;
}

TEST(FleetPlan, ParsesKillRestoreAndLoadTokens) {
  const auto plan = FleetPlan::parse("kill@20:1,load@30:2.0,restore@45:1");
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->events.size(), 2u);
  EXPECT_DOUBLE_EQ(plan->events[0].at, 20.0);
  EXPECT_EQ(plan->events[0].device, 1u);
  EXPECT_TRUE(plan->events[0].kill);
  EXPECT_DOUBLE_EQ(plan->events[1].at, 45.0);
  EXPECT_FALSE(plan->events[1].kill);
  ASSERT_EQ(plan->load.size(), 1u);
  EXPECT_DOUBLE_EQ(plan->load[0].at, 30.0);
  EXPECT_DOUBLE_EQ(plan->load[0].multiplier, 2.0);
}

TEST(FleetPlan, AcceptsEmptySpecAndOrderedEvents) {
  const auto plan = FleetPlan::parse("kill@5:0,restore@45:0");
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->events.size(), 2u);
  EXPECT_TRUE(plan->events[0].kill);
  EXPECT_DOUBLE_EQ(plan->events[0].at, 5.0);

  const auto empty = FleetPlan::parse("");
  ASSERT_TRUE(empty.has_value());
  EXPECT_FALSE(empty->any());
}

TEST(FleetPlan, RejectsNonMonotoneTimestamps) {
  // A plan is a timeline: out-of-order tokens are almost always a typo'd
  // timestamp, and silently re-sorting them would run a scenario the user
  // never wrote. Equal timestamps across different kinds are fine.
  std::string error;
  EXPECT_FALSE(FleetPlan::parse("restore@45:0,kill@5:0", &error).has_value());
  EXPECT_NE(error.find("non-monotone"), std::string::npos) << error;
  EXPECT_FALSE(FleetPlan::parse("load@10:2,load@5:1").has_value());
  EXPECT_FALSE(FleetPlan::parse("crash@10,recover@5").has_value());
  EXPECT_TRUE(FleetPlan::parse("kill@10:0,load@10:2.0").has_value());
}

TEST(FleetPlan, ParsesCrashRecoverAndTenantBurstTokens) {
  const auto plan =
      FleetPlan::parse("crash@10,recover@12,tenantburst@20:batch:4.0");
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->crashes.size(), 1u);
  EXPECT_DOUBLE_EQ(plan->crashes[0], 10.0);
  ASSERT_EQ(plan->recovers.size(), 1u);
  EXPECT_DOUBLE_EQ(plan->recovers[0], 12.0);
  ASSERT_EQ(plan->bursts.size(), 1u);
  EXPECT_DOUBLE_EQ(plan->bursts[0].at, 20.0);
  EXPECT_EQ(plan->bursts[0].tenant, "batch");
  EXPECT_DOUBLE_EQ(plan->bursts[0].multiplier, 4.0);
  EXPECT_TRUE(plan->any());
}

TEST(FleetPlan, RejectsMalformedTokensWithoutPartialState) {
  EXPECT_FALSE(FleetPlan::parse("kill@20").has_value());
  EXPECT_FALSE(FleetPlan::parse("explode@20:1").has_value());
  EXPECT_FALSE(FleetPlan::parse("kill@-5:1").has_value());
  EXPECT_FALSE(FleetPlan::parse("kill@20:1.5").has_value());
  EXPECT_FALSE(FleetPlan::parse("load@10:0").has_value());
  EXPECT_FALSE(FleetPlan::parse("kill@20:1,").has_value());
  EXPECT_FALSE(FleetPlan::parse("kill@20:1,,load@25:2").has_value());
  EXPECT_FALSE(FleetPlan::parse("crash@10:0").has_value());  // takes no value
  EXPECT_FALSE(FleetPlan::parse("tenantburst@10:batch").has_value());
  EXPECT_FALSE(FleetPlan::parse("tenantburst@10::2.0").has_value());
  EXPECT_FALSE(FleetPlan::parse("tenantburst@10:batch:0").has_value());
  std::string error;
  EXPECT_FALSE(FleetPlan::parse("kill@20:bogus", &error).has_value());
  EXPECT_NE(error.find("kill@20:bogus"), std::string::npos) << error;
}

TEST(FleetPlan, ValidateCatchesSemanticNonsense) {
  // Out-of-range device.
  auto plan = FleetPlan::parse("kill@5:7");
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->validate(3).has_value());
  EXPECT_FALSE(plan->validate(8).has_value());

  // Duplicate (device, time) events.
  plan = FleetPlan::parse("kill@5:0,kill@5:0");
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->validate(1).has_value());

  // Kill of a dead device / restore of an alive one.
  plan = FleetPlan::parse("kill@5:0,kill@9:0");
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->validate(1).has_value());
  plan = FleetPlan::parse("restore@5:0");
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->validate(1).has_value());
  plan = FleetPlan::parse("kill@5:0,restore@9:0,kill@12:0");
  ASSERT_TRUE(plan.has_value());
  EXPECT_FALSE(plan->validate(1).has_value());

  // Crash/recover must alternate; a trailing unrecovered crash is fine.
  plan = FleetPlan::parse("recover@5");
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->validate(1).has_value());
  plan = FleetPlan::parse("crash@5,crash@9");
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->validate(1).has_value());
  plan = FleetPlan::parse("crash@5,recover@8,crash@20");
  ASSERT_TRUE(plan.has_value());
  EXPECT_FALSE(plan->validate(1).has_value());
}

TEST(CodingService, QuietRunCompletesEverySessionBitExactly) {
  ServiceConfig config = base_config(2);
  config.offered_load = 0.3;
  CodingService service(std::move(config));
  const ServiceReport report = service.run();

  EXPECT_GT(report.arrivals, 10u);
  EXPECT_TRUE(report.accounting_exact());
  EXPECT_EQ(report.completed, report.arrivals);
  EXPECT_EQ(report.degraded, 0u);
  EXPECT_EQ(report.shed, 0u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.bitexact_failures, 0u);
  EXPECT_EQ(report.decode_mismatches, 0u);
  EXPECT_EQ(report.rank_short_segments, 0u);
  // Every segment landed in the healthy-phase histogram.
  EXPECT_EQ(report.segment_latency_s.count(), report.segments_served);
  EXPECT_EQ(report.segment_latency_healthy_s.count(), report.segments_served);
  EXPECT_EQ(report.segment_latency_faulted_s.count(), 0u);
  EXPECT_GT(report.session_latency_s.quantile(0.99), 0.0);
}

TEST(CodingService, OverloadUnderRejectPolicyShedsAndDegrades) {
  ServiceConfig config = base_config(2);
  config.offered_load = 4.0;  // far past fleet capacity
  config.admission.capacity = 8;
  config.admission.policy = ShedPolicy::kReject;
  CodingService service(std::move(config));
  const ServiceReport report = service.run();

  EXPECT_TRUE(report.accounting_exact());
  EXPECT_GT(report.shed_rejected, 0u);
  EXPECT_GT(report.shed, 0u);
  // Pressure saturates at 1.0 under kReject: the ladder must have climbed
  // past every threshold and thinned dispatches must have happened.
  EXPECT_GT(report.ladder_transitions, 0u);
  EXPECT_GT(report.mode_dispatches[static_cast<int>(ServiceMode::kThinned)],
            0u);
  EXPECT_GT(report.degraded, 0u);
  EXPECT_EQ(report.bitexact_failures, 0u);
  EXPECT_EQ(report.decode_mismatches, 0u);
}

TEST(CodingService, ShedOldestEvictsWaitersUnderOverload) {
  ServiceConfig config = base_config(2);
  config.offered_load = 4.0;
  config.admission.capacity = 8;
  config.admission.policy = ShedPolicy::kShedOldest;
  CodingService service(std::move(config));
  const ServiceReport report = service.run();

  EXPECT_TRUE(report.accounting_exact());
  EXPECT_GT(report.shed_evicted, 0u);
  EXPECT_EQ(report.shed_rejected, 0u);  // arrivals always admitted
}

TEST(CodingService, DegradePolicyTradesFidelityForAdmission) {
  ServiceConfig config = base_config(2);
  config.offered_load = 4.0;
  config.admission.capacity = 8;
  config.admission.policy = ShedPolicy::kDegrade;
  config.admission.degrade_headroom = 2.0;
  CodingService service(std::move(config));
  const ServiceReport report = service.run();

  EXPECT_TRUE(report.accounting_exact());
  EXPECT_GT(report.degraded, 0u);
  // Headroom admits sessions a reject queue would have dropped, so with
  // identical load the degrade policy must shed strictly fewer arrivals
  // at the door than its hard cap implies and still serve thinned.
  EXPECT_GT(report.mode_dispatches[static_cast<int>(ServiceMode::kThinned)],
            0u);
  EXPECT_EQ(report.bitexact_failures, 0u);
  EXPECT_EQ(report.decode_mismatches, 0u);
}

TEST(CodingService, HangsTriggerHedgedRedispatch) {
  ServiceConfig config = base_config(2);
  config.offered_load = 0.5;
  // Frequent hangs: each costs the watchdog budget (20x nominal), far past
  // the hedge threshold (2x), so stragglers must hedge onto the peer.
  ASSERT_TRUE(simgpu::FaultPlan::parse("phang=0.2").has_value());
  config.fleet.faults = *simgpu::FaultPlan::parse("phang=0.2");
  config.hedge_factor = 2.0;
  config.deadline_factor = 1e6;  // isolate hedging from deadline sheds
  CodingService service(std::move(config));
  const ServiceReport report = service.run();

  EXPECT_TRUE(report.accounting_exact());
  EXPECT_GT(report.hedges, 0u);
  EXPECT_GT(report.hedge_wins, 0u);
  EXPECT_EQ(report.bitexact_failures, 0u);
  EXPECT_EQ(report.decode_mismatches, 0u);
  EXPECT_EQ(report.failed, 0u);
}

// The ISSUE acceptance soak: 3 devices, the scripted plan kills one and
// doubles offered load mid-run. Every admitted session must end in exactly
// one terminal state, completed sessions decode bit-exactly, and the
// faulted phase is visible in the split latency histograms.
TEST(CodingService, KillOneOfThreeAndDoubleLoadSoak) {
  ServiceConfig config = base_config(3);
  config.offered_load = 0.9;
  config.duration_s = 0.1;
  config.admission.capacity = 12;
  config.admission.policy = ShedPolicy::kDegrade;
  const double t_kill = 0.04;
  const auto plan = FleetPlan::parse("kill@0.04:1,load@0.04:2.0");
  ASSERT_TRUE(plan.has_value());
  config.plan = *plan;
  // A light probabilistic fault background on top of the scripted kill.
  ASSERT_TRUE(simgpu::FaultPlan::parse("pflip=0.01").has_value());
  config.fleet.faults = *simgpu::FaultPlan::parse("pflip=0.01");
  CodingService service(std::move(config));
  const ServiceReport report = service.run();

  // Exact terminal accounting: nothing lost, nothing double-counted.
  EXPECT_TRUE(report.accounting_exact());
  EXPECT_EQ(report.completed + report.degraded + report.shed + report.failed,
            report.arrivals);
  EXPECT_GT(report.arrivals, 50u);
  EXPECT_GT(report.completed, 0u);
  EXPECT_EQ(report.failed, 0u);  // two devices always survive

  // Bit-exactness under faults and failover.
  EXPECT_EQ(report.bitexact_failures, 0u);
  EXPECT_EQ(report.decode_mismatches, 0u);

  // The kill was observed: the victim's in-flight work re-dispatched onto
  // survivors, and the faulted phase produced latency samples.
  ASSERT_EQ(report.devices.size(), 3u);
  EXPECT_FALSE(report.devices[1].alive);
  EXPECT_GT(report.stale_completions, 0u);
  EXPECT_GT(report.redispatches, 0u);
  EXPECT_GT(report.segment_latency_faulted_s.count(), 0u);
  EXPECT_GT(report.segment_latency_healthy_s.count(), 0u);
  EXPECT_EQ(report.segment_latency_s.count(),
            report.segment_latency_healthy_s.count() +
                report.segment_latency_faulted_s.count());

  // Doubled load on two survivors is overload: degradation engaged.
  EXPECT_GT(report.degraded + report.shed, 0u);
  EXPECT_GT(report.ladder_transitions, 0u);

  // The dead device served nothing after the kill.
  for (const DeviceHealth& device : report.devices) {
    EXPECT_EQ(device.segments, device.gpu_segments + device.cpu_segments);
  }
  EXPECT_GT(report.devices[0].segments + report.devices[2].segments,
            report.devices[1].segments);

  // p99s exist for both phases (the BENCH_fleet contract).
  EXPECT_GT(report.segment_latency_healthy_s.quantile(0.99), 0.0);
  EXPECT_GT(report.segment_latency_faulted_s.quantile(0.99), 0.0);
  (void)t_kill;
}

TEST(CodingService, WholeFleetDeathFailsStrandedSessionsExplicitly) {
  ServiceConfig config = base_config(1);
  config.offered_load = 0.5;
  config.duration_s = 0.05;
  const auto plan = FleetPlan::parse("kill@0.02:0");
  ASSERT_TRUE(plan.has_value());
  config.plan = *plan;
  CodingService service(std::move(config));
  const ServiceReport report = service.run();

  EXPECT_TRUE(report.accounting_exact());
  // The only device died mid-run with no restore: everything in flight or
  // queued afterwards must end failed (or shed at a deadline) — never
  // silently lost.
  EXPECT_GT(report.failed, 0u);
  EXPECT_GT(report.completed, 0u);  // pre-kill sessions finished
}

TEST(CodingService, RestoreBringsTheDeviceBackIntoRotation) {
  ServiceConfig config = base_config(2);
  config.offered_load = 0.6;
  config.duration_s = 0.1;
  const auto plan = FleetPlan::parse("kill@0.02:0,restore@0.05:0");
  ASSERT_TRUE(plan.has_value());
  config.plan = *plan;
  CodingService service(std::move(config));
  const ServiceReport report = service.run();

  EXPECT_TRUE(report.accounting_exact());
  EXPECT_EQ(report.failed, 0u);
  ASSERT_EQ(report.devices.size(), 2u);
  EXPECT_TRUE(report.devices[0].alive);  // restored
  EXPECT_TRUE(report.devices[1].alive);
}

// --- ramped restore --------------------------------------------------------

TEST(CodingService, RestoredDeviceClimbsTheRampMonotonically) {
  ServiceConfig config = base_config(2);
  config.offered_load = 0.7;
  config.duration_s = 0.15;
  config.fleet.restore_ramp.advance_after = 2;
  const auto plan = FleetPlan::parse("kill@0.02:0,restore@0.04:0");
  ASSERT_TRUE(plan.has_value());
  config.plan = *plan;
  CodingService service(std::move(config));
  const ServiceReport report = service.run();

  EXPECT_TRUE(report.accounting_exact());
  EXPECT_EQ(report.ramp_collapses, 0u);  // no faults: every segment clean
  // The restored device walked 0 -> 1 -> 2 -> 3 -> complete, never
  // backwards — the BENCH_fleet "monotone climb" contract.
  std::vector<int> stages;
  for (const auto& event : report.ramp_events) {
    if (event.device == 0) stages.push_back(event.stage);
  }
  ASSERT_GE(stages.size(), 2u);
  EXPECT_EQ(stages.front(), 0);
  for (std::size_t i = 1; i < stages.size(); ++i) {
    EXPECT_GT(stages[i], stages[i - 1]) << "ramp must climb monotonically";
  }
  EXPECT_EQ(stages.back(), kRampStages);  // reached full share
  ASSERT_EQ(report.devices.size(), 2u);
  EXPECT_EQ(report.devices[0].ramp_stage, kRampStages);
}

// --- crash recovery --------------------------------------------------------

ServiceConfig recovery_config() {
  ServiceConfig config;
  config.fleet.params = {.n = 8, .k = 64};
  config.fleet.devices = {simgpu::gtx280(), simgpu::gtx280()};
  config.fleet.threads = 1;
  config.segments_per_session = 3;
  config.offered_load = 0.4;       // light: both runs complete everything
  config.deadline_factor = 1e6;    // deadlines never interfere
  config.duration_s = 0.05;
  config.seed = 11;
  return config;
}

TEST(CodingService, CrashRecoverDeliversByteIdenticalPayloads) {
  // Baseline: the same scenario without the crash.
  ServiceConfig baseline_config = recovery_config();
  CodingService baseline(baseline_config);
  const ServiceReport clean = baseline.run();
  EXPECT_TRUE(clean.accounting_exact());
  EXPECT_EQ(clean.completed, clean.arrivals);

  // Crashed run: the process dies mid-run and recovers from its journal.
  ServiceConfig config = recovery_config();
  const auto plan = FleetPlan::parse("crash@0.02,recover@0.025");
  ASSERT_TRUE(plan.has_value());
  config.plan = *plan;
  const ServiceReport report = run_with_recovery(config);

  EXPECT_TRUE(report.recovered);
  EXPECT_EQ(report.recoveries, 1u);
  EXPECT_GT(report.journal_records, 0u);
  EXPECT_EQ(report.journal_dropped_bytes, 0u);
  EXPECT_TRUE(report.accounting_exact());
  EXPECT_EQ(report.bitexact_failures, 0u);
  EXPECT_EQ(report.decode_mismatches, 0u);

  // ZERO lost sessions: the deterministic arrival timeline regenerates
  // every arrival the lost process would have seen.
  EXPECT_EQ(report.arrivals, clean.arrivals);
  EXPECT_EQ(report.completed, clean.completed);
  EXPECT_EQ(report.shed, 0u);
  EXPECT_EQ(report.failed, 0u);

  // Byte-identical deliveries: the payload-CRC digest over every
  // completed session matches the uncrashed run exactly.
  EXPECT_EQ(report.delivered_digest, clean.delivered_digest);
  EXPECT_NE(report.delivered_digest, 0u);
}

TEST(CodingService, CrashedRunReportsPartialAndJournalRecovers) {
  // The process-level flow, by hand: run() stops at the crash with a
  // partial report, recover() rebuilds from the journal BYTES alone.
  ServiceConfig config = recovery_config();
  const auto plan = FleetPlan::parse("crash@0.02");
  ASSERT_TRUE(plan.has_value());
  config.plan = *plan;
  CodingService first(config);
  const ServiceReport partial = first.run();
  EXPECT_TRUE(partial.crashed);
  EXPECT_DOUBLE_EQ(partial.crash_at_s, 0.02);

  const std::vector<std::uint8_t> journal = first.journal_bytes();
  auto second = CodingService::recover(config, journal);
  ASSERT_NE(second, nullptr);
  const ServiceReport report = second->run();
  EXPECT_FALSE(report.crashed);
  EXPECT_TRUE(report.recovered);
  EXPECT_TRUE(report.accounting_exact());
  EXPECT_EQ(report.completed, report.arrivals);

  // Terminal states journaled before the crash carried over verbatim.
  EXPECT_GE(report.completed, partial.completed);
}

TEST(CodingService, RecoveryRefusesForeignOrCorruptJournals) {
  ServiceConfig config = recovery_config();
  const auto plan = FleetPlan::parse("crash@0.02");
  ASSERT_TRUE(plan.has_value());
  config.plan = *plan;
  CodingService first(config);
  (void)first.run();
  const std::vector<std::uint8_t> journal = first.journal_bytes();

  // A different seed is a different config: the fingerprint must refuse.
  ServiceConfig other = recovery_config();
  other.plan = *plan;
  other.seed = 999;
  EXPECT_EQ(CodingService::recover(other, journal), nullptr);

  // A corrupt header refuses outright.
  std::vector<std::uint8_t> bad = journal;
  bad[0] = 'Z';
  EXPECT_EQ(CodingService::recover(config, bad), nullptr);
}

TEST(CodingService, TornJournalTailIsDroppedAndReservedDeterministically) {
  ServiceConfig config = recovery_config();
  const auto plan = FleetPlan::parse("crash@0.02");
  ASSERT_TRUE(plan.has_value());
  config.plan = *plan;
  CodingService first(config);
  (void)first.run();
  std::vector<std::uint8_t> journal = first.journal_bytes();

  // Tear 11 bytes off the tail (mid-record): recovery must drop the torn
  // frame, re-serve whatever progress it lost, and still close the run
  // with exact accounting and every session completed.
  ASSERT_GT(journal.size(), 40u);
  journal.resize(journal.size() - 11);
  auto second = CodingService::recover(config, journal);
  ASSERT_NE(second, nullptr);
  const ServiceReport report = second->run();
  EXPECT_TRUE(report.recovered);
  EXPECT_GT(report.journal_dropped_bytes, 0u);
  EXPECT_TRUE(report.accounting_exact());
  EXPECT_EQ(report.completed, report.arrivals);
  EXPECT_EQ(report.bitexact_failures, 0u);
}

TEST(CodingService, ChainedCrashesRecoverRecoverably) {
  // Two crashes in one scenario: the journal compacts across recoveries,
  // so the second recovery replays ONE journal, not a chain of fragments.
  ServiceConfig config = recovery_config();
  config.duration_s = 0.06;
  const auto plan =
      FleetPlan::parse("crash@0.015,recover@0.02,crash@0.035,recover@0.04");
  ASSERT_TRUE(plan.has_value());
  config.plan = *plan;
  const ServiceReport report = run_with_recovery(config);
  EXPECT_TRUE(report.recovered);
  EXPECT_EQ(report.recoveries, 2u);
  EXPECT_TRUE(report.accounting_exact());
  EXPECT_EQ(report.completed, report.arrivals);
  EXPECT_EQ(report.bitexact_failures, 0u);

  ServiceConfig clean_config = recovery_config();
  clean_config.duration_s = 0.06;
  CodingService clean(clean_config);
  const ServiceReport baseline = clean.run();
  EXPECT_EQ(report.arrivals, baseline.arrivals);
  EXPECT_EQ(report.delivered_digest, baseline.delivered_digest);
}

TEST(CodingService, CrashUnderDeviceFaultsKeepsExactAccounting) {
  // The chaos combination: a device dies, the process crashes, both
  // recover. Accounting must stay exact and output bit-exact; the digest
  // is not compared (deadline sheds may differ across the boundary).
  ServiceConfig config = recovery_config();
  config.offered_load = 0.8;
  config.deadline_factor = 25.0;
  config.duration_s = 0.08;
  const auto plan = FleetPlan::parse(
      "kill@0.01:0,crash@0.02,recover@0.03,restore@0.05:0");
  ASSERT_TRUE(plan.has_value());
  config.plan = *plan;
  const ServiceReport report = run_with_recovery(config);
  EXPECT_TRUE(report.recovered);
  EXPECT_TRUE(report.accounting_exact());
  EXPECT_EQ(report.bitexact_failures, 0u);
  EXPECT_EQ(report.decode_mismatches, 0u);
  EXPECT_GT(report.completed, 0u);
}

// --- tenants and priorities ------------------------------------------------

ServiceConfig tenant_config() {
  ServiceConfig config;
  config.fleet.params = {.n = 8, .k = 64};
  config.fleet.devices = {simgpu::gtx280(), simgpu::gtx280()};
  config.fleet.threads = 1;
  config.segments_per_session = 3;
  config.duration_s = 0.08;
  config.seed = 23;
  config.tenants = {
      {.name = "interactive", .weight = 2.0, .priority = Priority::kInteractive},
      {.name = "batch", .weight = 1.0, .priority = Priority::kBestEffort},
  };
  return config;
}

TEST(CodingService, TenantBurstCannotShedTheOtherTenantsTraffic) {
  ServiceConfig config = tenant_config();
  config.offered_load = 0.8;
  config.admission.capacity = 8;
  config.admission.policy = ShedPolicy::kReject;
  const auto plan = FleetPlan::parse("tenantburst@0.02:batch:8.0");
  ASSERT_TRUE(plan.has_value());
  config.plan = *plan;
  CodingService service(std::move(config));
  const ServiceReport report = service.run();

  EXPECT_TRUE(report.accounting_exact());
  ASSERT_EQ(report.tenants.size(), 2u);
  const TenantReport& interactive = report.tenants[0];
  const TenantReport& batch = report.tenants[1];
  EXPECT_EQ(interactive.name, "interactive");
  EXPECT_GT(batch.arrivals, interactive.arrivals);  // the burst arrived
  EXPECT_GT(batch.shed, 0u);  // and was shed within its own share
  // The burst victimized only the burster: the interactive tenant's shed
  // fraction stays negligible while batch sheds heavily.
  const double interactive_shed =
      static_cast<double>(interactive.shed) /
      static_cast<double>(std::max<std::uint64_t>(1, interactive.arrivals));
  const double batch_shed =
      static_cast<double>(batch.shed) /
      static_cast<double>(std::max<std::uint64_t>(1, batch.arrivals));
  EXPECT_LT(interactive_shed, 0.25 * batch_shed + 0.05)
      << "interactive=" << interactive_shed << " batch=" << batch_shed;
  // Per-tenant accounting folds back to the fleet totals.
  EXPECT_EQ(interactive.arrivals + batch.arrivals, report.arrivals);
  EXPECT_EQ(interactive.shed + batch.shed, report.shed);
}

TEST(CodingService, BestEffortDegradesBeforeInteractive) {
  // Mid-range pressure is where the class bias shows: the ladder hovers
  // around the early rungs, which the +1 bias turns into degraded modes
  // for best-effort while the -1 bias keeps interactive at full
  // fidelity. (At full saturation BOTH classes degrade — and priority
  // ordering starves best-effort entirely — so overload would hide the
  // ordering this test pins.)
  ServiceConfig config = tenant_config();
  config.offered_load = 1.5;
  config.deadline_factor = 1e6;  // no deadline sheds: everyone finishes
  config.admission.capacity = 64;
  config.admission.policy = ShedPolicy::kReject;
  CodingService service(std::move(config));
  const ServiceReport report = service.run();

  EXPECT_TRUE(report.accounting_exact());
  ASSERT_EQ(report.tenants.size(), 2u);
  EXPECT_GT(report.dispatches_by_class[static_cast<int>(Priority::kInteractive)],
            0u);
  EXPECT_GT(report.dispatches_by_class[static_cast<int>(Priority::kBestEffort)],
            0u);
  // Class-biased ladder entry: best-effort sessions see degraded modes
  // while interactive ones are still served at full fidelity, so the
  // degraded FRACTION must order strictly.
  const TenantReport& interactive = report.tenants[0];
  const TenantReport& batch = report.tenants[1];
  const double interactive_frac =
      static_cast<double>(interactive.degraded) /
      static_cast<double>(
          std::max<std::uint64_t>(1, interactive.completed + interactive.degraded));
  const double batch_frac =
      static_cast<double>(batch.degraded) /
      static_cast<double>(
          std::max<std::uint64_t>(1, batch.completed + batch.degraded));
  EXPECT_GT(batch.degraded, 0u);
  EXPECT_LT(interactive_frac, batch_frac)
      << "interactive=" << interactive_frac << " batch=" << batch_frac;
}

TEST(CodingService, TenantAccountingSurvivesCrashRecovery) {
  ServiceConfig config = tenant_config();
  config.offered_load = 0.4;
  config.deadline_factor = 1e6;
  const auto plan = FleetPlan::parse("crash@0.03,recover@0.035");
  ASSERT_TRUE(plan.has_value());
  config.plan = *plan;
  const ServiceReport report = run_with_recovery(config);

  ServiceConfig clean_config = tenant_config();
  clean_config.offered_load = 0.4;
  clean_config.deadline_factor = 1e6;
  CodingService clean(clean_config);
  const ServiceReport baseline = clean.run();

  EXPECT_TRUE(report.accounting_exact());
  ASSERT_EQ(report.tenants.size(), 2u);
  EXPECT_EQ(report.tenants[0].arrivals, baseline.tenants[0].arrivals);
  EXPECT_EQ(report.tenants[1].arrivals, baseline.tenants[1].arrivals);
  EXPECT_EQ(report.delivered_digest, baseline.delivered_digest);
}

}  // namespace
}  // namespace extnc::serve
