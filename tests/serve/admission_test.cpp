// Admission queue: capacity, the three shedding policies, FIFO order.
#include "serve/admission.h"

#include <gtest/gtest.h>

namespace extnc::serve {
namespace {

TEST(AdmissionQueue, AdmitsUpToCapacityThenRejects) {
  AdmissionQueue queue({.capacity = 2, .policy = ShedPolicy::kReject});
  EXPECT_TRUE(queue.offer(0).admitted);
  EXPECT_TRUE(queue.offer(1).admitted);
  const AdmissionDecision third = queue.offer(2);
  EXPECT_FALSE(third.admitted);
  EXPECT_FALSE(third.evicted.has_value());
  EXPECT_EQ(queue.depth(), 2u);
  EXPECT_DOUBLE_EQ(queue.pressure(), 1.0);
}

TEST(AdmissionQueue, ShedOldestEvictsHeadAndAdmits) {
  AdmissionQueue queue({.capacity = 2, .policy = ShedPolicy::kShedOldest});
  EXPECT_TRUE(queue.offer(10).admitted);
  EXPECT_TRUE(queue.offer(11).admitted);
  const AdmissionDecision third = queue.offer(12);
  EXPECT_TRUE(third.admitted);
  ASSERT_TRUE(third.evicted.has_value());
  EXPECT_EQ(*third.evicted, 10u);  // oldest waiter pays
  EXPECT_EQ(queue.depth(), 2u);
  EXPECT_EQ(queue.pop(), std::optional<std::uint64_t>(11));
  EXPECT_EQ(queue.pop(), std::optional<std::uint64_t>(12));
}

TEST(AdmissionQueue, DegradeAdmitsIntoHeadroomThenRejects) {
  AdmissionQueue queue({.capacity = 2,
                        .policy = ShedPolicy::kDegrade,
                        .degrade_headroom = 2.0});
  EXPECT_EQ(queue.hard_cap(), 4u);
  EXPECT_FALSE(queue.offer(0).force_degraded);
  EXPECT_FALSE(queue.offer(1).force_degraded);
  const AdmissionDecision over = queue.offer(2);
  EXPECT_TRUE(over.admitted);
  EXPECT_TRUE(over.force_degraded);  // past capacity: thinned service
  EXPECT_TRUE(queue.offer(3).admitted);
  EXPECT_FALSE(queue.offer(4).admitted);  // past the hard cap
  EXPECT_EQ(queue.depth(), 4u);
  EXPECT_GT(queue.pressure(), 1.0);
}

TEST(AdmissionQueue, PopIsFifoAndRemoveDropsWaiters) {
  AdmissionQueue queue({.capacity = 4});
  for (std::uint64_t id : {1, 2, 3}) queue.offer(id);
  EXPECT_TRUE(queue.remove(2));
  EXPECT_FALSE(queue.remove(2));  // already gone
  EXPECT_EQ(queue.pop(), std::optional<std::uint64_t>(1));
  EXPECT_EQ(queue.pop(), std::optional<std::uint64_t>(3));
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(ShedPolicy, NamesRoundTrip) {
  for (ShedPolicy policy : {ShedPolicy::kReject, ShedPolicy::kShedOldest,
                            ShedPolicy::kDegrade}) {
    const auto parsed = parse_shed_policy(shed_policy_name(policy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(parse_shed_policy("yolo").has_value());
}

}  // namespace
}  // namespace extnc::serve
