// Admission queue: capacity, the three shedding policies, FIFO order.
#include "serve/admission.h"

#include <gtest/gtest.h>

namespace extnc::serve {
namespace {

TEST(AdmissionQueue, AdmitsUpToCapacityThenRejects) {
  AdmissionQueue queue({.capacity = 2, .policy = ShedPolicy::kReject});
  EXPECT_TRUE(queue.offer(0).admitted);
  EXPECT_TRUE(queue.offer(1).admitted);
  const AdmissionDecision third = queue.offer(2);
  EXPECT_FALSE(third.admitted);
  EXPECT_FALSE(third.evicted.has_value());
  EXPECT_EQ(queue.depth(), 2u);
  EXPECT_DOUBLE_EQ(queue.pressure(), 1.0);
}

TEST(AdmissionQueue, ShedOldestEvictsHeadAndAdmits) {
  AdmissionQueue queue({.capacity = 2, .policy = ShedPolicy::kShedOldest});
  EXPECT_TRUE(queue.offer(10).admitted);
  EXPECT_TRUE(queue.offer(11).admitted);
  const AdmissionDecision third = queue.offer(12);
  EXPECT_TRUE(third.admitted);
  ASSERT_TRUE(third.evicted.has_value());
  EXPECT_EQ(*third.evicted, 10u);  // oldest waiter pays
  EXPECT_EQ(queue.depth(), 2u);
  EXPECT_EQ(queue.pop(), std::optional<std::uint64_t>(11));
  EXPECT_EQ(queue.pop(), std::optional<std::uint64_t>(12));
}

TEST(AdmissionQueue, DegradeAdmitsIntoHeadroomThenRejects) {
  AdmissionQueue queue({.capacity = 2,
                        .policy = ShedPolicy::kDegrade,
                        .degrade_headroom = 2.0});
  EXPECT_EQ(queue.hard_cap(), 4u);
  EXPECT_FALSE(queue.offer(0).force_degraded);
  EXPECT_FALSE(queue.offer(1).force_degraded);
  const AdmissionDecision over = queue.offer(2);
  EXPECT_TRUE(over.admitted);
  EXPECT_TRUE(over.force_degraded);  // past capacity: thinned service
  EXPECT_TRUE(queue.offer(3).admitted);
  EXPECT_FALSE(queue.offer(4).admitted);  // past the hard cap
  EXPECT_EQ(queue.depth(), 4u);
  EXPECT_GT(queue.pressure(), 1.0);
}

TEST(AdmissionQueue, PopIsFifoAndRemoveDropsWaiters) {
  AdmissionQueue queue({.capacity = 4});
  for (std::uint64_t id : {1, 2, 3}) queue.offer(id);
  EXPECT_TRUE(queue.remove(2));
  EXPECT_FALSE(queue.remove(2));  // already gone
  EXPECT_EQ(queue.pop(), std::optional<std::uint64_t>(1));
  EXPECT_EQ(queue.pop(), std::optional<std::uint64_t>(3));
  EXPECT_EQ(queue.pop(), std::nullopt);
}

// --- priority ordering -----------------------------------------------------

TEST(AdmissionQueue, PopServesHigherPriorityClassesFirstFifoWithin) {
  AdmissionQueue queue({.capacity = 8});
  queue.offer(0, 0, Priority::kBestEffort);
  queue.offer(1, 0, Priority::kStandard);
  queue.offer(2, 0, Priority::kInteractive);
  queue.offer(3, 0, Priority::kInteractive);
  queue.offer(4, 0, Priority::kBestEffort);
  EXPECT_EQ(queue.pop(), std::optional<std::uint64_t>(2));
  EXPECT_EQ(queue.pop(), std::optional<std::uint64_t>(3));
  EXPECT_EQ(queue.pop(), std::optional<std::uint64_t>(1));
  EXPECT_EQ(queue.pop(), std::optional<std::uint64_t>(0));
  EXPECT_EQ(queue.pop(), std::optional<std::uint64_t>(4));
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(AdmissionQueue, ShedOldestPrefersTheLowestPriorityVictim) {
  AdmissionQueue queue({.capacity = 2, .policy = ShedPolicy::kShedOldest});
  queue.offer(0, 0, Priority::kInteractive);
  queue.offer(1, 0, Priority::kBestEffort);
  const AdmissionDecision third = queue.offer(2, 0, Priority::kStandard);
  EXPECT_TRUE(third.admitted);
  ASSERT_TRUE(third.evicted.has_value());
  // The best-effort waiter pays, not the older interactive one.
  EXPECT_EQ(*third.evicted, 1u);
}

// --- weighted-fair tenants -------------------------------------------------

TEST(AdmissionQueue, TenantCapsFollowWeights) {
  AdmissionQueue queue({.capacity = 9,
                        .policy = ShedPolicy::kReject,
                        .tenant_weights = {2.0, 1.0}});
  EXPECT_EQ(queue.tenant_count(), 2u);
  EXPECT_EQ(queue.tenant_cap(0), 6u);  // ceil(9 * 2/3)
  EXPECT_EQ(queue.tenant_cap(1), 3u);  // ceil(9 * 1/3)
}

TEST(AdmissionQueue, WorkConservingUnderCapacity) {
  // Free room is granted regardless of shares: one tenant may fill the
  // whole queue while the other is idle.
  AdmissionQueue queue({.capacity = 4,
                        .policy = ShedPolicy::kReject,
                        .tenant_weights = {1.0, 1.0}});
  for (std::uint64_t id = 0; id < 4; ++id) {
    EXPECT_TRUE(queue.offer(id, 1, Priority::kStandard).admitted);
  }
  EXPECT_EQ(queue.tenant_depth(1), 4u);
}

TEST(AdmissionQueue, UnderShareArrivalEvictsTheBurstersNewestWaiter) {
  AdmissionQueue queue({.capacity = 4,
                        .policy = ShedPolicy::kReject,
                        .tenant_weights = {1.0, 1.0}});
  // Tenant 1 bursts past its share of 2 and fills the queue.
  for (std::uint64_t id = 0; id < 4; ++id) {
    ASSERT_TRUE(queue.offer(id, 1, Priority::kStandard).admitted);
  }
  // Tenant 0 arrives under its share: admitted, and the BURSTER's newest
  // waiter pays — even under kReject, which would tail-drop a same-tenant
  // arrival.
  const AdmissionDecision fair = queue.offer(100, 0, Priority::kStandard);
  EXPECT_TRUE(fair.admitted);
  ASSERT_TRUE(fair.evicted.has_value());
  EXPECT_EQ(*fair.evicted, 3u);  // newest of tenant 1
  EXPECT_EQ(queue.tenant_depth(0), 1u);
  EXPECT_EQ(queue.tenant_depth(1), 3u);

  // The burster's own next arrival gets the policy (tail drop), not an
  // eviction of the under-share tenant.
  const AdmissionDecision burst_more = queue.offer(101, 1, Priority::kStandard);
  EXPECT_FALSE(burst_more.admitted);
  EXPECT_EQ(queue.tenant_depth(0), 1u);
}

TEST(AdmissionQueue, EvictionTakesTheBurstersLowestPriorityNewestWaiter) {
  AdmissionQueue queue({.capacity = 4,
                        .policy = ShedPolicy::kReject,
                        .tenant_weights = {1.0, 1.0}});
  ASSERT_TRUE(queue.offer(0, 1, Priority::kInteractive).admitted);
  ASSERT_TRUE(queue.offer(1, 1, Priority::kBestEffort).admitted);
  ASSERT_TRUE(queue.offer(2, 1, Priority::kBestEffort).admitted);
  ASSERT_TRUE(queue.offer(3, 1, Priority::kInteractive).admitted);
  const AdmissionDecision fair = queue.offer(100, 0, Priority::kStandard);
  EXPECT_TRUE(fair.admitted);
  ASSERT_TRUE(fair.evicted.has_value());
  EXPECT_EQ(*fair.evicted, 2u);  // newest within the lowest class
}

TEST(AdmissionQueue, ShedOldestStaysWithinTheArrivingTenant) {
  AdmissionQueue queue({.capacity = 4,
                        .policy = ShedPolicy::kShedOldest,
                        .tenant_weights = {1.0, 1.0}});
  ASSERT_TRUE(queue.offer(0, 0, Priority::kStandard).admitted);
  ASSERT_TRUE(queue.offer(1, 0, Priority::kStandard).admitted);
  ASSERT_TRUE(queue.offer(2, 1, Priority::kStandard).admitted);
  ASSERT_TRUE(queue.offer(3, 1, Priority::kStandard).admitted);
  // Both tenants exactly at share: the arriving tenant trades its OWN
  // oldest waiter, never the other tenant's.
  const AdmissionDecision next = queue.offer(4, 1, Priority::kStandard);
  EXPECT_TRUE(next.admitted);
  ASSERT_TRUE(next.evicted.has_value());
  EXPECT_EQ(*next.evicted, 2u);  // tenant 1's oldest, not tenant 0's
  EXPECT_EQ(queue.tenant_depth(0), 2u);
}

TEST(AdmissionQueue, DegradeHeadroomIsSharedByWeightToo) {
  AdmissionQueue queue({.capacity = 4,
                        .policy = ShedPolicy::kDegrade,
                        .degrade_headroom = 2.0,
                        .tenant_weights = {1.0, 1.0}});
  // Tenant 1 fills the queue (work-conserving), then pushes into the
  // degraded band — but only up to ceil(its cap * headroom) = 4, not the
  // whole hard cap of 8.
  for (std::uint64_t id = 0; id < 4; ++id) {
    ASSERT_TRUE(queue.offer(id, 1, Priority::kStandard).admitted);
  }
  EXPECT_FALSE(queue.offer(4, 1, Priority::kStandard).admitted);
  // Tenant 0 still has its own headroom available.
  const AdmissionDecision other = queue.offer(5, 0, Priority::kStandard);
  EXPECT_TRUE(other.admitted);
}

TEST(AdmissionQueue, RestoreBypassesPolicyForRecovery) {
  // Recovery re-enqueues already-admitted sessions: restore() must admit
  // past capacity without consulting the shed policy.
  AdmissionQueue queue({.capacity = 2, .policy = ShedPolicy::kReject});
  queue.offer(0);
  queue.offer(1);
  queue.restore(2, 0, Priority::kInteractive);
  EXPECT_EQ(queue.depth(), 3u);
  EXPECT_EQ(queue.pop(), std::optional<std::uint64_t>(2));  // priority holds
}

TEST(ShedPolicy, NamesRoundTrip) {
  for (ShedPolicy policy : {ShedPolicy::kReject, ShedPolicy::kShedOldest,
                            ShedPolicy::kDegrade}) {
    const auto parsed = parse_shed_policy(shed_policy_name(policy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(parse_shed_policy("yolo").has_value());
}

}  // namespace
}  // namespace extnc::serve
