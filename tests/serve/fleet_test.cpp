// FleetScheduler: deterministic sharded encodes, health transitions,
// modeled timings, decode verification.
#include "serve/fleet.h"

#include <gtest/gtest.h>

#include "simgpu/device_spec.h"
#include "util/checksum.h"

namespace extnc::serve {
namespace {

FleetConfig small_fleet(std::size_t devices) {
  FleetConfig config;
  config.params = {.n = 8, .k = 64};
  for (std::size_t i = 0; i < devices; ++i) {
    config.devices.push_back(i % 2 == 0 ? simgpu::gtx280()
                                        : simgpu::geforce_8800gt());
  }
  config.threads = 1;
  return config;
}

std::uint32_t batch_crc(const coding::CodedBatch& batch) {
  std::uint32_t crc = 0;
  for (std::size_t j = 0; j < batch.count(); ++j) {
    crc ^= crc32c(batch.coefficients(j)) ^ crc32c(batch.payload(j));
  }
  return crc;
}

class FleetSchedulerTest : public ::testing::Test {
 protected:
  FleetSchedulerTest() : fleet_(small_fleet(3), [this] { return now_; }) {}

  double now_ = 0;
  FleetScheduler fleet_;
};

TEST_F(FleetSchedulerTest, SameSeedSameBytesAcrossDevicesAndModes) {
  coding::CodedBatch on_dev0;
  coding::CodedBatch on_dev2;
  coding::CodedBatch forced_cpu;
  const std::uint64_t seed = 0xfeedbeef;
  const SegmentResult a =
      fleet_.encode_segment(0, seed, 12, ServiceMode::kFull, &on_dev0);
  const SegmentResult b =
      fleet_.encode_segment(2, seed, 12, ServiceMode::kFull, &on_dev2);
  const SegmentResult c =
      fleet_.encode_segment(1, seed, 12, ServiceMode::kCpuCodec, &forced_cpu);
  EXPECT_TRUE(a.bit_exact);
  EXPECT_TRUE(b.bit_exact);
  EXPECT_TRUE(c.bit_exact);
  EXPECT_FALSE(c.gpu_path);  // forced CPU codec never touches the device
  EXPECT_EQ(c.report.attempts, 0u);
  // Hedge replicas and post-kill re-dispatches rely on this: identical
  // seed -> identical bytes, whatever device or path served it.
  EXPECT_EQ(batch_crc(on_dev0), batch_crc(on_dev2));
  EXPECT_EQ(batch_crc(on_dev0), batch_crc(forced_cpu));
}

TEST_F(FleetSchedulerTest, ServedBatchDecodesBitExactly) {
  coding::CodedBatch batch;
  fleet_.encode_segment(0, 7, 12, ServiceMode::kFull, &batch);
  EXPECT_EQ(fleet_.verify_decode(batch), DecodeCheck::kBitExact);
}

TEST_F(FleetSchedulerTest, RankShortBatchIsDetected) {
  // Fewer coded blocks than generation size n: cannot possibly decode.
  coding::CodedBatch thin;
  fleet_.encode_segment(0, 7, fleet_.config().params.n - 1,
                        ServiceMode::kThinned, &thin);
  EXPECT_EQ(fleet_.verify_decode(thin), DecodeCheck::kRankShort);
}

TEST_F(FleetSchedulerTest, CorruptedPayloadIsAMismatch) {
  coding::CodedBatch batch;
  fleet_.encode_segment(0, 7, 12, ServiceMode::kFull, &batch);
  batch.payload(3)[5] ^= 0x40;
  EXPECT_NE(fleet_.verify_decode(batch), DecodeCheck::kBitExact);
}

TEST_F(FleetSchedulerTest, KillBumpsEpochTripsBreakerAndRestoreHeals) {
  EXPECT_TRUE(fleet_.alive(1));
  EXPECT_TRUE(fleet_.all_healthy());
  const std::uint64_t epoch_before = fleet_.epoch(1);

  fleet_.kill(1);
  EXPECT_FALSE(fleet_.alive(1));
  EXPECT_EQ(fleet_.alive_count(), 2u);
  EXPECT_EQ(fleet_.epoch(1), epoch_before + 1);
  EXPECT_TRUE(fleet_.health(1).breaker_open);
  EXPECT_FALSE(fleet_.all_healthy());

  fleet_.restore(1);
  EXPECT_TRUE(fleet_.alive(1));
  EXPECT_FALSE(fleet_.health(1).breaker_open);
  EXPECT_TRUE(fleet_.all_healthy());
  EXPECT_EQ(fleet_.epoch(1), epoch_before + 1);  // epoch never rolls back
}

TEST_F(FleetSchedulerTest, PickDevicePrefersLeastBusyAndHonorsExclusion) {
  fleet_.set_busy_until(0, 5.0);
  fleet_.set_busy_until(1, 1.0);
  fleet_.set_busy_until(2, 3.0);
  EXPECT_EQ(fleet_.pick_device(), std::optional<std::size_t>(1));
  EXPECT_EQ(fleet_.pick_device(1), std::optional<std::size_t>(2));
  fleet_.kill(1);
  EXPECT_EQ(fleet_.pick_device(), std::optional<std::size_t>(2));
  fleet_.kill(2);
  EXPECT_EQ(fleet_.pick_device(0), std::nullopt);  // nobody left
}

TEST_F(FleetSchedulerTest, ModeledTimingsOrderSanely) {
  const double full = fleet_.gpu_segment_s(0, 12);
  const double cpu = fleet_.cpu_segment_s(12);
  EXPECT_GT(full, 0);
  EXPECT_GT(cpu, 0);
  EXPECT_GT(fleet_.nominal_segment_s(12), 0);
  // The modeled GPU attempt is mode-independent now (the batched-dispatch
  // discount is gone): only the block count moves the modeled time, so
  // thinned density must be cheaper than full density.
  EXPECT_LT(fleet_.gpu_segment_s(0, 9), full);
}

TEST_F(FleetSchedulerTest, FaultedEncodeStaysBitExactAndChargesRetries) {
  FleetConfig config = small_fleet(1);
  ASSERT_TRUE(simgpu::FaultPlan::parse("flip@1,flip@3").has_value());
  config.faults = *simgpu::FaultPlan::parse("flip@1,flip@3");
  config.supervisor.backoff_initial_s = 1e-3;
  FleetScheduler faulted(std::move(config), [] { return 0.0; });

  coding::CodedBatch batch;
  const SegmentResult result =
      faulted.encode_segment(0, 99, 12, ServiceMode::kFull, &batch);
  EXPECT_TRUE(result.bit_exact);
  EXPECT_EQ(faulted.verify_decode(batch), DecodeCheck::kBitExact);
  // The scripted bit-flips forced retries; the modeled service time must
  // charge them (attempts > 1 and backoff included).
  EXPECT_GT(result.report.attempts, 1u);
  const double clean = faulted.gpu_segment_s(0, 12);
  EXPECT_GT(result.service_s, clean);
}

TEST_F(FleetSchedulerTest, FleetHealthReportsPerDeviceCounters) {
  fleet_.encode_segment(0, 1, 12, ServiceMode::kFull);
  fleet_.encode_segment(0, 2, 12, ServiceMode::kCpuCodec);
  const DeviceHealth health = fleet_.health(0);
  EXPECT_EQ(health.segments, 2u);
  EXPECT_EQ(health.gpu_segments, 1u);
  EXPECT_EQ(health.cpu_segments, 1u);
  EXPECT_EQ(fleet_.fleet_health().size(), 3u);
}

}  // namespace
}  // namespace extnc::serve
