// FleetScheduler: deterministic sharded encodes, health transitions,
// modeled timings, decode verification.
#include "serve/fleet.h"

#include <gtest/gtest.h>

#include "simgpu/device_spec.h"
#include "util/checksum.h"

namespace extnc::serve {
namespace {

FleetConfig small_fleet(std::size_t devices) {
  FleetConfig config;
  config.params = {.n = 8, .k = 64};
  for (std::size_t i = 0; i < devices; ++i) {
    config.devices.push_back(i % 2 == 0 ? simgpu::gtx280()
                                        : simgpu::geforce_8800gt());
  }
  config.threads = 1;
  return config;
}

std::uint32_t batch_crc(const coding::CodedBatch& batch) {
  std::uint32_t crc = 0;
  for (std::size_t j = 0; j < batch.count(); ++j) {
    crc ^= crc32c(batch.coefficients(j)) ^ crc32c(batch.payload(j));
  }
  return crc;
}

class FleetSchedulerTest : public ::testing::Test {
 protected:
  FleetSchedulerTest() : fleet_(small_fleet(3), [this] { return now_; }) {}

  double now_ = 0;
  FleetScheduler fleet_;
};

TEST_F(FleetSchedulerTest, SameSeedSameBytesAcrossDevicesAndModes) {
  coding::CodedBatch on_dev0;
  coding::CodedBatch on_dev2;
  coding::CodedBatch forced_cpu;
  const std::uint64_t seed = 0xfeedbeef;
  const SegmentResult a =
      fleet_.encode_segment(0, seed, 12, ServiceMode::kFull, &on_dev0);
  const SegmentResult b =
      fleet_.encode_segment(2, seed, 12, ServiceMode::kFull, &on_dev2);
  const SegmentResult c =
      fleet_.encode_segment(1, seed, 12, ServiceMode::kCpuCodec, &forced_cpu);
  EXPECT_TRUE(a.bit_exact);
  EXPECT_TRUE(b.bit_exact);
  EXPECT_TRUE(c.bit_exact);
  EXPECT_FALSE(c.gpu_path);  // forced CPU codec never touches the device
  EXPECT_EQ(c.report.attempts, 0u);
  // Hedge replicas and post-kill re-dispatches rely on this: identical
  // seed -> identical bytes, whatever device or path served it.
  EXPECT_EQ(batch_crc(on_dev0), batch_crc(on_dev2));
  EXPECT_EQ(batch_crc(on_dev0), batch_crc(forced_cpu));
}

TEST_F(FleetSchedulerTest, ServedBatchDecodesBitExactly) {
  coding::CodedBatch batch;
  fleet_.encode_segment(0, 7, 12, ServiceMode::kFull, &batch);
  EXPECT_EQ(fleet_.verify_decode(batch), DecodeCheck::kBitExact);
}

TEST_F(FleetSchedulerTest, RankShortBatchIsDetected) {
  // Fewer coded blocks than generation size n: cannot possibly decode.
  coding::CodedBatch thin;
  fleet_.encode_segment(0, 7, fleet_.config().params.n - 1,
                        ServiceMode::kThinned, &thin);
  EXPECT_EQ(fleet_.verify_decode(thin), DecodeCheck::kRankShort);
}

TEST_F(FleetSchedulerTest, CorruptedPayloadIsAMismatch) {
  coding::CodedBatch batch;
  fleet_.encode_segment(0, 7, 12, ServiceMode::kFull, &batch);
  batch.payload(3)[5] ^= 0x40;
  EXPECT_NE(fleet_.verify_decode(batch), DecodeCheck::kBitExact);
}

TEST_F(FleetSchedulerTest, KillBumpsEpochTripsBreakerAndRestoreHeals) {
  EXPECT_TRUE(fleet_.alive(1));
  EXPECT_TRUE(fleet_.all_healthy());
  const std::uint64_t epoch_before = fleet_.epoch(1);

  fleet_.kill(1);
  EXPECT_FALSE(fleet_.alive(1));
  EXPECT_EQ(fleet_.alive_count(), 2u);
  EXPECT_EQ(fleet_.epoch(1), epoch_before + 1);
  EXPECT_TRUE(fleet_.health(1).breaker_open);
  EXPECT_FALSE(fleet_.all_healthy());

  fleet_.restore(1);
  EXPECT_TRUE(fleet_.alive(1));
  EXPECT_FALSE(fleet_.health(1).breaker_open);
  EXPECT_TRUE(fleet_.all_healthy());
  EXPECT_EQ(fleet_.epoch(1), epoch_before + 1);  // epoch never rolls back
}

TEST_F(FleetSchedulerTest, PickDevicePrefersLeastBusyAndHonorsExclusion) {
  fleet_.set_busy_until(0, 5.0);
  fleet_.set_busy_until(1, 1.0);
  fleet_.set_busy_until(2, 3.0);
  EXPECT_EQ(fleet_.pick_device(), std::optional<std::size_t>(1));
  EXPECT_EQ(fleet_.pick_device(1), std::optional<std::size_t>(2));
  fleet_.kill(1);
  EXPECT_EQ(fleet_.pick_device(), std::optional<std::size_t>(2));
  fleet_.kill(2);
  EXPECT_EQ(fleet_.pick_device(0), std::nullopt);  // nobody left
}

TEST_F(FleetSchedulerTest, ModeledTimingsOrderSanely) {
  const double full = fleet_.gpu_segment_s(0, 12);
  const double cpu = fleet_.cpu_segment_s(12);
  EXPECT_GT(full, 0);
  EXPECT_GT(cpu, 0);
  EXPECT_GT(fleet_.nominal_segment_s(12), 0);
  // The modeled GPU attempt is mode-independent now (the batched-dispatch
  // discount is gone): only the block count moves the modeled time, so
  // thinned density must be cheaper than full density.
  EXPECT_LT(fleet_.gpu_segment_s(0, 9), full);
}

TEST_F(FleetSchedulerTest, FaultedEncodeStaysBitExactAndChargesRetries) {
  FleetConfig config = small_fleet(1);
  ASSERT_TRUE(simgpu::FaultPlan::parse("flip@1,flip@3").has_value());
  config.faults = *simgpu::FaultPlan::parse("flip@1,flip@3");
  config.supervisor.backoff_initial_s = 1e-3;
  FleetScheduler faulted(std::move(config), [] { return 0.0; });

  coding::CodedBatch batch;
  const SegmentResult result =
      faulted.encode_segment(0, 99, 12, ServiceMode::kFull, &batch);
  EXPECT_TRUE(result.bit_exact);
  EXPECT_EQ(faulted.verify_decode(batch), DecodeCheck::kBitExact);
  // The scripted bit-flips forced retries; the modeled service time must
  // charge them (attempts > 1 and backoff included).
  EXPECT_GT(result.report.attempts, 1u);
  const double clean = faulted.gpu_segment_s(0, 12);
  EXPECT_GT(result.service_s, clean);
}

TEST_F(FleetSchedulerTest, FleetHealthReportsPerDeviceCounters) {
  fleet_.encode_segment(0, 1, 12, ServiceMode::kFull);
  fleet_.encode_segment(0, 2, 12, ServiceMode::kCpuCodec);
  const DeviceHealth health = fleet_.health(0);
  EXPECT_EQ(health.segments, 2u);
  EXPECT_EQ(health.gpu_segments, 1u);
  EXPECT_EQ(health.cpu_segments, 1u);
  EXPECT_EQ(fleet_.fleet_health().size(), 3u);
}

// --- restore ramp ----------------------------------------------------------

TEST_F(FleetSchedulerTest, RestoreEntersTheRampAtStageZero) {
  EXPECT_EQ(fleet_.ramp_stage(0), kRampStages);  // healthy: not ramping
  fleet_.kill(0);
  EXPECT_EQ(fleet_.ramp_stage(0), kRampStages);  // dead: ramp voided
  fleet_.restore(0);
  EXPECT_EQ(fleet_.ramp_stage(0), 0);
  EXPECT_EQ(fleet_.health(0).ramp_stage, 0);
  ASSERT_FALSE(fleet_.ramp_events().empty());
  EXPECT_EQ(fleet_.ramp_events().back().stage, 0);
}

TEST_F(FleetSchedulerTest, RampStageZeroTakesExactlyItsShareOfOffers) {
  fleet_.kill(0);
  fleet_.restore(0);
  // Stage 0 share is 1/8: of 16 offered opportunities, exactly 2 are
  // taken, at deterministic positions (the 8th and 16th offer).
  int taken = 0;
  for (int offer = 1; offer <= 16; ++offer) {
    const bool granted = fleet_.ramp_offer(0);
    if (granted) ++taken;
    EXPECT_EQ(granted, offer % 8 == 0) << "offer " << offer;
  }
  EXPECT_EQ(taken, 2);
  // A device that is not ramping is never throttled.
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(fleet_.ramp_offer(1));
}

TEST_F(FleetSchedulerTest, CleanGpuSegmentsClimbTheRampToCompletion) {
  FleetConfig config = small_fleet(1);
  config.restore_ramp.advance_after = 2;
  FleetScheduler fleet(std::move(config), [] { return 0.0; });
  fleet.kill(0);
  fleet.restore(0);
  for (int stage = 0; stage < kRampStages; ++stage) {
    EXPECT_EQ(fleet.ramp_stage(0), stage);
    fleet.encode_segment(0, 100 + stage, 12, ServiceMode::kFull);
    EXPECT_EQ(fleet.ramp_stage(0), stage);  // one clean segment: not yet
    fleet.encode_segment(0, 200 + stage, 12, ServiceMode::kFull);
  }
  EXPECT_EQ(fleet.ramp_stage(0), kRampStages);  // completed: full share
  EXPECT_TRUE(fleet.ramp_offer(0));
  EXPECT_EQ(fleet.ramp_collapses(), 0u);
  // The recorded stage trail is the monotone climb 0,1,2,3,4.
  ASSERT_EQ(fleet.ramp_events().size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(fleet.ramp_events()[i].stage, i);
  }
}

TEST_F(FleetSchedulerTest, CpuFallbackMidRampCollapsesToStageZero) {
  FleetConfig config = small_fleet(1);
  config.restore_ramp.advance_after = 1;
  FleetScheduler fleet(std::move(config), [] { return 0.0; });
  fleet.kill(0);
  fleet.restore(0);
  fleet.encode_segment(0, 1, 12, ServiceMode::kFull);
  fleet.encode_segment(0, 2, 12, ServiceMode::kFull);
  ASSERT_EQ(fleet.ramp_stage(0), 2);
  // A ladder-forced CPU segment never touched the device: it says nothing
  // about its health and must NOT collapse the ramp.
  fleet.encode_segment(0, 3, 12, ServiceMode::kCpuCodec);
  EXPECT_EQ(fleet.ramp_stage(0), 2);
  EXPECT_EQ(fleet.ramp_collapses(), 0u);
  // But a supervised dispatch that falls back (breaker trips mid-ramp)
  // means the device is not actually healed: back to the bottom.
  fleet.supervisor(0).trip_breaker();
  const SegmentResult fallback =
      fleet.encode_segment(0, 4, 12, ServiceMode::kFull);
  ASSERT_FALSE(fallback.gpu_path);
  EXPECT_TRUE(fallback.bit_exact);  // fallback still serves correct bytes
  EXPECT_EQ(fleet.ramp_stage(0), 0);
  EXPECT_EQ(fleet.ramp_collapses(), 1u);
  EXPECT_EQ(fleet.ramp_events().back().stage, 0);
}

TEST_F(FleetSchedulerTest, KillMidRampVoidsItAndRestoreStartsFresh) {
  fleet_.kill(2);
  fleet_.restore(2);
  ASSERT_EQ(fleet_.ramp_stage(2), 0);
  fleet_.kill(2);
  EXPECT_EQ(fleet_.ramp_stage(2), kRampStages);  // dead device: no ramp
  fleet_.restore(2);
  EXPECT_EQ(fleet_.ramp_stage(2), 0);  // re-earn the share from scratch
}

TEST_F(FleetSchedulerTest, DisabledRampRestoresAtFullShare) {
  FleetConfig config = small_fleet(1);
  config.restore_ramp.enabled = false;
  FleetScheduler fleet(std::move(config), [] { return 0.0; });
  fleet.kill(0);
  fleet.restore(0);
  EXPECT_EQ(fleet.ramp_stage(0), kRampStages);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(fleet.ramp_offer(0));
  EXPECT_TRUE(fleet.ramp_events().empty());
}

}  // namespace
}  // namespace extnc::serve
