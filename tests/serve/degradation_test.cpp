// Degradation ladder: immediate climb, hysteretic step-down, dwell.
#include "serve/degradation.h"

#include <gtest/gtest.h>

namespace extnc::serve {
namespace {

TEST(DegradationLadder, StartsFullAndClimbsAtThresholds) {
  DegradationLadder ladder;
  EXPECT_EQ(ladder.mode(), ServiceMode::kFull);
  EXPECT_EQ(ladder.update(0.49), ServiceMode::kFull);
  EXPECT_EQ(ladder.update(0.50), ServiceMode::kBatched);
  EXPECT_EQ(ladder.update(0.75), ServiceMode::kCpuCodec);
  EXPECT_EQ(ladder.update(0.95), ServiceMode::kThinned);
  EXPECT_EQ(ladder.transitions(), 3u);
}

TEST(DegradationLadder, SpikeClimbsSeveralRungsInOneUpdate) {
  DegradationLadder ladder;
  EXPECT_EQ(ladder.update(1.2), ServiceMode::kThinned);
  // One observation, one recorded transition (kFull -> kThinned).
  EXPECT_EQ(ladder.transitions(), 1u);
}

TEST(DegradationLadder, StepDownNeedsHysteresisMargin) {
  DegradationLadder ladder;  // enter {0.5, 0.75, 0.95}, hysteresis 0.15
  ladder.update(0.6);
  ASSERT_EQ(ladder.mode(), ServiceMode::kBatched);
  // Pressure below the entry threshold but inside the hysteresis band:
  // hold the rung, no flapping.
  EXPECT_EQ(ladder.update(0.45), ServiceMode::kBatched);
  EXPECT_EQ(ladder.update(0.36), ServiceMode::kBatched);
  // Below enter[0] - hysteresis = 0.35: relax.
  EXPECT_EQ(ladder.update(0.34), ServiceMode::kFull);
}

TEST(DegradationLadder, RelaxesOneRungPerUpdate) {
  DegradationLadder ladder;
  ladder.update(1.0);
  ASSERT_EQ(ladder.mode(), ServiceMode::kThinned);
  // Pressure collapses to zero; the ladder still walks down rung by rung
  // so recovering service ramps fidelity back gradually.
  EXPECT_EQ(ladder.update(0.0), ServiceMode::kCpuCodec);
  EXPECT_EQ(ladder.update(0.0), ServiceMode::kBatched);
  EXPECT_EQ(ladder.update(0.0), ServiceMode::kFull);
  EXPECT_EQ(ladder.update(0.0), ServiceMode::kFull);
  EXPECT_EQ(ladder.transitions(), 4u);  // 1 up + 3 down
}

TEST(DegradationLadder, DwellCountsUpdatesPerMode) {
  DegradationLadder ladder;
  ladder.update(0.1);
  ladder.update(0.2);
  ladder.update(0.6);
  ladder.update(0.6);
  ladder.update(0.6);
  const auto& dwell = ladder.dwell();
  EXPECT_EQ(dwell[static_cast<int>(ServiceMode::kFull)], 2u);
  EXPECT_EQ(dwell[static_cast<int>(ServiceMode::kBatched)], 3u);
  EXPECT_EQ(dwell[static_cast<int>(ServiceMode::kCpuCodec)], 0u);
}

TEST(DegradationLadder, ClassBiasEntersRungsPerPriority) {
  DegradationLadder ladder;  // default bias {-1, 0, +1}
  ladder.update(0.6);
  ASSERT_EQ(ladder.mode(), ServiceMode::kBatched);
  // Interactive runs a rung BELOW the pressure level, best-effort a rung
  // above; both clamp to the ladder's ends.
  EXPECT_EQ(ladder.mode_for(Priority::kInteractive), ServiceMode::kFull);
  EXPECT_EQ(ladder.mode_for(Priority::kStandard), ServiceMode::kBatched);
  EXPECT_EQ(ladder.mode_for(Priority::kBestEffort), ServiceMode::kCpuCodec);

  ladder.update(1.0);
  ASSERT_EQ(ladder.mode(), ServiceMode::kThinned);
  EXPECT_EQ(ladder.mode_for(Priority::kInteractive), ServiceMode::kCpuCodec);
  EXPECT_EQ(ladder.mode_for(Priority::kBestEffort), ServiceMode::kThinned);
}

TEST(DegradationLadder, RestoreLevelJumpsWithoutCountingATransition) {
  DegradationLadder ladder;
  ladder.restore_level(2);
  EXPECT_EQ(ladder.mode(), ServiceMode::kCpuCodec);
  EXPECT_EQ(ladder.transitions(), 0u);  // a journal replay, not a change
}

TEST(PriorityNames, RoundTrip) {
  for (Priority p : {Priority::kInteractive, Priority::kStandard,
                     Priority::kBestEffort}) {
    const auto parsed = parse_priority(priority_name(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_FALSE(parse_priority("vip").has_value());
}

TEST(ServiceNames, StatesAndModesHaveStableNames) {
  EXPECT_STREQ(session_state_name(SessionState::kCompleted), "completed");
  EXPECT_STREQ(session_state_name(SessionState::kShed), "shed");
  EXPECT_STREQ(service_mode_name(ServiceMode::kFull), "full");
  EXPECT_STREQ(service_mode_name(ServiceMode::kThinned), "thinned");
  EXPECT_TRUE(is_terminal(SessionState::kFailed));
  EXPECT_FALSE(is_terminal(SessionState::kServing));
}

}  // namespace
}  // namespace extnc::serve
