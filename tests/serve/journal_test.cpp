// The XNCJ session journal: framing round-trip, torn-tail drop, corrupt
// record/header rejection, and fingerprint binding — the durability
// contract crash recovery stands on.
#include "serve/journal.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

namespace extnc::serve {
namespace {

std::vector<JournalRecord> sample_records() {
  std::vector<JournalRecord> records;
  records.push_back({.type = JournalRecordType::kArrival,
                     .at = 1.25,
                     .session = 7,
                     .deadline_s = 9.5,
                     .segments = 4,
                     .tenant = 2,
                     .priority = 1});
  records.push_back({.type = JournalRecordType::kAdmit,
                     .at = 1.25,
                     .session = 7,
                     .force_degraded = true});
  records.push_back({.type = JournalRecordType::kSegmentDone,
                     .at = 1.5,
                     .session = 7,
                     .segment = 0,
                     .payload_crc = 0xdeadbeef,
                     .degraded = true,
                     .rank_short = false});
  records.push_back(
      {.type = JournalRecordType::kRung, .at = 1.75, .rung = 2});
  records.push_back({.type = JournalRecordType::kTerminal,
                     .at = 2.0,
                     .session = 7,
                     .state = 3,
                     .shed_reason = 1});
  records.push_back({.type = JournalRecordType::kRecovered, .at = 2.5});
  return records;
}

TEST(Journal, RoundTripsEveryRecordType) {
  Journal journal(0x1234abcd5678ef00ULL);
  const auto records = sample_records();
  for (const JournalRecord& r : records) journal.append(r);
  EXPECT_EQ(journal.records(), records.size());

  const auto image = Journal::parse(journal.bytes());
  ASSERT_TRUE(image.has_value());
  EXPECT_EQ(image->fingerprint, 0x1234abcd5678ef00ULL);
  EXPECT_EQ(image->dropped_bytes, 0u);
  ASSERT_EQ(image->records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const JournalRecord& a = records[i];
    const JournalRecord& b = image->records[i];
    EXPECT_EQ(b.type, a.type) << i;
    EXPECT_DOUBLE_EQ(b.at, a.at) << i;
    EXPECT_EQ(b.session, a.session) << i;
    EXPECT_DOUBLE_EQ(b.deadline_s, a.deadline_s) << i;
    EXPECT_EQ(b.segments, a.segments) << i;
    EXPECT_EQ(b.tenant, a.tenant) << i;
    EXPECT_EQ(b.priority, a.priority) << i;
    EXPECT_EQ(b.force_degraded, a.force_degraded) << i;
    EXPECT_EQ(b.segment, a.segment) << i;
    EXPECT_EQ(b.payload_crc, a.payload_crc) << i;
    EXPECT_EQ(b.degraded, a.degraded) << i;
    EXPECT_EQ(b.rank_short, a.rank_short) << i;
    EXPECT_EQ(b.rung, a.rung) << i;
    EXPECT_EQ(b.state, a.state) << i;
    EXPECT_EQ(b.shed_reason, a.shed_reason) << i;
  }
}

TEST(Journal, EmptyJournalParsesToZeroRecords) {
  Journal journal(42);
  const auto image = Journal::parse(journal.bytes());
  ASSERT_TRUE(image.has_value());
  EXPECT_EQ(image->fingerprint, 42u);
  EXPECT_TRUE(image->records.empty());
  EXPECT_EQ(image->dropped_bytes, 0u);
}

TEST(Journal, TornTailIsDroppedNotReplayed) {
  // A crash mid-append leaves a partial last frame on disk. Every intact
  // prefix must parse to exactly the records fully written before it,
  // with the discarded byte count reported.
  Journal journal(9);
  const auto records = sample_records();
  for (const JournalRecord& r : records) journal.append(r);
  const std::vector<std::uint8_t>& full = journal.bytes();

  Journal prefix_only(9);
  prefix_only.append(records[0]);
  prefix_only.append(records[1]);
  const std::size_t two_records = prefix_only.bytes().size();

  for (std::size_t cut = two_records + 1;
       cut < full.size() && cut < two_records + 20; ++cut) {
    const auto image =
        Journal::parse(std::span<const std::uint8_t>(full.data(), cut));
    ASSERT_TRUE(image.has_value()) << "cut=" << cut;
    // The torn third record must never appear; the first two must.
    ASSERT_GE(image->records.size(), 2u) << "cut=" << cut;
    EXPECT_EQ(image->records.size(),
              image->dropped_bytes == 0 ? 3u : 2u)
        << "cut=" << cut;
    EXPECT_EQ(image->dropped_bytes, cut - two_records) << "cut=" << cut;
  }
}

TEST(Journal, CorruptRecordTruncatesAtTheFlip) {
  Journal journal(9);
  const auto records = sample_records();
  for (const JournalRecord& r : records) journal.append(r);

  Journal one_record(9);
  one_record.append(records[0]);
  const std::size_t first_frame_end = one_record.bytes().size();

  // Flip one byte inside the SECOND record: everything from it on is
  // dropped (its CRC fails), the first record survives.
  std::vector<std::uint8_t> bytes = journal.bytes();
  bytes[first_frame_end + 3] ^= 0x40;
  const auto image = Journal::parse(bytes);
  ASSERT_TRUE(image.has_value());
  EXPECT_EQ(image->records.size(), 1u);
  EXPECT_EQ(image->dropped_bytes, bytes.size() - first_frame_end);
  EXPECT_EQ(image->records[0].session, records[0].session);
}

TEST(Journal, UnknownRecordTypeStopsParsing) {
  // A CRC-valid frame with a type this version does not know (a journal
  // from the future): stop rather than replay what we cannot interpret.
  Journal journal(9);
  journal.append(sample_records()[0]);
  std::vector<std::uint8_t> bytes = journal.bytes();
  // Hand-build a frame of type 200 (CRC correctness does not matter: an
  // unknown type must stop the parse even when its trailer checks out,
  // and a wrong trailer stops it anyway).
  const std::size_t start = bytes.size();
  bytes.push_back(200);
  bytes.push_back(1);
  bytes.push_back(0x55);
  for (int i = 0; i < 4; ++i) bytes.push_back(0);
  const auto image = Journal::parse(bytes);
  ASSERT_TRUE(image.has_value());
  EXPECT_EQ(image->records.size(), 1u);
  EXPECT_EQ(image->dropped_bytes, bytes.size() - start);
}

TEST(Journal, BadHeaderRefusesTheWholeJournal) {
  Journal journal(9);
  journal.append(sample_records()[0]);

  {
    std::vector<std::uint8_t> bytes = journal.bytes();
    bytes[0] = 'Y';  // wrong magic
    EXPECT_FALSE(Journal::parse(bytes).has_value());
  }
  {
    std::vector<std::uint8_t> bytes = journal.bytes();
    bytes[4] = 0xfe;  // wrong version
    EXPECT_FALSE(Journal::parse(bytes).has_value());
  }
  {
    std::vector<std::uint8_t> bytes = journal.bytes();
    bytes[10] ^= 0x01;  // fingerprint flipped: header CRC fails
    EXPECT_FALSE(Journal::parse(bytes).has_value());
  }
  // Shorter than a header at all.
  const std::vector<std::uint8_t> stub(8, 0);
  EXPECT_FALSE(Journal::parse(stub).has_value());
}

}  // namespace
}  // namespace extnc::serve
