#include "gpu/gpu_decoder.h"

#include <gtest/gtest.h>

#include "coding/encoder.h"
#include "coding/progressive_decoder.h"

namespace extnc::gpu {
namespace {

using coding::CodedBlock;
using coding::Encoder;
using coding::Params;
using coding::Segment;

TEST(GpuSingleSegmentDecoder, RoundTripMatchesSegment) {
  Rng rng(1);
  const Params params{.n = 16, .k = 512};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  GpuSingleSegmentDecoder decoder(simgpu::gtx280(), params);
  while (!decoder.is_complete()) {
    decoder.add(encoder.encode(rng));
  }
  EXPECT_EQ(decoder.decoded_segment(), segment);
}

TEST(GpuSingleSegmentDecoder, AgreesWithReferenceDecoderBlockByBlock) {
  Rng rng(2);
  const Params params{.n = 12, .k = 256};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  GpuSingleSegmentDecoder gpu(simgpu::gtx280(), params);
  coding::ProgressiveDecoder reference(params);
  while (!reference.is_complete()) {
    const CodedBlock block = encoder.encode(rng);
    const auto gr = gpu.add(block);
    const auto rr = reference.add(block);
    ASSERT_EQ(gr == GpuSingleSegmentDecoder::Result::kAccepted,
              rr == coding::ProgressiveDecoder::Result::kAccepted);
    ASSERT_EQ(gpu.rank(), reference.rank());
  }
  EXPECT_EQ(gpu.decoded_segment(), reference.decoded_segment());
}

TEST(GpuSingleSegmentDecoder, DetectsDependentBlocks) {
  Rng rng(3);
  const Params params{.n = 8, .k = 128};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  GpuSingleSegmentDecoder decoder(simgpu::gtx280(), params);
  const CodedBlock block = encoder.encode(rng);
  EXPECT_EQ(decoder.add(block), GpuSingleSegmentDecoder::Result::kAccepted);
  EXPECT_EQ(decoder.add(block),
            GpuSingleSegmentDecoder::Result::kLinearlyDependent);
  EXPECT_EQ(decoder.rank(), 1u);
}

TEST(GpuSingleSegmentDecoder, RejectsAfterComplete) {
  Rng rng(4);
  const Params params{.n = 4, .k = 64};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  GpuSingleSegmentDecoder decoder(simgpu::gtx280(), params);
  while (!decoder.is_complete()) decoder.add(encoder.encode(rng));
  EXPECT_EQ(decoder.add(encoder.encode(rng)),
            GpuSingleSegmentDecoder::Result::kAlreadyComplete);
}

TEST(GpuSingleSegmentDecoder, AtomicMinOptionDecodesIdentically) {
  Rng rng(5);
  const Params params{.n = 12, .k = 256};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  GpuSingleSegmentDecoder base(simgpu::gtx280(), params, {});
  GpuSingleSegmentDecoder atomic(simgpu::gtx280(), params,
                                 {.use_atomic_min = true});
  while (!base.is_complete()) {
    const CodedBlock block = encoder.encode(rng);
    base.add(block);
    atomic.add(block);
  }
  ASSERT_TRUE(atomic.is_complete());
  EXPECT_EQ(base.decoded_segment(), atomic.decoded_segment());
  EXPECT_GT(atomic.metrics().atomic_ops, 0u);
  EXPECT_EQ(base.metrics().atomic_ops, 0u);
}

TEST(GpuSingleSegmentDecoder, CoefficientCachingDecodesIdentically) {
  Rng rng(6);
  const Params params{.n = 16, .k = 512};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  GpuSingleSegmentDecoder base(simgpu::gtx280(), params, {});
  GpuSingleSegmentDecoder cached(simgpu::gtx280(), params,
                                 {.cache_coefficients = true});
  while (!base.is_complete()) {
    const CodedBlock block = encoder.encode(rng);
    base.add(block);
    cached.add(block);
  }
  EXPECT_EQ(base.decoded_segment(), cached.decoded_segment());
  // Caching moves coefficient reads from global to shared memory.
  EXPECT_GT(cached.metrics().shared_accesses, base.metrics().shared_accesses);
}

TEST(GpuSingleSegmentDecoderDeathTest, AtomicMinRequiresSupport) {
  EXPECT_DEATH(GpuSingleSegmentDecoder(simgpu::geforce_8800gt(),
                                       Params{.n = 8, .k = 64},
                                       {.use_atomic_min = true}),
               "EXTNC_CHECK");
}

TEST(GpuSingleSegmentDecoderDeathTest, CoefficientCacheNeedsRoom) {
  // n = 256: 64 KB of coefficients cannot fit the 16 KB shared memory.
  EXPECT_DEATH(GpuSingleSegmentDecoder(simgpu::gtx280(),
                                       Params{.n = 256, .k = 64},
                                       {.cache_coefficients = true}),
               "EXTNC_CHECK");
}

class GpuDecoderSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(GpuDecoderSweep, RoundTrip) {
  const auto [n, k] = GetParam();
  Rng rng(700 + n + k);
  const Params params{.n = n, .k = k};
  const Segment segment = Segment::random(params, rng);
  const Encoder encoder(segment);
  GpuSingleSegmentDecoder decoder(simgpu::gtx280(), params);
  while (!decoder.is_complete()) decoder.add(encoder.encode(rng));
  EXPECT_EQ(decoder.decoded_segment(), segment);
}

INSTANTIATE_TEST_SUITE_P(
    ParamSweep, GpuDecoderSweep,
    ::testing::Combine(::testing::Values(4u, 8u, 32u),
                       ::testing::Values(4u, 64u, 260u)));

}  // namespace
}  // namespace extnc::gpu
