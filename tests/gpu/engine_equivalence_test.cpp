// Engine and fast-path equivalence across every shipped kernel: the
// interpreted serial engine is the oracle, and both the warp-batched fast
// path and the parallel engine must reproduce its observable state
// bit-for-bit — output bytes, KernelMetrics (deci-op ALU counts included),
// modeled clocks, and serialized Chrome traces — in healthy runs and under
// injected faults. Internal launches all use kAuto, so the engines are
// pinned process-wide via set_default_engine, and the fast path via
// set_fast_path_enabled.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "coding/block_decoder.h"
#include "coding/encoder.h"
#include "gpu/gpu_decoder.h"
#include "gpu/gpu_encoder.h"
#include "gpu/gpu_multiseg_decoder.h"
#include "gpu/gpu_recoder.h"
#include "gpu/hybrid_encoder.h"
#include "simgpu/exec_engine.h"
#include "simgpu/fault_injector.h"
#include "simgpu/profiler.h"
#include "simgpu/trace_export.h"
#include "util/metrics_registry.h"

namespace extnc::gpu {
namespace {

using coding::CodedBatch;
using coding::Params;
using coding::Segment;
using simgpu::ExecEngine;
using simgpu::KernelMetrics;

// Pin the process default engine for one scope; restores on exit.
class ScopedEngine {
 public:
  explicit ScopedEngine(ExecEngine engine)
      : saved_(simgpu::default_engine()) {
    simgpu::set_default_engine(engine);
  }
  ~ScopedEngine() { simgpu::set_default_engine(saved_); }

 private:
  ExecEngine saved_;
};

// Pin the process-wide fast-path toggle for one scope; restores on exit.
class ScopedFastPath {
 public:
  explicit ScopedFastPath(bool enabled)
      : saved_(simgpu::fast_path_enabled()) {
    simgpu::set_fast_path_enabled(enabled);
  }
  ~ScopedFastPath() { simgpu::set_fast_path_enabled(saved_); }

 private:
  bool saved_;
};

void expect_metrics_identical(const KernelMetrics& serial,
                              const KernelMetrics& parallel,
                              const std::string& what) {
  EXPECT_EQ(serial.alu_deciops, parallel.alu_deciops) << what;  // bitwise
  EXPECT_EQ(serial.global_load_bytes, parallel.global_load_bytes) << what;
  EXPECT_EQ(serial.global_store_bytes, parallel.global_store_bytes) << what;
  EXPECT_EQ(serial.global_transactions, parallel.global_transactions) << what;
  EXPECT_EQ(serial.shared_accesses, parallel.shared_accesses) << what;
  EXPECT_EQ(serial.shared_access_events, parallel.shared_access_events)
      << what;
  EXPECT_EQ(serial.shared_serialized_cycles,
            parallel.shared_serialized_cycles)
      << what;
  EXPECT_EQ(serial.texture_fetches, parallel.texture_fetches) << what;
  EXPECT_EQ(serial.texture_misses, parallel.texture_misses) << what;
  EXPECT_EQ(serial.atomic_ops, parallel.atomic_ops) << what;
  EXPECT_EQ(serial.barriers, parallel.barriers) << what;
  EXPECT_EQ(serial.kernel_launches, parallel.kernel_launches) << what;
  EXPECT_EQ(serial.blocks, parallel.blocks) << what;
  EXPECT_EQ(serial.threads_per_block, parallel.threads_per_block) << what;
}

void expect_batches_identical(const CodedBatch& serial,
                              const CodedBatch& parallel,
                              const std::string& what) {
  ASSERT_EQ(serial.count(), parallel.count()) << what;
  for (std::size_t j = 0; j < serial.count(); ++j) {
    ASSERT_TRUE(std::equal(serial.coefficients(j).begin(),
                           serial.coefficients(j).end(),
                           parallel.coefficients(j).begin()))
        << what << " coefficients " << j;
    ASSERT_TRUE(std::equal(serial.payload(j).begin(),
                           serial.payload(j).end(),
                           parallel.payload(j).begin()))
        << what << " payload " << j;
  }
}

CodedBatch independent_batch(const Segment& segment, Rng& rng) {
  const Params& params = segment.params();
  const coding::Encoder encoder(segment);
  coding::BlockDecoder probe(params);
  CodedBatch batch(params, params.n);
  std::size_t stored = 0;
  while (stored < params.n) {
    coding::CodedBlock block = encoder.encode(rng);
    if (!probe.add(block)) continue;
    std::copy(block.coefficients().begin(), block.coefficients().end(),
              batch.coefficients(stored).begin());
    std::copy(block.payload().begin(), block.payload().end(),
              batch.payload(stored).begin());
    ++stored;
  }
  return batch;
}

// One observable run of an operation under a pinned engine: everything a
// caller could compare afterwards.
struct RunResult {
  std::vector<CodedBatch> batches;
  std::vector<Segment> segments;
  KernelMetrics metrics;
  KernelMetrics metrics2;  // second metrics stream (multiseg stage2)
  std::string trace;
  std::string note;  // free-form observable state (e.g. fault counters)
  double elapsed_s = 0;
};

void expect_runs_identical(const RunResult& serial, const RunResult& parallel,
                           const std::string& what) {
  ASSERT_EQ(serial.batches.size(), parallel.batches.size()) << what;
  for (std::size_t i = 0; i < serial.batches.size(); ++i) {
    expect_batches_identical(serial.batches[i], parallel.batches[i],
                             what + " batch " + std::to_string(i));
  }
  ASSERT_EQ(serial.segments.size(), parallel.segments.size()) << what;
  for (std::size_t i = 0; i < serial.segments.size(); ++i) {
    EXPECT_EQ(serial.segments[i], parallel.segments[i])
        << what << " segment " << i;
  }
  expect_metrics_identical(serial.metrics, parallel.metrics, what);
  expect_metrics_identical(serial.metrics2, parallel.metrics2,
                           what + " (stage2)");
  EXPECT_EQ(serial.trace, parallel.trace) << what;
  EXPECT_EQ(serial.note, parallel.note) << what;
  EXPECT_EQ(serial.elapsed_s, parallel.elapsed_s) << what;
}

// Run `op` once per execution config with identical inputs and compare:
// the fully interpreted serial run is the oracle, the fast-path serial run
// must match it bit-for-bit, and the fast-path parallel run must match in
// turn.
void compare_engines(const std::function<RunResult(ExecEngine)>& op,
                     const std::string& what) {
  RunResult interpreted, fast_serial, fast_parallel;
  {
    ScopedFastPath slow(false);
    ScopedEngine pin(ExecEngine::kSerial);
    interpreted = op(ExecEngine::kSerial);
  }
  {
    ScopedFastPath fast(true);
    ScopedEngine pin(ExecEngine::kSerial);
    fast_serial = op(ExecEngine::kSerial);
  }
  {
    ScopedFastPath fast(true);
    ScopedEngine pin(ExecEngine::kParallel);
    fast_parallel = op(ExecEngine::kParallel);
  }
  expect_runs_identical(interpreted, fast_serial,
                        what + " [interpreted vs fast-serial]");
  expect_runs_identical(fast_serial, fast_parallel,
                        what + " [fast-serial vs fast-parallel]");
}

TEST(EngineEquivalence, EncoderAllSchemes) {
  constexpr EncodeScheme kAllSchemes[] = {
      EncodeScheme::kLoopBased, EncodeScheme::kTable0, EncodeScheme::kTable1,
      EncodeScheme::kTable2,    EncodeScheme::kTable3, EncodeScheme::kTable4,
      EncodeScheme::kTable5,
  };
  Rng seed_rng(11);
  const Params params{.n = 24, .k = 256};
  const Segment segment = Segment::random(params, seed_rng);
  for (EncodeScheme scheme : kAllSchemes) {
    compare_engines(
        [&](ExecEngine) {
          Rng rng(101);  // same coefficient draws under both engines
          simgpu::Profiler profiler;
          GpuEncoder encoder(simgpu::gtx280(), segment, scheme);
          encoder.attach_profiler(&profiler, "equiv");
          RunResult result;
          result.batches.push_back(encoder.encode_batch(40, rng));
          result.metrics = encoder.encode_metrics();
          result.metrics2 = encoder.preprocess_metrics();
          result.trace = simgpu::to_chrome_trace(profiler);
          result.elapsed_s = encoder.launcher().elapsed_seconds();
          return result;
        },
        std::string("encoder/") + scheme_name(scheme));
  }
}

TEST(EngineEquivalence, SingleSegmentDecoderAllOptionVariants) {
  Rng seed_rng(12);
  const Params params{.n = 16, .k = 128};
  const Segment segment = Segment::random(params, seed_rng);
  const CodedBatch batch = independent_batch(segment, seed_rng);
  const DecodeOptions variants[] = {
      {},
      {.use_atomic_min = true},
      {.cache_coefficients = true},
      {.use_atomic_min = true, .cache_coefficients = true},
  };
  for (const DecodeOptions& options : variants) {
    compare_engines(
        [&](ExecEngine) {
          simgpu::Profiler profiler;
          GpuSingleSegmentDecoder decoder(simgpu::gtx280(), params, options);
          decoder.attach_profiler(&profiler);
          for (std::size_t j = 0; j < batch.count(); ++j) {
            decoder.add(batch.coefficients(j), batch.payload(j));
          }
          RunResult result;
          EXPECT_TRUE(decoder.is_complete());
          result.segments.push_back(decoder.decoded_segment());
          result.metrics = decoder.metrics();
          result.trace = simgpu::to_chrome_trace(profiler);
          return result;
        },
        std::string("decoder/atomic=") +
            (options.use_atomic_min ? "1" : "0") + "/cache=" +
            (options.cache_coefficients ? "1" : "0"));
  }
}

TEST(EngineEquivalence, MultiSegmentDecoder) {
  Rng seed_rng(13);
  const Params params{.n = 12, .k = 128};
  std::vector<Segment> segments;
  std::vector<CodedBatch> batches;
  for (int s = 0; s < 4; ++s) {
    segments.push_back(Segment::random(params, seed_rng));
    batches.push_back(independent_batch(segments.back(), seed_rng));
  }
  compare_engines(
      [&](ExecEngine) {
        simgpu::Profiler profiler;
        GpuMultiSegmentDecoder decoder(simgpu::gtx280(), params);
        decoder.attach_profiler(&profiler);
        RunResult result;
        result.segments = decoder.decode_all(batches);
        result.metrics = decoder.stage1_metrics();
        result.metrics2 = decoder.stage2_metrics();
        result.trace = simgpu::to_chrome_trace(profiler);
        result.elapsed_s = decoder.launcher().elapsed_seconds();
        return result;
      },
      "multiseg");
  // And the decode is actually correct, not just self-consistent.
  ScopedEngine pin(ExecEngine::kParallel);
  GpuMultiSegmentDecoder decoder(simgpu::gtx280(), params);
  const auto decoded = decoder.decode_all(batches);
  for (std::size_t s = 0; s < segments.size(); ++s) {
    EXPECT_EQ(decoded[s], segments[s]) << s;
  }
}

TEST(EngineEquivalence, Recoder) {
  Rng seed_rng(14);
  const Params params{.n = 16, .k = 128};
  const Segment segment = Segment::random(params, seed_rng);
  const CodedBatch received = independent_batch(segment, seed_rng);
  compare_engines(
      [&](ExecEngine) {
        Rng rng(202);
        simgpu::Profiler profiler;
        RunResult result;
        result.batches.push_back(gpu_recode(simgpu::gtx280(), received, 24,
                                            rng, EncodeScheme::kTable5,
                                            &profiler));
        result.trace = simgpu::to_chrome_trace(profiler);
        return result;
      },
      "recoder");
}

// Unaligned geometries: words-per-block is not a half-warp multiple and
// the batch leaves a ragged tail block, so the straddle lowerings (rather
// than the aligned profile path) carry the fast-path accounting for every
// scheme.
TEST(EngineEquivalence, EncoderUnalignedGeometries) {
  constexpr EncodeScheme kAllSchemes[] = {
      EncodeScheme::kLoopBased, EncodeScheme::kTable0, EncodeScheme::kTable1,
      EncodeScheme::kTable2,    EncodeScheme::kTable3, EncodeScheme::kTable4,
      EncodeScheme::kTable5,
  };
  Rng seed_rng(19);
  const Params params{.n = 12, .k = 200};  // 50 words/block straddles halves
  const Segment segment = Segment::random(params, seed_rng);
  for (EncodeScheme scheme : kAllSchemes) {
    compare_engines(
        [&](ExecEngine) {
          Rng rng(606);
          GpuEncoder encoder(simgpu::gtx280(), segment, scheme);
          RunResult result;
          result.batches.push_back(encoder.encode_batch(7, rng));
          result.metrics = encoder.encode_metrics();
          result.metrics2 = encoder.preprocess_metrics();
          result.elapsed_s = encoder.launcher().elapsed_seconds();
          return result;
        },
        std::string("unaligned-encoder/") + scheme_name(scheme));
  }
}

TEST(EngineEquivalence, HybridEncoder) {
  Rng seed_rng(15);
  const Params params{.n = 32, .k = 256};
  const Segment segment = Segment::random(params, seed_rng);
  compare_engines(
      [&](ExecEngine) {
        Rng rng(303);
        ThreadPool pool(2);
        simgpu::Profiler profiler;
        HybridEncoder hybrid(simgpu::gtx280(), segment, pool,
                             EncodeScheme::kTable5, 0.5);
        hybrid.attach_profiler(&profiler);
        RunResult result;
        result.batches.push_back(hybrid.encode_batch(32, rng));
        result.trace = simgpu::to_chrome_trace(profiler);
        return result;
      },
      "hybrid");
}

// Faults are keyed to the launch index, never to blocks or host threads, so
// an injected run must also be engine-invariant: same faulted launches,
// same damaged bytes, same counters, same stalled clocks.
TEST(EngineEquivalence, EncoderUnderFaultPlan) {
  Rng seed_rng(16);
  const Params params{.n = 24, .k = 256};
  const Segment segment = Segment::random(params, seed_rng);
  for (const char* spec : {"flip@2,flip@5", "hang@3", "hang@1,flip@4"}) {
    compare_engines(
        [&](ExecEngine) {
          Rng rng(404);
          const auto plan = simgpu::FaultPlan::parse(spec, 99);
          EXPECT_TRUE(plan.has_value());
          simgpu::FaultInjector injector(*plan);
          GpuEncoder encoder(simgpu::gtx280(), segment,
                             EncodeScheme::kTable5, nullptr, "encode",
                             &injector);
          RunResult result;
          // Several batches so the scripted fault indices actually fire;
          // damaged payload bytes must match across engines.
          for (int round = 0; round < 4; ++round) {
            result.batches.push_back(encoder.encode_batch(24, rng));
          }
          result.metrics = encoder.encode_metrics();
          result.elapsed_s = encoder.launcher().elapsed_seconds();
          result.note = "launches=" +
                        std::to_string(injector.counters().launches) +
                        " faults=" +
                        std::to_string(injector.counters().faults());
          EXPECT_GT(injector.counters().faults(), 0u);
          return result;
        },
        std::string("faulted-encoder/") + spec);
  }
}

// The equivalence tests above would pass vacuously if the bulk lowerings
// never engaged (fast-path blocks that fail their gates fall back to the
// interpreted lambda body). Pin the fast path on and check the engagement
// counter actually moves for the encoder schemes and the multi-segment
// inverter.
TEST(EngineEquivalence, FastPathLoweringsEngage) {
  ScopedFastPath fast(true);
  ScopedEngine pin(ExecEngine::kSerial);
  Rng seed_rng(18);
  const Params params{.n = 16, .k = 256};
  const Segment segment = Segment::random(params, seed_rng);

  metrics::Registry::instance().reset();
  {
    Rng rng(505);
    GpuEncoder encoder(simgpu::gtx280(), segment, EncodeScheme::kTable5);
    encoder.encode_batch(8, rng);
  }
  const double encoder_lowered =
      metrics::Registry::instance().value("simgpu.fast.lowered_blocks");
  EXPECT_GT(encoder_lowered, 0.0);

  {
    std::vector<CodedBatch> batches;
    batches.push_back(independent_batch(segment, seed_rng));
    GpuMultiSegmentDecoder decoder(simgpu::gtx280(), params);
    decoder.decode_all(batches);
  }
  EXPECT_GT(metrics::Registry::instance().value("simgpu.fast.lowered_blocks"),
            encoder_lowered);

  // The recoder's aggregate pseudo-segment (n + k bytes per row) is not a
  // half-warp multiple here, so it must land on the straddle lowering
  // specifically, not fall back to interpreted stepping.
  metrics::Registry::instance().reset();
  {
    Rng rng(507);
    const CodedBatch received = independent_batch(segment, seed_rng);
    gpu_recode(simgpu::gtx280(), received, 8, rng, EncodeScheme::kTable5);
  }
  EXPECT_GT(
      metrics::Registry::instance().value("simgpu.fast.straddle_blocks"),
      0.0);

  // And with the toggle off, the same work stays interpreted.
  metrics::Registry::instance().reset();
  {
    ScopedFastPath slow(false);
    Rng rng(505);
    GpuEncoder encoder(simgpu::gtx280(), segment, EncodeScheme::kTable5);
    encoder.encode_batch(8, rng);
  }
  EXPECT_EQ(metrics::Registry::instance().value("simgpu.fast.lowered_blocks"),
            0.0);
}

TEST(EngineEquivalence, MultiSegmentDecoderUnderFaultPlan) {
  Rng seed_rng(17);
  const Params params{.n = 8, .k = 64};
  std::vector<CodedBatch> batches;
  for (int s = 0; s < 3; ++s) {
    batches.push_back(
        independent_batch(Segment::random(params, seed_rng), seed_rng));
  }
  compare_engines(
      [&](ExecEngine) {
        const auto plan = simgpu::FaultPlan::parse("hang@2", 7);
        EXPECT_TRUE(plan.has_value());
        simgpu::FaultInjector injector(*plan);
        GpuMultiSegmentDecoder decoder(simgpu::gtx280(), params);
        decoder.launcher().set_fault_injector(&injector);
        RunResult result;
        result.segments = decoder.decode_all(batches);
        result.metrics = decoder.stage1_metrics();
        result.metrics2 = decoder.stage2_metrics();
        result.elapsed_s = decoder.launcher().elapsed_seconds();
        result.note = "launches=" +
                      std::to_string(injector.counters().launches) +
                      " hangs=" + std::to_string(injector.counters().hangs);
        return result;
      },
      "faulted-multiseg");
}

}  // namespace
}  // namespace extnc::gpu
