// Pins the modeled bandwidths to the paper's published numbers. If a
// calibration constant or kernel template drifts, these fail. Tolerances
// are ~10% except where the paper states an exact headline figure.
#include "gpu/gpu_model.h"

#include <gtest/gtest.h>

#include "coding/block_decoder.h"
#include "coding/encoder.h"
#include "cpu/xeon_model.h"
#include "gpu/gpu_multiseg_decoder.h"

namespace extnc::gpu {
namespace {

using coding::Params;

const simgpu::DeviceSpec& gtx() { return simgpu::gtx280(); }

double encode_mbps(EncodeScheme scheme, std::size_t n, std::size_t k = 4096) {
  return model_encode_bandwidth(gtx(), scheme, {.n = n, .k = k}).mb_per_s;
}

// --- Fig. 7: the optimization ladder at n = 128 ---------------------------

TEST(GpuModelFig7, LoopBasedNear133) {
  EXPECT_NEAR(encode_mbps(EncodeScheme::kLoopBased, 128), 133.0, 8.0);
}

TEST(GpuModelFig7, Table0Near106) {
  EXPECT_NEAR(encode_mbps(EncodeScheme::kTable0, 128), 106.0, 8.0);
}

TEST(GpuModelFig7, Table1Near172) {
  EXPECT_NEAR(encode_mbps(EncodeScheme::kTable1, 128), 172.0, 10.0);
}

TEST(GpuModelFig7, Table2Near193) {
  EXPECT_NEAR(encode_mbps(EncodeScheme::kTable2, 128), 193.0, 11.0);
}

TEST(GpuModelFig7, Table3Near208) {
  EXPECT_NEAR(encode_mbps(EncodeScheme::kTable3, 128), 208.0, 12.0);
}

TEST(GpuModelFig7, Table4Near239) {
  EXPECT_NEAR(encode_mbps(EncodeScheme::kTable4, 128), 239.0, 14.0);
}

TEST(GpuModelFig7, Table5Near294) {
  EXPECT_NEAR(encode_mbps(EncodeScheme::kTable5, 128), 294.0, 18.0);
}

TEST(GpuModelFig7, LadderIsMonotone) {
  // Table-0 regresses from loop-based; every later variant improves.
  const double lb = encode_mbps(EncodeScheme::kLoopBased, 128);
  EXPECT_LT(encode_mbps(EncodeScheme::kTable0, 128), lb);
  double prev = lb;
  for (EncodeScheme s : {EncodeScheme::kTable1, EncodeScheme::kTable2,
                         EncodeScheme::kTable3, EncodeScheme::kTable4,
                         EncodeScheme::kTable5}) {
    const double rate = encode_mbps(s, 128);
    EXPECT_GT(rate, prev) << scheme_name(s);
    prev = rate;
  }
}

TEST(GpuModelFig7, TableBasedBeatsLoopBasedByFactor2ish) {
  // Headline claim: "improve network encoding by a factor of 2.2".
  const double ratio = encode_mbps(EncodeScheme::kTable5, 128) /
                       encode_mbps(EncodeScheme::kLoopBased, 128);
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 2.4);
}

// --- Fig. 8: best encode across n ------------------------------------------

TEST(GpuModelFig8, BestEncodeAcrossN) {
  EXPECT_NEAR(encode_mbps(EncodeScheme::kTable5, 128), 298.5, 20.0);
  EXPECT_NEAR(encode_mbps(EncodeScheme::kTable5, 256), 146.9, 12.0);
  EXPECT_NEAR(encode_mbps(EncodeScheme::kTable5, 512), 73.5, 6.0);
  EXPECT_NEAR(encode_mbps(EncodeScheme::kTable5, 1024), 36.6, 3.0);
}

// --- Fig. 4(a): loop-based encode, GTX 280 vs 8800 GT ----------------------

TEST(GpuModelFig4a, EncodeScalesInverselyWithN) {
  EXPECT_NEAR(encode_mbps(EncodeScheme::kLoopBased, 256), 66.0, 5.0);
  EXPECT_NEAR(encode_mbps(EncodeScheme::kLoopBased, 512), 33.6, 3.0);
}

TEST(GpuModelFig4a, EncodeIsFlatAcrossBlockSizes) {
  const double small = encode_mbps(EncodeScheme::kLoopBased, 128, 256);
  const double large = encode_mbps(EncodeScheme::kLoopBased, 128, 32768);
  EXPECT_NEAR(small / large, 1.0, 0.05);
}

TEST(GpuModelFig4a, Gtx280DoublesThe8800Gt) {
  // "encoding in GTX 280 achieves a rate almost twice of 8800 GT, a linear
  // speedup, across all coding settings."
  for (std::size_t n : {128u, 256u, 512u}) {
    const double gtx_rate = encode_mbps(EncodeScheme::kLoopBased, n);
    const double gt_rate =
        model_encode_bandwidth(simgpu::geforce_8800gt(),
                               EncodeScheme::kLoopBased, {.n = n, .k = 4096})
            .mb_per_s;
    EXPECT_NEAR(gtx_rate / gt_rate, 2.08, 0.15) << n;
  }
}

// --- Fig. 4(b): single-segment decoding -------------------------------------

TEST(GpuModelFig4b, GpuDecodeBeatsMacProAt8KbAndAbove) {
  const cpu::XeonModel xeon;
  for (std::size_t k : {8192u, 16384u, 32768u}) {
    const Params p{.n = 128, .k = k};
    EXPECT_GT(model_single_segment_decode(gtx(), p).mb_per_s,
              xeon.decode_single_segment_mb_per_s(p))
        << k;
  }
}

TEST(GpuModelFig4b, MacProBeatsGpuBelow8Kb) {
  const cpu::XeonModel xeon;
  for (std::size_t k : {128u, 512u, 1024u, 2048u, 4096u}) {
    const Params p{.n = 128, .k = k};
    EXPECT_LT(model_single_segment_decode(gtx(), p).mb_per_s,
              xeon.decode_single_segment_mb_per_s(p))
        << k;
  }
}

TEST(GpuModelFig4b, DecodeGrowsWithBlockSize) {
  double prev = 0;
  for (std::size_t k = 128; k <= 32768; k *= 2) {
    const double rate =
        model_single_segment_decode(gtx(), {.n = 128, .k = k}).mb_per_s;
    EXPECT_GT(rate, prev);
    prev = rate;
  }
  EXPECT_NEAR(prev, 100.0, 20.0);  // ~114 MB/s label at (128, 32 KB)
}

TEST(GpuModelFig4b, SmallBlockDecodeIsLaunchAndSyncBound) {
  // The 8800 GT achieves virtually the same decode rate as the GTX 280 up
  // to 1 KB blocks (Sec. 4.3) because both are bound by the same serial
  // per-block-arrival costs.
  for (std::size_t k : {128u, 512u, 1024u}) {
    const Params p{.n = 128, .k = k};
    const double gtx_rate = model_single_segment_decode(gtx(), p).mb_per_s;
    const double gt_rate =
        model_single_segment_decode(simgpu::geforce_8800gt(), p).mb_per_s;
    EXPECT_NEAR(gtx_rate / gt_rate, 1.0, 0.45) << k;
  }
}

// --- Fig. 9: multi-segment decoding -----------------------------------------

TEST(GpuModelFig9, SixSegmentPeakNear254) {
  const auto est = model_multi_segment_decode(gtx(), {.n = 128, .k = 32768}, 6);
  EXPECT_NEAR(est.mb_per_s, 254.0, 25.0);
}

TEST(GpuModelFig9, MultiSegmentGainOverSingleSegmentInPaperRange) {
  // "The advantage over single-segment GPU-based decoding is between a
  // factor of 2.7 and 27.6."
  for (std::size_t k = 128; k <= 32768; k *= 2) {
    const Params p{.n = 128, .k = k};
    const double multi = model_multi_segment_decode(gtx(), p, 3).mb_per_s;
    const double single = model_single_segment_decode(gtx(), p).mb_per_s;
    const double gain = multi / single;
    EXPECT_GT(gain, 2.4) << k;
    EXPECT_LT(gain, 29.0) << k;
  }
}

TEST(GpuModelFig9, SixSegmentsBeatThreeSegmentsMostAtSmallBlocks) {
  // "clearly defeats the decoding performance of 3 segments, by up to a
  // factor of 1.4" — gains shrink as k grows.
  const Params small{.n = 128, .k = 1024};
  const Params large{.n = 128, .k = 32768};
  const double gain_small =
      model_multi_segment_decode(gtx(), small, 6).mb_per_s /
      model_multi_segment_decode(gtx(), small, 3).mb_per_s;
  const double gain_large =
      model_multi_segment_decode(gtx(), large, 6).mb_per_s /
      model_multi_segment_decode(gtx(), large, 3).mb_per_s;
  EXPECT_GT(gain_small, 1.25);
  EXPECT_LT(gain_small, 2.0);
  EXPECT_LT(gain_large, gain_small);
  EXPECT_GT(gain_large, 1.0);
}

TEST(GpuModelFig9, Stage1ShareFallsWithBlockSize) {
  double prev_share = 1.0;
  for (std::size_t k = 128; k <= 32768; k *= 2) {
    const auto est = model_multi_segment_decode(gtx(), {.n = 128, .k = k}, 3);
    EXPECT_LT(est.stage1_share, prev_share) << k;
    prev_share = est.stage1_share;
  }
  EXPECT_LT(prev_share, 0.25);  // ~6-19% at the largest sizes in the paper
}

TEST(GpuModelFig9, SixSegmentsHaveLowerStage1ShareThanThree) {
  for (std::size_t k : {1024u, 4096u, 16384u}) {
    const Params p{.n = 128, .k = k};
    EXPECT_LT(model_multi_segment_decode(gtx(), p, 6).stage1_share,
              model_multi_segment_decode(gtx(), p, 3).stage1_share)
        << k;
  }
}

TEST(GpuModelFig9, GpuMultiSegBeatsMacProAbove256Bytes) {
  // "GTX 280 outperforms the Mac Pro for all configurations with block
  // sizes more than 256 bytes by a ratio between 1.3 and 5.3."
  const cpu::XeonModel xeon;
  for (std::size_t k : {1024u, 4096u, 16384u, 32768u}) {
    const Params p{.n = 128, .k = k};
    const double gpu_rate = model_multi_segment_decode(gtx(), p, 6).mb_per_s;
    const double cpu_rate = xeon.decode_multi_segment_mb_per_s(p);
    const double ratio = gpu_rate / cpu_rate;
    EXPECT_GT(ratio, 1.2) << k;
    EXPECT_LT(ratio, 9.0) << k;
  }
}

// --- Sec. 5.4.1: GPU vs CPU encode ratio ------------------------------------

TEST(GpuModel, EncodeAdvantageOverMacProAtLeast4x) {
  // "the GTX 280 encoding rate is around 4.3 times of a CPU-based solution
  // on our 8-core Mac Pro server."
  const cpu::XeonModel xeon;
  const Params p{.n = 128, .k = 4096};
  const double ratio =
      encode_mbps(EncodeScheme::kTable5, 128) /
      xeon.encode_mb_per_s(p, cpu::EncodePartitioning::kFullBlock);
  EXPECT_GT(ratio, 4.0);
  EXPECT_LT(ratio, 4.8);
}

// --- analytic/functional cross-checks ---------------------------------------

TEST(GpuModelCrossCheck, AnalyticInversionMatchesFunctionalAluWork) {
  // Run a real multi-segment decode at a small size and compare measured
  // stage-1 ALU work with the analytic builder (within 30%: the analytic
  // form ignores pivot swaps and boundary effects).
  Rng rng(10);
  const Params params{.n = 16, .k = 128};
  coding::Segment segment = coding::Segment::random(params, rng);
  coding::Encoder encoder(segment);
  coding::CodedBatch batch(params, params.n);
  coding::BlockDecoder probe(params);
  std::size_t stored = 0;
  while (stored < params.n) {
    coding::CodedBlock block = encoder.encode(rng);
    if (!probe.add(block)) continue;
    std::copy(block.coefficients().begin(), block.coefficients().end(),
              batch.coefficients(stored).begin());
    std::copy(block.payload().begin(), block.payload().end(),
              batch.payload(stored).begin());
    ++stored;
  }
  GpuMultiSegmentDecoder decoder(gtx(), params);
  (void)decoder.decode_all({batch});
  const auto analytic = analytic_inversion_metrics(gtx(), params, 1);
  const double measured = decoder.stage1_metrics().alu_ops();
  EXPECT_NEAR(analytic.alu_ops() / measured, 1.0, 0.3);
}

TEST(GpuModelCrossCheck, AnalyticSingleSegmentMatchesFunctionalAluWork) {
  Rng rng(11);
  const Params params{.n = 16, .k = 256};
  coding::Segment segment = coding::Segment::random(params, rng);
  coding::Encoder encoder(segment);
  GpuSingleSegmentDecoder decoder(gtx(), params);
  while (!decoder.is_complete()) decoder.add(encoder.encode(rng));
  const auto analytic =
      analytic_single_segment_decode_metrics(gtx(), params, {});
  const double measured = decoder.metrics().alu_ops();
  EXPECT_NEAR(analytic.alu_ops() / measured, 1.0, 0.35);
}

}  // namespace
}  // namespace extnc::gpu
