#include "gpu/gpu_encoder.h"

#include <gtest/gtest.h>

#include "coding/encoder.h"
#include "coding/progressive_decoder.h"

namespace extnc::gpu {
namespace {

using coding::CodedBatch;
using coding::Encoder;
using coding::Params;
using coding::Segment;

constexpr EncodeScheme kAllSchemes[] = {
    EncodeScheme::kLoopBased, EncodeScheme::kTable0, EncodeScheme::kTable1,
    EncodeScheme::kTable2,    EncodeScheme::kTable3, EncodeScheme::kTable4,
    EncodeScheme::kTable5,
};

class GpuEncoderSchemes : public ::testing::TestWithParam<EncodeScheme> {};

TEST_P(GpuEncoderSchemes, MatchesReferenceEncoderBitExactly) {
  Rng rng(1);
  const Params params{.n = 24, .k = 256};
  const Segment segment = Segment::random(params, rng);
  GpuEncoder gpu(simgpu::gtx280(), segment, GetParam());
  const Encoder reference(segment);
  const CodedBatch batch = gpu.encode_batch(8, rng);
  std::vector<std::uint8_t> expected(params.k);
  for (std::size_t j = 0; j < batch.count(); ++j) {
    reference.encode_with_coefficients(batch.coefficients(j), expected);
    ASSERT_TRUE(std::equal(expected.begin(), expected.end(),
                           batch.payload(j).begin()))
        << scheme_name(GetParam()) << " block " << j;
  }
}

TEST_P(GpuEncoderSchemes, HandlesZeroSourceBytes) {
  // Zero source bytes hit the log-domain sentinel path.
  Rng rng(2);
  const Params params{.n = 8, .k = 64};
  Segment segment = Segment::random(params, rng);
  std::fill(segment.block(2).begin(), segment.block(2).end(), 0);
  segment.block(0)[5] = 0;
  GpuEncoder gpu(simgpu::gtx280(), segment, GetParam());
  const Encoder reference(segment);
  const CodedBatch batch = gpu.encode_batch(4, rng);
  std::vector<std::uint8_t> expected(params.k);
  for (std::size_t j = 0; j < batch.count(); ++j) {
    reference.encode_with_coefficients(batch.coefficients(j), expected);
    ASSERT_TRUE(std::equal(expected.begin(), expected.end(),
                           batch.payload(j).begin()));
  }
}

TEST_P(GpuEncoderSchemes, OutputDecodes) {
  Rng rng(3);
  const Params params{.n = 16, .k = 128};
  const Segment segment = Segment::random(params, rng);
  GpuEncoder gpu(simgpu::gtx280(), segment, GetParam());
  const CodedBatch batch = gpu.encode_batch(params.n + 3, rng);
  coding::ProgressiveDecoder decoder(params);
  for (std::size_t j = 0; j < batch.count() && !decoder.is_complete(); ++j) {
    decoder.add(batch.coefficients(j), batch.payload(j));
  }
  ASSERT_TRUE(decoder.is_complete());
  EXPECT_EQ(decoder.decoded_segment(), segment);
}

TEST_P(GpuEncoderSchemes, WorksOn8800Gt) {
  Rng rng(4);
  const Params params{.n = 8, .k = 64};
  const Segment segment = Segment::random(params, rng);
  GpuEncoder gpu(simgpu::geforce_8800gt(), segment, GetParam());
  const Encoder reference(segment);
  const CodedBatch batch = gpu.encode_batch(3, rng);
  std::vector<std::uint8_t> expected(params.k);
  for (std::size_t j = 0; j < batch.count(); ++j) {
    reference.encode_with_coefficients(batch.coefficients(j), expected);
    ASSERT_TRUE(std::equal(expected.begin(), expected.end(),
                           batch.payload(j).begin()));
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, GpuEncoderSchemes,
                         ::testing::ValuesIn(kAllSchemes),
                         [](const auto& info) {
                           std::string name = scheme_name(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(GpuEncoder, SharedTableSchemesHaveBankConflicts) {
  // Sec. 5.1.3: "around 3 conflicts happen within each 16 parallel
  // requests" for the single byte-wide exp table.
  Rng rng(5);
  const Params params{.n = 32, .k = 512};
  const Segment segment = Segment::random(params, rng);
  GpuEncoder tb1(simgpu::gtx280(), segment, EncodeScheme::kTable1);
  (void)tb1.encode_batch(16, rng);
  const double degree = tb1.encode_metrics().shared_conflict_degree();
  EXPECT_GT(degree, 1.8);
  EXPECT_LT(degree, 3.2);
}

TEST(GpuEncoder, ReplicatedTablesReduceConflicts) {
  // The TB-5 interleaved word tables must measurably cut the conflict
  // degree versus the single byte table (the paper's Table-based-4 ->
  // Table-based-5 step).
  Rng rng(6);
  const Params params{.n = 32, .k = 512};
  const Segment segment = Segment::random(params, rng);
  GpuEncoder tb3(simgpu::gtx280(), segment, EncodeScheme::kTable3);
  GpuEncoder tb5(simgpu::gtx280(), segment, EncodeScheme::kTable5);
  (void)tb3.encode_batch(16, rng);
  (void)tb5.encode_batch(16, rng);
  EXPECT_LT(tb5.encode_metrics().shared_conflict_degree(),
            tb3.encode_metrics().shared_conflict_degree() - 0.3);
}

TEST(GpuEncoder, TextureSchemeHitsCacheAfterWarmup) {
  Rng rng(7);
  const Params params{.n = 32, .k = 512};
  const Segment segment = Segment::random(params, rng);
  GpuEncoder tb4(simgpu::gtx280(), segment, EncodeScheme::kTable4);
  (void)tb4.encode_batch(16, rng);
  EXPECT_GT(tb4.encode_metrics().texture_hit_rate(), 0.99);
  EXPECT_GT(tb4.encode_metrics().texture_fetches, 0u);
}

TEST(GpuEncoder, LoopBasedUsesNoSharedMemory) {
  Rng rng(8);
  const Params params{.n = 16, .k = 256};
  const Segment segment = Segment::random(params, rng);
  GpuEncoder lb(simgpu::gtx280(), segment, EncodeScheme::kLoopBased);
  (void)lb.encode_batch(4, rng);
  EXPECT_EQ(lb.encode_metrics().shared_accesses, 0u);
  EXPECT_EQ(lb.encode_metrics().texture_fetches, 0u);
}

TEST(GpuEncoder, PreprocessedSchemesChargePreprocessingSeparately) {
  Rng rng(9);
  const Params params{.n = 16, .k = 256};
  const Segment segment = Segment::random(params, rng);
  GpuEncoder tb1(simgpu::gtx280(), segment, EncodeScheme::kTable1);
  EXPECT_GT(tb1.preprocess_metrics().global_load_bytes, 0u);  // segment
  (void)tb1.encode_batch(4, rng);
  EXPECT_GT(tb1.preprocess_metrics().global_store_bytes,
            params.segment_bytes());  // + coefficients
}

TEST(GpuEncoder, StreamingLoadsAreCoalesced) {
  // Fully dense loop-based encoding: source words coalesce and coefficient
  // bytes broadcast, so transactions per word stay near (n*2)/16 + 1/16.
  Rng rng(10);
  const Params params{.n = 32, .k = 1024};
  const Segment segment = Segment::random(params, rng);
  GpuEncoder lb(simgpu::gtx280(), segment, EncodeScheme::kLoopBased);
  (void)lb.encode_batch(8, rng);
  const double words = 8 * 1024 / 4.0;
  const double per_word =
      static_cast<double>(lb.encode_metrics().global_transactions) / words;
  const double ideal = 32 * 2 / 16.0 + 1.0 / 16.0;
  EXPECT_LT(per_word, ideal * 1.3);
}

TEST(GpuEncoderDeathTest, RejectsNonWordBlockSize) {
  Rng rng(11);
  const coding::Params params{.n = 4, .k = 30};
  const Segment segment = Segment::random(params, rng);
  EXPECT_DEATH(GpuEncoder(simgpu::gtx280(), segment, EncodeScheme::kTable5),
               "EXTNC_CHECK");
}

}  // namespace
}  // namespace extnc::gpu
