#include "gpu/gpu_recoder.h"

#include <gtest/gtest.h>

#include "coding/encoder.h"
#include "coding/progressive_decoder.h"

namespace extnc::gpu {
namespace {

using coding::CodedBatch;
using coding::Encoder;
using coding::Params;
using coding::Segment;

CodedBatch coded_batch(const Segment& segment, std::size_t count, Rng& rng) {
  const Encoder encoder(segment);
  CodedBatch batch(segment.params(), count);
  for (std::size_t j = 0; j < count; ++j) {
    encoder.draw_coefficients(rng, batch.coefficients(j));
    encoder.encode_with_coefficients(batch.coefficients(j), batch.payload(j));
  }
  return batch;
}

TEST(GpuRecoder, RecodedBlocksAreConsistentCombinations) {
  // Every recoded payload must equal the encoding of its own coefficient
  // vector over the ORIGINAL sources (recoding preserves Eq. 1).
  Rng rng(1);
  const Params params{.n = 16, .k = 128};
  const Segment segment = Segment::random(params, rng);
  const CodedBatch received = coded_batch(segment, params.n + 4, rng);
  const CodedBatch recoded =
      gpu_recode(simgpu::gtx280(), received, 10, rng);
  const Encoder reference(segment);
  std::vector<std::uint8_t> expected(params.k);
  for (std::size_t j = 0; j < recoded.count(); ++j) {
    reference.encode_with_coefficients(recoded.coefficients(j), expected);
    ASSERT_TRUE(std::equal(expected.begin(), expected.end(),
                           recoded.payload(j).begin()))
        << "block " << j;
  }
}

TEST(GpuRecoder, RecodedBlocksDecodeToOriginal) {
  Rng rng(2);
  const Params params{.n = 12, .k = 64};
  const Segment segment = Segment::random(params, rng);
  const CodedBatch received = coded_batch(segment, params.n + 2, rng);
  const CodedBatch recoded =
      gpu_recode(simgpu::gtx280(), received, params.n + 8, rng);
  coding::ProgressiveDecoder decoder(params);
  for (std::size_t j = 0; j < recoded.count() && !decoder.is_complete(); ++j) {
    decoder.add(recoded.coefficients(j), recoded.payload(j));
  }
  ASSERT_TRUE(decoder.is_complete());
  EXPECT_EQ(decoder.decoded_segment(), segment);
}

TEST(GpuRecoder, CannotExceedSpanOfReceivedBlocks) {
  Rng rng(3);
  const Params params{.n = 16, .k = 32};
  const Segment segment = Segment::random(params, rng);
  const std::size_t held = 5;
  const CodedBatch received = coded_batch(segment, held, rng);
  const CodedBatch recoded =
      gpu_recode(simgpu::gtx280(), received, 40, rng);
  coding::ProgressiveDecoder decoder(params);
  for (std::size_t j = 0; j < recoded.count(); ++j) {
    decoder.add(recoded.coefficients(j), recoded.payload(j));
  }
  EXPECT_EQ(decoder.rank(), held);
}

TEST(GpuRecoder, LoopBasedSchemeWorksToo) {
  Rng rng(4);
  const Params params{.n = 8, .k = 32};
  const Segment segment = Segment::random(params, rng);
  const CodedBatch received = coded_batch(segment, params.n, rng);
  const CodedBatch recoded = gpu_recode(simgpu::gtx280(), received, 4, rng,
                                        EncodeScheme::kLoopBased);
  const Encoder reference(segment);
  std::vector<std::uint8_t> expected(params.k);
  for (std::size_t j = 0; j < recoded.count(); ++j) {
    reference.encode_with_coefficients(recoded.coefficients(j), expected);
    ASSERT_TRUE(std::equal(expected.begin(), expected.end(),
                           recoded.payload(j).begin()));
  }
}

TEST(GpuRecoderDeathTest, EmptyBufferAborts) {
  Rng rng(5);
  const Params params{.n = 8, .k = 32};
  const CodedBatch empty(params, 0);
  EXPECT_DEATH((void)gpu_recode(simgpu::gtx280(), empty, 1, rng),
               "EXTNC_CHECK");
}

}  // namespace
}  // namespace extnc::gpu
