// Profiling across the encode ladder: the per-launch records must back the
// paper's Sec. 5.1.3 story — TB-5's bank-conflict-free exp-table layout
// spends fewer serialized shared-memory cycles per multiply launch than
// TB-1's naive layout.
#include <string>

#include <gtest/gtest.h>

#include "coding/segment.h"
#include "gpu/encode_scheme.h"
#include "gpu/gpu_encoder.h"
#include "gpu/gpu_recoder.h"
#include "simgpu/profiler.h"
#include "util/rng.h"

namespace extnc::gpu {
namespace {

simgpu::Profiler profile_encode(EncodeScheme scheme) {
  Rng rng(1);
  const coding::Segment segment =
      coding::Segment::random({.n = 64, .k = 512}, rng);
  simgpu::Profiler profiler;
  GpuEncoder encoder(simgpu::gtx280(), segment, scheme, &profiler);
  (void)encoder.encode_batch(16, rng);
  return profiler;
}

TEST(ProfileLadder, Tb5HasFewerSerializedCyclesPerLaunchThanTb1) {
  const simgpu::Profiler tb1 = profile_encode(EncodeScheme::kTable1);
  const simgpu::Profiler tb5 = profile_encode(EncodeScheme::kTable5);
  const auto tb1_mul = tb1.label_summary("encode/tb1/exp_smem");
  const auto tb5_mul = tb5.label_summary("encode/tb5/exp_smem");
  ASSERT_GT(tb1_mul.launches, 0u);
  ASSERT_GT(tb5_mul.launches, 0u);
  EXPECT_LT(tb5_mul.serialized_cycles_per_launch(),
            tb1_mul.serialized_cycles_per_launch());
  // And the modeled multiply is faster for it.
  EXPECT_LT(tb5_mul.total_s / static_cast<double>(tb5_mul.launches),
            tb1_mul.total_s / static_cast<double>(tb1_mul.launches));
}

TEST(ProfileLadder, EveryKernelLaunchGetsExactlyOneRecord) {
  const simgpu::Profiler profiler = profile_encode(EncodeScheme::kTable5);
  std::size_t recorded_launches = 0;
  for (const auto& summary : profiler.by_label()) {
    recorded_launches += summary.launches;
  }
  EXPECT_EQ(recorded_launches, profiler.launch_count());
  for (const auto& launch : profiler.launches()) {
    EXPECT_EQ(launch.metrics.kernel_launches, 1u);
    EXPECT_GT(launch.end_s, launch.start_s);
  }
  // Preprocessing (segment + coefficients) and the multiply all show up.
  EXPECT_GT(profiler.label_summary("encode/tb5/preprocess_segment").launches,
            0u);
  EXPECT_GT(profiler.label_summary("encode/tb5/preprocess_coeffs").launches,
            0u);
  EXPECT_GT(profiler.label_summary("encode/tb5/exp_smem").launches, 0u);
}

TEST(ProfileLadder, LoopAndTextureSchemesUseTheirOwnKernelLabels) {
  const simgpu::Profiler loop = profile_encode(EncodeScheme::kLoopBased);
  EXPECT_GT(loop.label_summary("encode/loop/mul_loop").launches, 0u);
  const simgpu::Profiler tb4 = profile_encode(EncodeScheme::kTable4);
  EXPECT_GT(tb4.label_summary("encode/tb4/exp_tex").launches, 0u);
  EXPECT_GT(tb4.label_summary("encode/tb4/exp_tex").metrics.texture_fetches,
            0u);
}

TEST(ProfileLadder, RecoderRecordsUnderRecodeLabels) {
  Rng rng(2);
  const coding::Params params{.n = 16, .k = 128};
  const coding::Segment segment = coding::Segment::random(params, rng);
  GpuEncoder encoder(simgpu::gtx280(), segment, EncodeScheme::kTable5);
  coding::CodedBatch received = encoder.encode_batch(16, rng);
  simgpu::Profiler profiler;
  (void)gpu_recode(simgpu::gtx280(), received, 4, rng, EncodeScheme::kTable5,
                   &profiler);
  ASSERT_GT(profiler.launch_count(), 0u);
  for (const auto& launch : profiler.launches()) {
    EXPECT_EQ(launch.label.rfind("recode/", 0), 0u) << launch.label;
  }
}

}  // namespace
}  // namespace extnc::gpu
