// The clean-suite sanitizer gate as a unit test: every shipped kernel runs
// under the checker with zero error findings, on both engines, with
// bit-identical reports — and the case list itself covers what it claims.
#include "gpu/kernel_check.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "simgpu/device_spec.h"
#include "simgpu/exec_engine.h"

namespace extnc::gpu {
namespace {

std::vector<std::string> case_names(const std::vector<KernelCheckCase>& cases) {
  std::vector<std::string> names;
  names.reserve(cases.size());
  for (const KernelCheckCase& c : cases) names.push_back(c.name);
  return names;
}

bool has_case(const std::vector<KernelCheckCase>& cases,
              const std::string& name) {
  return std::any_of(cases.begin(), cases.end(), [&](const KernelCheckCase& c) {
    return c.name == name;
  });
}

TEST(KernelCheck, AllShippedKernelsAreCleanOnGtx280) {
  const auto cases =
      run_kernel_checks(simgpu::gtx280(), simgpu::ExecEngine::kSerial);
  ASSERT_FALSE(cases.empty());
  for (const KernelCheckCase& c : cases) {
    EXPECT_EQ(c.report.errors(), 0u)
        << c.name << ":\n" << c.report.to_string();
    EXPECT_GT(c.report.checked_launches, 0u) << c.name;
  }
}

TEST(KernelCheck, AllShippedKernelsAreCleanOn8800gt) {
  const auto cases = run_kernel_checks(simgpu::geforce_8800gt(),
                                       simgpu::ExecEngine::kSerial);
  ASSERT_FALSE(cases.empty());
  for (const KernelCheckCase& c : cases) {
    EXPECT_EQ(c.report.errors(), 0u)
        << c.name << ":\n" << c.report.to_string();
  }
}

TEST(KernelCheck, SerialAndParallelSweepsAreBitIdentical) {
  const auto serial =
      run_kernel_checks(simgpu::gtx280(), simgpu::ExecEngine::kSerial);
  const auto parallel =
      run_kernel_checks(simgpu::gtx280(), simgpu::ExecEngine::kParallel);
  ASSERT_EQ(case_names(serial), case_names(parallel));
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].report, parallel[i].report) << serial[i].name;
  }
}

TEST(KernelCheck, CaseListCoversTheShippedKernelFamilies) {
  const auto gtx = run_kernel_checks(simgpu::gtx280(),
                                     simgpu::ExecEngine::kSerial);
  for (const char* name :
       {"encode/loop", "encode/tb0", "encode/tb5", "decode/single",
        "decode/single+cache", "decode/single+atomic", "decode/multiseg",
        "recode", "hybrid"}) {
    EXPECT_TRUE(has_case(gtx, name)) << name;
  }
  // The atomic-pivot decoder variants only exist where the device has
  // shared-memory atomics (Sec. 5.4.2): present on gtx280, gated off on
  // the 8800 GT. They cover the atomic_min_shared path the sanitizer's
  // atomic exemption exists for.
  const auto gt = run_kernel_checks(simgpu::geforce_8800gt(),
                                    simgpu::ExecEngine::kSerial);
  EXPECT_FALSE(has_case(gt, "decode/single+atomic"));
  EXPECT_EQ(gtx.size(), gt.size() + 2);
}

}  // namespace
}  // namespace extnc::gpu
