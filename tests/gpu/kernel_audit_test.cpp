// Verification contract for the static kernel models: every model's
// totals() must equal, bit for bit, the KernelMetrics the interpreted
// engine produces for a run over inputs synthesized from the same payload
// class — across schemes, devices, geometries (aligned and straddling) and
// class variants. Plus the audit itself: clean reports for the shipped
// kernels on both paper devices, and the seeded negative controls each
// caught with the right finding kind.
#include "gpu/kernel_audit.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "coding/batch.h"
#include "coding/segment.h"
#include "gpu/gpu_encoder.h"
#include "gpu/gpu_multiseg_decoder.h"
#include "simgpu/exec_engine.h"
#include "simgpu/profiler.h"
#include "simgpu/static_model.h"
#include "util/metrics_registry.h"

namespace extnc::gpu {
namespace {

using coding::CodedBatch;
using coding::Params;
using coding::Segment;
using simgpu::KernelMetrics;

// The models describe the *interpreted* engine; pin the fast path off so a
// fast-path bug cannot mask a model bug (their equivalence is enforced
// separately by engine_equivalence_test).
class ScopedInterpreted {
 public:
  ScopedInterpreted()
      : saved_fast_(simgpu::fast_path_enabled()),
        saved_engine_(simgpu::default_engine()) {
    simgpu::set_fast_path_enabled(false);
    simgpu::set_default_engine(simgpu::ExecEngine::kSerial);
  }
  ~ScopedInterpreted() {
    simgpu::set_fast_path_enabled(saved_fast_);
    simgpu::set_default_engine(saved_engine_);
  }

 private:
  bool saved_fast_;
  simgpu::ExecEngine saved_engine_;
};

void expect_metrics_equal(const KernelMetrics& model,
                          const KernelMetrics& dynamic,
                          const std::string& what) {
  EXPECT_EQ(model.alu_deciops, dynamic.alu_deciops) << what;
  EXPECT_EQ(model.global_load_bytes, dynamic.global_load_bytes) << what;
  EXPECT_EQ(model.global_store_bytes, dynamic.global_store_bytes) << what;
  EXPECT_EQ(model.global_transactions, dynamic.global_transactions) << what;
  EXPECT_EQ(model.shared_accesses, dynamic.shared_accesses) << what;
  EXPECT_EQ(model.shared_access_events, dynamic.shared_access_events) << what;
  EXPECT_EQ(model.shared_serialized_cycles, dynamic.shared_serialized_cycles)
      << what;
  EXPECT_EQ(model.texture_fetches, dynamic.texture_fetches) << what;
  EXPECT_EQ(model.texture_misses, dynamic.texture_misses) << what;
  EXPECT_EQ(model.atomic_ops, dynamic.atomic_ops) << what;
  EXPECT_EQ(model.barriers, dynamic.barriers) << what;
  EXPECT_EQ(model.kernel_launches, dynamic.kernel_launches) << what;
  EXPECT_EQ(model.blocks, dynamic.blocks) << what;
  EXPECT_EQ(model.threads_per_block, dynamic.threads_per_block) << what;
}

constexpr EncodeScheme kAllSchemes[] = {
    EncodeScheme::kLoopBased, EncodeScheme::kTable0, EncodeScheme::kTable1,
    EncodeScheme::kTable2,    EncodeScheme::kTable3, EncodeScheme::kTable4,
    EncodeScheme::kTable5,
};

// Run one interpreted encode over class-synthesized inputs on a fresh
// encoder (fresh launcher = cold texture caches, the tb4 assumption) and
// return the encode launch's metrics.
KernelMetrics interpreted_encode_metrics(const simgpu::DeviceSpec& spec,
                                         EncodeScheme scheme,
                                         const Params& params,
                                         std::size_t count,
                                         const ModelAssumptions& assume) {
  ScopedInterpreted pin;
  const Segment segment = synthesize_segment(scheme, params, assume);
  CodedBatch batch = synthesize_batch(scheme, params, count, assume);
  GpuEncoder encoder(spec, segment, scheme);
  encoder.encode_into(batch);
  return encoder.encode_metrics();
}

void check_encode_model(const simgpu::DeviceSpec& spec, EncodeScheme scheme,
                        const Params& params, std::size_t count,
                        const ModelAssumptions& assume,
                        const std::string& what) {
  const simgpu::StaticKernelModel model =
      encode_kernel_model(spec, scheme, params, count, assume);
  expect_metrics_equal(
      model.totals(),
      interpreted_encode_metrics(spec, scheme, params, count, assume), what);
}

TEST(KernelAuditModel, EncodeAllSchemesAllClasses) {
  const Params params{.n = 16, .k = 256};
  for (EncodeScheme scheme : kAllSchemes) {
    for (PayloadClass cls :
         {PayloadClass::kUniform, PayloadClass::kStride64,
          PayloadClass::kSparse}) {
      ModelAssumptions assume;
      assume.payload_class = cls;
      check_encode_model(simgpu::gtx280(), scheme, params, 16, assume,
                         std::string(scheme_name(scheme)) + "/class=" +
                             std::to_string(static_cast<int>(cls)));
    }
  }
}

TEST(KernelAuditModel, EncodeZeroCoefficientRows) {
  const Params params{.n = 16, .k = 256};
  for (EncodeScheme scheme : kAllSchemes) {
    ModelAssumptions assume;
    assume.payload_class = PayloadClass::kSparse;
    assume.coeff_zero_every = 3;
    check_encode_model(simgpu::gtx280(), scheme, params, 16, assume,
                       std::string(scheme_name(scheme)) + "/zero-rows");
  }
}

// Straddling geometry: 50 words per coded block is not a half-warp
// multiple and 7 blocks leave a ragged thread tail, so every group the
// model walks crosses coded-block boundaries exactly like the kernel's.
TEST(KernelAuditModel, EncodeStraddlingGeometry) {
  const Params params{.n = 12, .k = 200};
  for (EncodeScheme scheme : kAllSchemes) {
    for (PayloadClass cls :
         {PayloadClass::kUniform, PayloadClass::kStride64}) {
      ModelAssumptions assume;
      assume.payload_class = cls;
      check_encode_model(simgpu::gtx280(), scheme, params, 7, assume,
                         std::string(scheme_name(scheme)) + "/straddle");
    }
  }
}

TEST(KernelAuditModel, EncodeSecondDevice) {
  const Params params{.n = 16, .k = 256};
  for (EncodeScheme scheme :
       {EncodeScheme::kLoopBased, EncodeScheme::kTable0, EncodeScheme::kTable4,
        EncodeScheme::kTable5}) {
    ModelAssumptions assume;
    assume.payload_class = PayloadClass::kStride64;
    check_encode_model(simgpu::geforce_8800gt(), scheme, params, 16, assume,
                       std::string(scheme_name(scheme)) + "/8800gt");
  }
}

TEST(KernelAuditModel, PreprocessKernels) {
  ScopedInterpreted pin;
  const Params params{.n = 16, .k = 256};
  const ModelAssumptions assume;
  const Segment segment =
      synthesize_segment(EncodeScheme::kTable5, params, assume);
  CodedBatch batch =
      synthesize_batch(EncodeScheme::kTable5, params, 16, assume);
  simgpu::Profiler profiler;
  GpuEncoder encoder(simgpu::gtx280(), segment, EncodeScheme::kTable5,
                     &profiler);
  encoder.encode_into(batch);
  const KernelMetrics* segment_launch = nullptr;
  const KernelMetrics* coeff_launch = nullptr;
  for (const simgpu::LaunchProfile& launch : profiler.launches()) {
    if (launch.label == "encode/tb5/preprocess_segment") {
      segment_launch = &launch.metrics;
    }
    if (launch.label == "encode/tb5/preprocess_coeffs") {
      coeff_launch = &launch.metrics;
    }
  }
  ASSERT_NE(segment_launch, nullptr);
  ASSERT_NE(coeff_launch, nullptr);
  expect_metrics_equal(
      preprocess_segment_model(simgpu::gtx280(), params).totals(),
      *segment_launch, "preprocess_segment");
  expect_metrics_equal(
      preprocess_coefficients_model(simgpu::gtx280(), params, 16).totals(),
      *coeff_launch, "preprocess_coeffs");
}

TEST(KernelAuditModel, MultiSegmentInverter) {
  ScopedInterpreted pin;
  const Params params{.n = 16, .k = 128};
  const std::vector<std::uint8_t> matrix =
      synthesize_invertible_matrix(params.n);
  // Three batches holding the same Vandermonde coefficient matrix; the
  // payload bytes are irrelevant to stage 1 (pure coefficient work).
  std::vector<CodedBatch> batches;
  for (int s = 0; s < 3; ++s) {
    CodedBatch batch(params, params.n);
    for (std::size_t r = 0; r < params.n; ++r) {
      std::copy(matrix.begin() + r * params.n,
                matrix.begin() + (r + 1) * params.n,
                batch.coefficients(r).begin());
      std::fill(batch.payload(r).begin(), batch.payload(r).end(),
                static_cast<std::uint8_t>(r + 1));
    }
    batches.push_back(std::move(batch));
  }
  GpuMultiSegmentDecoder decoder(simgpu::gtx280(), params);
  decoder.decode_all(batches);
  expect_metrics_equal(
      invert_kernel_model(simgpu::gtx280(), params, 3, matrix).totals(),
      decoder.stage1_metrics(), "invert");
}

// The recode model is the encode model over the aggregate pseudo-segment
// geometry ((n + k)-byte rows). Verify it against an actual encoder run at
// that geometry — exactly the launch gpu_recode performs.
TEST(KernelAuditModel, RecoderAggregateGeometry) {
  const Params params{.n = 16, .k = 256};
  const std::size_t received = 16;
  const std::size_t produced = 24;
  const Params aggregate{.n = received, .k = params.n + params.k};
  ModelAssumptions assume;
  assume.payload_class = PayloadClass::kStride64;
  const simgpu::StaticKernelModel model = recode_kernel_model(
      simgpu::gtx280(), EncodeScheme::kTable5, params, received, produced,
      assume);
  expect_metrics_equal(model.totals(),
                       interpreted_encode_metrics(
                           simgpu::gtx280(), EncodeScheme::kTable5, aggregate,
                           produced, assume),
                       "recode");
}

TEST(KernelAuditClasses, PayloadAndCoefficientClassBytes) {
  ModelAssumptions assume;
  EXPECT_EQ(payload_class_byte(PayloadClass::kUniform, assume, 5), 0x35);
  EXPECT_EQ(payload_class_byte(PayloadClass::kStride64, assume, 0), 1);
  EXPECT_EQ(payload_class_byte(PayloadClass::kStride64, assume, 4), 1 + 64);
  EXPECT_EQ(payload_class_byte(PayloadClass::kSparse, assume, 0), -1);
  EXPECT_EQ(payload_class_byte(PayloadClass::kSparse, assume, 1), 0x35);
  EXPECT_EQ(coeff_class_byte(assume, 3), 0x1d);
  assume.coeff_zero_every = 3;
  EXPECT_EQ(coeff_class_byte(assume, 2), -1);
  EXPECT_EQ(coeff_class_byte(assume, 3), 0x1d);
}

TEST(KernelAudit, CleanOnBothPaperDevices) {
  for (const simgpu::DeviceSpec& spec :
       {simgpu::gtx280(), simgpu::geforce_8800gt()}) {
    metrics::Registry::instance().reset();
    const AuditReport report = run_kernel_audit(spec, AuditOptions{});
    EXPECT_TRUE(report.clean()) << spec.name;
    EXPECT_EQ(report.cases.size(), 11u) << spec.name;  // 7 + 2 + invert + recode
    for (const AuditCase& c : report.cases) {
      for (const AuditFinding& f : c.findings) {
        EXPECT_TRUE(f.advisory)
            << spec.name << " " << c.kernel << ": " << f.detail;
      }
    }
    EXPECT_EQ(metrics::Registry::instance().value("simgpu.audit.cases"),
              static_cast<double>(report.cases.size()))
        << spec.name;
    EXPECT_EQ(metrics::Registry::instance().value("simgpu.audit.errors"), 0.0)
        << spec.name;
  }
}

TEST(KernelAudit, SeededOobTailCaught) {
  const AuditReport report =
      run_seeded_audit(simgpu::gtx280(), AuditOptions{}, AuditSeedBug::kOobTail);
  EXPECT_FALSE(report.clean());
  bool found = false;
  for (const AuditCase& c : report.cases) {
    for (const AuditFinding& f : c.findings) {
      found |= f.kind == AuditKind::kGlobalFootprint && !f.advisory;
    }
  }
  EXPECT_TRUE(found);
}

TEST(KernelAudit, SeededDivergentBarrierCaught) {
  const AuditReport report = run_seeded_audit(
      simgpu::gtx280(), AuditOptions{}, AuditSeedBug::kDivergentBarrier);
  EXPECT_FALSE(report.clean());
  bool found = false;
  for (const AuditCase& c : report.cases) {
    for (const AuditFinding& f : c.findings) {
      found |= f.kind == AuditKind::kBarrierDivergence && !f.advisory;
    }
  }
  EXPECT_TRUE(found);
}

TEST(KernelAudit, SeededConflictRegressionCaught) {
  const AuditReport report = run_seeded_audit(
      simgpu::gtx280(), AuditOptions{}, AuditSeedBug::kConflictRegression);
  // A lane-blocked tb5 table load serializes its stores 16-deep: the
  // bank-conflict lint (an advisory) must fire at full degree.
  bool found = false;
  for (const AuditCase& c : report.cases) {
    EXPECT_EQ(c.model.max_conflict_degree(), 16u);
    for (const AuditFinding& f : c.findings) {
      found |= f.kind == AuditKind::kBankConflictLint;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace extnc::gpu
