#include "gpu/gpu_multiseg_decoder.h"

#include <gtest/gtest.h>

#include "coding/block_decoder.h"
#include "coding/encoder.h"

namespace extnc::gpu {
namespace {

using coding::CodedBatch;
using coding::Encoder;
using coding::Params;
using coding::Segment;

CodedBatch independent_batch(const Segment& segment, Rng& rng) {
  const Params& params = segment.params();
  const Encoder encoder(segment);
  coding::BlockDecoder probe(params);
  CodedBatch batch(params, params.n);
  std::size_t stored = 0;
  while (stored < params.n) {
    coding::CodedBlock block = encoder.encode(rng);
    if (!probe.add(block)) continue;
    std::copy(block.coefficients().begin(), block.coefficients().end(),
              batch.coefficients(stored).begin());
    std::copy(block.payload().begin(), block.payload().end(),
              batch.payload(stored).begin());
    ++stored;
  }
  return batch;
}

TEST(GpuMultiSegmentDecoder, DecodesThreeSegments) {
  Rng rng(1);
  const Params params{.n = 12, .k = 128};
  std::vector<Segment> segments;
  std::vector<CodedBatch> batches;
  for (int s = 0; s < 3; ++s) {
    segments.push_back(Segment::random(params, rng));
    batches.push_back(independent_batch(segments.back(), rng));
  }
  GpuMultiSegmentDecoder decoder(simgpu::gtx280(), params);
  const auto decoded = decoder.decode_all(batches);
  ASSERT_EQ(decoded.size(), 3u);
  for (int s = 0; s < 3; ++s) EXPECT_EQ(decoded[s], segments[s]) << s;
}

TEST(GpuMultiSegmentDecoder, DecodesSixSegments) {
  Rng rng(2);
  const Params params{.n = 8, .k = 64};
  std::vector<Segment> segments;
  std::vector<CodedBatch> batches;
  for (int s = 0; s < 6; ++s) {
    segments.push_back(Segment::random(params, rng));
    batches.push_back(independent_batch(segments.back(), rng));
  }
  GpuMultiSegmentDecoder decoder(simgpu::gtx280(), params);
  const auto decoded = decoder.decode_all(batches);
  for (int s = 0; s < 6; ++s) EXPECT_EQ(decoded[s], segments[s]) << s;
}

TEST(GpuMultiSegmentDecoder, EmptyInputYieldsEmptyOutput) {
  GpuMultiSegmentDecoder decoder(simgpu::gtx280(), {.n = 8, .k = 64});
  EXPECT_TRUE(decoder.decode_all({}).empty());
}

TEST(GpuMultiSegmentDecoder, StageMetricsBothPopulated) {
  Rng rng(3);
  const Params params{.n = 8, .k = 128};
  std::vector<CodedBatch> batches;
  batches.push_back(independent_batch(Segment::random(params, rng), rng));
  GpuMultiSegmentDecoder decoder(simgpu::gtx280(), params);
  (void)decoder.decode_all(batches);
  EXPECT_GT(decoder.stage1_metrics().alu_ops(), 0.0);
  EXPECT_GT(decoder.stage2_metrics().alu_ops(), 0.0);
  // Stage 2 is the table-based multiply: it uses shared memory tables.
  EXPECT_GT(decoder.stage2_metrics().shared_accesses, 0u);
}

TEST(GpuMultiSegmentDecoderDeathTest, RequiresExactlyNBlocks) {
  const Params params{.n = 8, .k = 64};
  GpuMultiSegmentDecoder decoder(simgpu::gtx280(), params);
  std::vector<CodedBatch> batches;
  batches.emplace_back(params, params.n - 1);
  EXPECT_DEATH((void)decoder.decode_all(batches), "EXTNC_CHECK");
}

class MultiSegSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(MultiSegSweep, RoundTrip) {
  const auto [n, segments] = GetParam();
  Rng rng(900 + n + segments);
  const Params params{.n = n, .k = 64};
  std::vector<Segment> originals;
  std::vector<CodedBatch> batches;
  for (std::size_t s = 0; s < segments; ++s) {
    originals.push_back(Segment::random(params, rng));
    batches.push_back(independent_batch(originals.back(), rng));
  }
  GpuMultiSegmentDecoder decoder(simgpu::gtx280(), params);
  const auto decoded = decoder.decode_all(batches);
  for (std::size_t s = 0; s < segments; ++s) {
    EXPECT_EQ(decoded[s], originals[s]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MultiSegSweep,
                         ::testing::Combine(::testing::Values(4u, 16u),
                                            ::testing::Values(1u, 2u, 5u)));

}  // namespace
}  // namespace extnc::gpu
