#include "gpu/hybrid_encoder.h"

#include <gtest/gtest.h>

#include "coding/encoder.h"
#include "simgpu/fault_injector.h"
#include "util/metrics_registry.h"

namespace extnc::gpu {
namespace {

using coding::CodedBatch;
using coding::Encoder;
using coding::Params;
using coding::Segment;

TEST(HybridEncoder, MatchesReferenceBitExactly) {
  Rng rng(1);
  const Params params{.n = 16, .k = 256};
  const Segment segment = Segment::random(params, rng);
  ThreadPool pool(4);
  HybridEncoder hybrid(simgpu::gtx280(), segment, pool);
  const Encoder reference(segment);
  const CodedBatch batch = hybrid.encode_batch(20, rng);
  std::vector<std::uint8_t> expected(params.k);
  for (std::size_t j = 0; j < batch.count(); ++j) {
    reference.encode_with_coefficients(batch.coefficients(j), expected);
    ASSERT_TRUE(std::equal(expected.begin(), expected.end(),
                           batch.payload(j).begin()))
        << "block " << j;
  }
}

TEST(HybridEncoder, DefaultShareTracksModeledRatio) {
  // ~4.3x GPU advantage -> GPU share around 0.81.
  Rng rng(2);
  const Params params{.n = 128, .k = 4096};
  const Segment segment = Segment::random(params, rng);
  ThreadPool pool(2);
  HybridEncoder hybrid(simgpu::gtx280(), segment, pool);
  EXPECT_GT(hybrid.gpu_share(), 0.75);
  EXPECT_LT(hybrid.gpu_share(), 0.88);
}

TEST(HybridEncoder, SplitCountsAddUp) {
  Rng rng(3);
  const Params params{.n = 8, .k = 64};
  const Segment segment = Segment::random(params, rng);
  ThreadPool pool(2);
  HybridEncoder hybrid(simgpu::gtx280(), segment, pool,
                       EncodeScheme::kTable5, 0.5);
  EXPECT_EQ(hybrid.gpu_blocks(10), 5u);
  EXPECT_EQ(hybrid.gpu_blocks(1), 1u);  // rounds to at least the share
  EXPECT_EQ(hybrid.gpu_blocks(0), 0u);
}

TEST(HybridEncoder, AllGpuShareStillCorrect) {
  Rng rng(4);
  const Params params{.n = 8, .k = 64};
  const Segment segment = Segment::random(params, rng);
  ThreadPool pool(2);
  HybridEncoder hybrid(simgpu::gtx280(), segment, pool,
                       EncodeScheme::kTable3, 1.0);
  const Encoder reference(segment);
  const CodedBatch batch = hybrid.encode_batch(6, rng);
  std::vector<std::uint8_t> expected(params.k);
  for (std::size_t j = 0; j < batch.count(); ++j) {
    reference.encode_with_coefficients(batch.coefficients(j), expected);
    ASSERT_TRUE(std::equal(expected.begin(), expected.end(),
                           batch.payload(j).begin()));
  }
}

TEST(HybridEncoder, TinyShareRoutesMostBlocksToCpu) {
  Rng rng(5);
  const Params params{.n = 8, .k = 64};
  const Segment segment = Segment::random(params, rng);
  ThreadPool pool(2);
  HybridEncoder hybrid(simgpu::gtx280(), segment, pool,
                       EncodeScheme::kTable5, 0.1);
  EXPECT_EQ(hybrid.gpu_blocks(20), 2u);
  const Encoder reference(segment);
  const CodedBatch batch = hybrid.encode_batch(20, rng);
  std::vector<std::uint8_t> expected(params.k);
  for (std::size_t j = 0; j < batch.count(); ++j) {
    reference.encode_with_coefficients(batch.coefficients(j), expected);
    ASSERT_TRUE(std::equal(expected.begin(), expected.end(),
                           batch.payload(j).begin()));
  }
}

TEST(HybridEncoder, EmptyBatchIsNoop) {
  Rng rng(6);
  const Params params{.n = 4, .k = 16};
  const Segment segment = Segment::random(params, rng);
  ThreadPool pool(2);
  HybridEncoder hybrid(simgpu::gtx280(), segment, pool);
  CodedBatch batch(params, 0);
  hybrid.encode_into(batch);
  EXPECT_EQ(batch.count(), 0u);
}

// A device loss mid-batch rebalances the split to CPU-only; the faulted
// batch itself is re-encoded on the CPU with the same coefficients, so
// output stays bit-exact with the reference throughout.
TEST(HybridEncoder, DeviceLossMidBatchRebalancesToCpu) {
  metrics::Registry::instance().reset();
  Rng rng(8);
  const Params params{.n = 8, .k = 128};
  const Segment segment = Segment::random(params, rng);
  ThreadPool pool(2);
  HybridEncoder hybrid(simgpu::gtx280(), segment, pool,
                       EncodeScheme::kTable5, 0.5);
  simgpu::FaultPlan plan;
  plan.scripted[0] = simgpu::FaultClass::kDeviceLost;
  simgpu::FaultInjector injector(plan);
  hybrid.attach_fault_injector(&injector);

  const Encoder reference(segment);
  std::vector<std::uint8_t> expected(params.k);
  auto check = [&](const CodedBatch& batch) {
    for (std::size_t j = 0; j < batch.count(); ++j) {
      reference.encode_with_coefficients(batch.coefficients(j), expected);
      ASSERT_TRUE(std::equal(expected.begin(), expected.end(),
                             batch.payload(j).begin()))
          << "block " << j;
    }
  };

  check(hybrid.encode_batch(12, rng));  // GPU half dies on launch 0
  EXPECT_TRUE(hybrid.gpu_disabled());
  EXPECT_EQ(hybrid.gpu_blocks(10), 0u);  // split rebalanced to CPU-only
  EXPECT_EQ(metrics::Registry::instance().value("gpu.hybrid.rebalances"), 1.0);
  EXPECT_EQ(metrics::Registry::instance().value("gpu.hybrid.device_faults"),
            1.0);
  check(hybrid.encode_batch(12, rng));  // later batches avoid the dead GPU
  EXPECT_EQ(metrics::Registry::instance().value("gpu.hybrid.device_faults"),
            1.0);  // no further faults: the GPU path was not retried
}

TEST(HybridEncoder, TransientLaunchFailureKeepsGpuInRotation) {
  metrics::Registry::instance().reset();
  Rng rng(9);
  const Params params{.n = 8, .k = 128};
  const Segment segment = Segment::random(params, rng);
  ThreadPool pool(2);
  HybridEncoder hybrid(simgpu::gtx280(), segment, pool,
                       EncodeScheme::kTable5, 0.5);
  simgpu::FaultPlan plan;
  plan.scripted[0] = simgpu::FaultClass::kLaunchFailure;
  simgpu::FaultInjector injector(plan);
  hybrid.attach_fault_injector(&injector);

  const Encoder reference(segment);
  std::vector<std::uint8_t> expected(params.k);
  for (int round = 0; round < 2; ++round) {
    const CodedBatch batch = hybrid.encode_batch(10, rng);
    for (std::size_t j = 0; j < batch.count(); ++j) {
      reference.encode_with_coefficients(batch.coefficients(j), expected);
      ASSERT_TRUE(std::equal(expected.begin(), expected.end(),
                             batch.payload(j).begin()))
          << "round " << round << " block " << j;
    }
  }
  EXPECT_FALSE(hybrid.gpu_disabled());  // transient: split unchanged
  EXPECT_EQ(metrics::Registry::instance().value("gpu.hybrid.device_faults"),
            1.0);
  EXPECT_EQ(metrics::Registry::instance().value("gpu.hybrid.rebalances"), 0.0);
}

TEST(HybridEncoder, RestoreGpuReenablesSplitAfterRecovery) {
  Rng rng(10);
  const Params params{.n = 8, .k = 64};
  const Segment segment = Segment::random(params, rng);
  ThreadPool pool(2);
  HybridEncoder hybrid(simgpu::gtx280(), segment, pool,
                       EncodeScheme::kTable5, 0.5);
  simgpu::FaultPlan plan;
  plan.scripted[0] = simgpu::FaultClass::kDeviceLost;
  simgpu::FaultInjector injector(plan);
  hybrid.attach_fault_injector(&injector);
  (void)hybrid.encode_batch(8, rng);
  ASSERT_TRUE(hybrid.gpu_disabled());

  injector.restore_device();
  hybrid.restore_gpu();
  EXPECT_FALSE(hybrid.gpu_disabled());
  EXPECT_GT(hybrid.gpu_blocks(10), 0u);
  const Encoder reference(segment);
  std::vector<std::uint8_t> expected(params.k);
  const CodedBatch batch = hybrid.encode_batch(10, rng);
  for (std::size_t j = 0; j < batch.count(); ++j) {
    reference.encode_with_coefficients(batch.coefficients(j), expected);
    ASSERT_TRUE(std::equal(expected.begin(), expected.end(),
                           batch.payload(j).begin()));
  }
}

TEST(HybridEncoderDeathTest, InvalidShareAborts) {
  Rng rng(7);
  const Params params{.n = 4, .k = 16};
  const Segment segment = Segment::random(params, rng);
  ThreadPool pool(2);
  EXPECT_DEATH(HybridEncoder(simgpu::gtx280(), segment, pool,
                             EncodeScheme::kTable5, 1.5),
               "EXTNC_CHECK");
}

}  // namespace
}  // namespace extnc::gpu
