#include "gpu/hybrid_encoder.h"

#include <gtest/gtest.h>

#include "coding/encoder.h"

namespace extnc::gpu {
namespace {

using coding::CodedBatch;
using coding::Encoder;
using coding::Params;
using coding::Segment;

TEST(HybridEncoder, MatchesReferenceBitExactly) {
  Rng rng(1);
  const Params params{.n = 16, .k = 256};
  const Segment segment = Segment::random(params, rng);
  ThreadPool pool(4);
  HybridEncoder hybrid(simgpu::gtx280(), segment, pool);
  const Encoder reference(segment);
  const CodedBatch batch = hybrid.encode_batch(20, rng);
  std::vector<std::uint8_t> expected(params.k);
  for (std::size_t j = 0; j < batch.count(); ++j) {
    reference.encode_with_coefficients(batch.coefficients(j), expected);
    ASSERT_TRUE(std::equal(expected.begin(), expected.end(),
                           batch.payload(j).begin()))
        << "block " << j;
  }
}

TEST(HybridEncoder, DefaultShareTracksModeledRatio) {
  // ~4.3x GPU advantage -> GPU share around 0.81.
  Rng rng(2);
  const Params params{.n = 128, .k = 4096};
  const Segment segment = Segment::random(params, rng);
  ThreadPool pool(2);
  HybridEncoder hybrid(simgpu::gtx280(), segment, pool);
  EXPECT_GT(hybrid.gpu_share(), 0.75);
  EXPECT_LT(hybrid.gpu_share(), 0.88);
}

TEST(HybridEncoder, SplitCountsAddUp) {
  Rng rng(3);
  const Params params{.n = 8, .k = 64};
  const Segment segment = Segment::random(params, rng);
  ThreadPool pool(2);
  HybridEncoder hybrid(simgpu::gtx280(), segment, pool,
                       EncodeScheme::kTable5, 0.5);
  EXPECT_EQ(hybrid.gpu_blocks(10), 5u);
  EXPECT_EQ(hybrid.gpu_blocks(1), 1u);  // rounds to at least the share
  EXPECT_EQ(hybrid.gpu_blocks(0), 0u);
}

TEST(HybridEncoder, AllGpuShareStillCorrect) {
  Rng rng(4);
  const Params params{.n = 8, .k = 64};
  const Segment segment = Segment::random(params, rng);
  ThreadPool pool(2);
  HybridEncoder hybrid(simgpu::gtx280(), segment, pool,
                       EncodeScheme::kTable3, 1.0);
  const Encoder reference(segment);
  const CodedBatch batch = hybrid.encode_batch(6, rng);
  std::vector<std::uint8_t> expected(params.k);
  for (std::size_t j = 0; j < batch.count(); ++j) {
    reference.encode_with_coefficients(batch.coefficients(j), expected);
    ASSERT_TRUE(std::equal(expected.begin(), expected.end(),
                           batch.payload(j).begin()));
  }
}

TEST(HybridEncoder, TinyShareRoutesMostBlocksToCpu) {
  Rng rng(5);
  const Params params{.n = 8, .k = 64};
  const Segment segment = Segment::random(params, rng);
  ThreadPool pool(2);
  HybridEncoder hybrid(simgpu::gtx280(), segment, pool,
                       EncodeScheme::kTable5, 0.1);
  EXPECT_EQ(hybrid.gpu_blocks(20), 2u);
  const Encoder reference(segment);
  const CodedBatch batch = hybrid.encode_batch(20, rng);
  std::vector<std::uint8_t> expected(params.k);
  for (std::size_t j = 0; j < batch.count(); ++j) {
    reference.encode_with_coefficients(batch.coefficients(j), expected);
    ASSERT_TRUE(std::equal(expected.begin(), expected.end(),
                           batch.payload(j).begin()));
  }
}

TEST(HybridEncoder, EmptyBatchIsNoop) {
  Rng rng(6);
  const Params params{.n = 4, .k = 16};
  const Segment segment = Segment::random(params, rng);
  ThreadPool pool(2);
  HybridEncoder hybrid(simgpu::gtx280(), segment, pool);
  CodedBatch batch(params, 0);
  hybrid.encode_into(batch);
  EXPECT_EQ(batch.count(), 0u);
}

TEST(HybridEncoderDeathTest, InvalidShareAborts) {
  Rng rng(7);
  const Params params{.n = 4, .k = 16};
  const Segment segment = Segment::random(params, rng);
  ThreadPool pool(2);
  EXPECT_DEATH(HybridEncoder(simgpu::gtx280(), segment, pool,
                             EncodeScheme::kTable5, 1.5),
               "EXTNC_CHECK");
}

}  // namespace
}  // namespace extnc::gpu
