// The supervision layer: retry/backoff/watchdog/breaker state machine at
// the closure level, then the supervised encoder and multi-segment decoder
// against scripted device faults, and checkpoint/resume.
#include "gpu/resilient_launcher.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "coding/block_decoder.h"
#include "coding/encoder.h"
#include "cpu/multi_segment_decoder.h"
#include "util/checksum.h"
#include "util/metrics_registry.h"

namespace extnc::gpu {
namespace {

using coding::CodedBatch;
using coding::Encoder;
using coding::Params;
using coding::Segment;

// --- supervisor state machine (synthetic closures, no GPU) -----------------

TEST(ResilientLauncher, CleanOpRunsOnceOnGpu) {
  ResilientLauncher supervisor;
  int gpu_calls = 0;
  SupervisedOp op;
  op.label = "clean";
  op.gpu = [&] { ++gpu_calls; };
  op.verify = [] { return true; };
  op.cpu = [] { FAIL() << "fallback must not run"; };
  const OperationReport report = supervisor.run(op);
  EXPECT_EQ(report.path, ComputePath::kGpu);
  EXPECT_EQ(report.attempts, 1);
  EXPECT_EQ(gpu_calls, 1);
  EXPECT_DOUBLE_EQ(report.backoff_s, 0.0);
  EXPECT_EQ(supervisor.totals().gpu_ok, 1u);
  EXPECT_EQ(supervisor.totals().retries, 0u);
  EXPECT_FALSE(supervisor.breaker_open());
}

TEST(ResilientLauncher, CorruptedOutputRetriesWithExponentialBackoff) {
  SupervisorConfig config;
  config.backoff_initial_s = 1.0;
  config.backoff_factor = 2.0;
  ResilientLauncher supervisor(config);
  int gpu_calls = 0;
  SupervisedOp op;
  op.gpu = [&] { ++gpu_calls; };
  op.verify = [&] { return gpu_calls >= 3; };  // first two results corrupted
  op.cpu = [] { FAIL() << "fallback must not run"; };
  const OperationReport report = supervisor.run(op);
  EXPECT_EQ(report.path, ComputePath::kGpu);
  EXPECT_EQ(report.attempts, 3);
  EXPECT_EQ(report.corrupted_outputs, 2);
  EXPECT_DOUBLE_EQ(report.backoff_s, 1.0 + 2.0);  // 1, then doubled
  EXPECT_EQ(supervisor.totals().retries, 2u);
  EXPECT_EQ(supervisor.totals().corrupted_outputs, 2u);
}

TEST(ResilientLauncher, WatchdogTripsOnClockOverrun) {
  SupervisorConfig config;
  config.watchdog_budget_s = 1.0;
  config.max_attempts = 2;
  ResilientLauncher supervisor(config);
  double clock = 0.0;
  bool cpu_ran = false;
  SupervisedOp op;
  op.gpu = [&] { clock += 5.0; };  // every attempt blows the budget
  op.gpu_clock = [&] { return clock; };
  op.verify = [] { return true; };
  op.cpu = [&] { cpu_ran = true; };
  const OperationReport report = supervisor.run(op);
  EXPECT_EQ(report.path, ComputePath::kCpuFallback);
  EXPECT_EQ(report.attempts, 2);
  EXPECT_EQ(report.watchdog_trips, 2);
  EXPECT_TRUE(cpu_ran);
  EXPECT_EQ(supervisor.totals().watchdog_trips, 2u);
  EXPECT_EQ(supervisor.totals().fallbacks, 1u);
}

TEST(ResilientLauncher, TransientLaunchFailureIsRetried) {
  ResilientLauncher supervisor;
  int gpu_calls = 0;
  SupervisedOp op;
  op.gpu = [&] {
    if (++gpu_calls == 1) {
      throw simgpu::DeviceError(simgpu::FaultClass::kLaunchFailure, "boom");
    }
  };
  op.verify = [] { return true; };
  const OperationReport report = supervisor.run(op);
  EXPECT_EQ(report.path, ComputePath::kGpu);
  EXPECT_EQ(report.attempts, 2);
  EXPECT_EQ(report.launch_failures, 1);
  EXPECT_FALSE(supervisor.breaker_open());
}

TEST(ResilientLauncher, DeviceLossOpensBreakerAndShortCircuitsNextOps) {
  ResilientLauncher supervisor;
  SupervisedOp lost_op;
  lost_op.gpu = [] {
    throw simgpu::DeviceError(simgpu::FaultClass::kDeviceLost, "gone");
  };
  bool cpu_ran = false;
  lost_op.cpu = [&] { cpu_ran = true; };
  const OperationReport report = supervisor.run(lost_op);
  EXPECT_EQ(report.path, ComputePath::kCpuFallback);
  EXPECT_TRUE(report.device_lost);
  EXPECT_EQ(report.attempts, 1);  // no retry against a lost device
  EXPECT_TRUE(cpu_ran);
  EXPECT_TRUE(supervisor.breaker_open());

  // Breaker open: the GPU closure is never invoked again.
  SupervisedOp next;
  next.gpu = [] { FAIL() << "breaker must bypass the GPU"; };
  bool next_cpu = false;
  next.cpu = [&] { next_cpu = true; };
  const OperationReport short_circuit = supervisor.run(next);
  EXPECT_EQ(short_circuit.path, ComputePath::kCpuFallback);
  EXPECT_EQ(short_circuit.attempts, 0);
  EXPECT_TRUE(next_cpu);

  // reset_breaker models device recovery: GPU attempts resume.
  supervisor.reset_breaker();
  EXPECT_FALSE(supervisor.breaker_open());
  SupervisedOp healthy;
  int gpu_calls = 0;
  healthy.gpu = [&] { ++gpu_calls; };
  EXPECT_EQ(supervisor.run(healthy).path, ComputePath::kGpu);
  EXPECT_EQ(gpu_calls, 1);
}

TEST(ResilientLauncher, BreakerOpensAfterConsecutiveExhaustedOps) {
  SupervisorConfig config;
  config.max_attempts = 1;
  config.breaker_threshold = 2;
  ResilientLauncher supervisor(config);
  SupervisedOp bad;
  bad.gpu = [] {};
  bad.verify = [] { return false; };  // always corrupted
  bad.cpu = [] {};
  EXPECT_EQ(supervisor.run(bad).path, ComputePath::kCpuFallback);
  EXPECT_FALSE(supervisor.breaker_open());  // 1 of 2
  EXPECT_EQ(supervisor.run(bad).path, ComputePath::kCpuFallback);
  EXPECT_TRUE(supervisor.breaker_open());  // threshold reached

  // A success in between resets the consecutive count.
  supervisor.reset_breaker();
  (void)supervisor.run(bad);
  SupervisedOp good;
  good.gpu = [] {};
  (void)supervisor.run(good);
  (void)supervisor.run(bad);
  EXPECT_FALSE(supervisor.breaker_open());
}

// --- backoff schedule and breaker half-open --------------------------------

TEST(ResilientLauncher, BackoffScheduleIsExactGeometricSeries) {
  SupervisorConfig config;
  config.backoff_initial_s = 0.25;
  config.backoff_factor = 3.0;
  config.max_attempts = 5;
  ResilientLauncher supervisor(config);
  SupervisedOp op;
  op.gpu = [] {};
  op.verify = [] { return false; };  // exhaust every attempt
  op.cpu = [] {};
  const OperationReport report = supervisor.run(op);
  EXPECT_EQ(report.attempts, 5);
  // Attempts 2..5 sleep 0.25 * 3^k, k = 0..3 — simulated seconds, summed.
  const double expected = 0.25 * (1.0 + 3.0 + 9.0 + 27.0);
  EXPECT_DOUBLE_EQ(report.backoff_s, expected);
  EXPECT_DOUBLE_EQ(supervisor.totals().backoff_seconds, expected);
}

TEST(ResilientLauncher, BreakerHalfOpensAfterCooldownAndRecloses) {
  SupervisorConfig config;
  config.breaker_cooldown_s = 10.0;
  ResilientLauncher supervisor(config);
  double now = 100.0;
  supervisor.set_clock([&now] { return now; });

  SupervisedOp lost;
  lost.gpu = [] {
    throw simgpu::DeviceError(simgpu::FaultClass::kDeviceLost, "gone");
  };
  lost.cpu = [] {};
  EXPECT_EQ(supervisor.run(lost).path, ComputePath::kCpuFallback);
  EXPECT_TRUE(supervisor.breaker_open());  // opened at t=100

  // Inside the cool-down window the GPU closure is still bypassed.
  now = 105.0;
  SupervisedOp blocked;
  blocked.gpu = [] { FAIL() << "cool-down not elapsed"; };
  bool cpu_ran = false;
  blocked.cpu = [&] { cpu_ran = true; };
  const OperationReport during = supervisor.run(blocked);
  EXPECT_EQ(during.path, ComputePath::kCpuFallback);
  EXPECT_EQ(during.attempts, 0);
  EXPECT_TRUE(cpu_ran);
  EXPECT_TRUE(supervisor.breaker_open());

  // Cool-down elapsed: one half-open probe runs; success recloses.
  now = 110.0;
  int gpu_calls = 0;
  SupervisedOp probe;
  probe.gpu = [&] { ++gpu_calls; };
  probe.verify = [] { return true; };
  probe.cpu = [] { FAIL() << "probe succeeded; no fallback"; };
  const OperationReport reopened = supervisor.run(probe);
  EXPECT_EQ(reopened.path, ComputePath::kGpu);
  EXPECT_EQ(reopened.attempts, 1);
  EXPECT_EQ(gpu_calls, 1);
  EXPECT_FALSE(supervisor.breaker_open());

  // Fully closed again: normal multi-attempt operation resumes.
  const OperationReport after = supervisor.run(probe);
  EXPECT_EQ(after.path, ComputePath::kGpu);
  EXPECT_EQ(gpu_calls, 2);
}

TEST(ResilientLauncher, FailedProbeKeepsBreakerOpenAndRestartsCooldown) {
  SupervisorConfig config;
  config.breaker_cooldown_s = 10.0;
  ResilientLauncher supervisor(config);
  double now = 0.0;
  supervisor.set_clock([&now] { return now; });
  supervisor.trip_breaker();  // external health signal at t=0
  EXPECT_TRUE(supervisor.breaker_open());

  // Probe at t=10 fails: exactly ONE attempt (no retry burst against a
  // device that just proved unhealthy), breaker stays open.
  now = 10.0;
  int gpu_calls = 0;
  SupervisedOp flaky;
  flaky.gpu = [&] {
    ++gpu_calls;
    throw simgpu::DeviceError(simgpu::FaultClass::kLaunchFailure, "still bad");
  };
  flaky.cpu = [] {};
  const OperationReport failed_probe = supervisor.run(flaky);
  EXPECT_EQ(failed_probe.path, ComputePath::kCpuFallback);
  EXPECT_EQ(failed_probe.attempts, 1);
  EXPECT_EQ(gpu_calls, 1);
  EXPECT_TRUE(supervisor.breaker_open());

  // Cool-down restarted at t=10: t=19 grants no probe, t=20 does.
  now = 19.0;
  SupervisedOp blocked;
  blocked.gpu = [&] { ++gpu_calls; };
  blocked.cpu = [] {};
  EXPECT_EQ(supervisor.run(blocked).attempts, 0);
  EXPECT_EQ(gpu_calls, 1);
  now = 20.0;
  SupervisedOp healthy;
  healthy.gpu = [&] { ++gpu_calls; };
  EXPECT_EQ(supervisor.run(healthy).path, ComputePath::kGpu);
  EXPECT_EQ(gpu_calls, 2);
  EXPECT_FALSE(supervisor.breaker_open());
}

TEST(ResilientLauncher, HalfOpenProbeIsSingleFlightUnderHedgedRedispatch) {
  // The fleet race: a hedged re-dispatch lands on a device at the SAME
  // simulated instant its breaker comes off cool-down. Only the first
  // operation may probe — probe success closes the breaker before the
  // second op runs, and probe failure restarts the cool-down from the
  // same timestamp, so the second op must go straight to the CPU either
  // way. Two concurrent probes would double the load on a device that
  // has only proven it can survive one.
  metrics::Registry::instance().reset();
  SupervisorConfig config;
  config.breaker_cooldown_s = 10.0;
  config.metric_prefix = "test.singleflight";
  ResilientLauncher supervisor(config);
  double now = 0.0;
  supervisor.set_clock([&now] { return now; });
  supervisor.trip_breaker();

  // Case 1: the probe FAILS at t=10. The hedge replica arriving at the
  // same t=10 sees a cool-down restarted at 10 and is bypassed — exactly
  // one half-open probe is counted, one GPU call total.
  now = 10.0;
  int gpu_calls = 0;
  SupervisedOp failing;
  failing.gpu = [&] {
    ++gpu_calls;
    throw simgpu::DeviceError(simgpu::FaultClass::kLaunchFailure, "probe");
  };
  failing.cpu = [] {};
  EXPECT_EQ(supervisor.run(failing).path, ComputePath::kCpuFallback);
  SupervisedOp hedge;
  hedge.gpu = [] { FAIL() << "second op at the same instant must not probe"; };
  bool hedge_on_cpu = false;
  hedge.cpu = [&] { hedge_on_cpu = true; };
  const OperationReport raced = supervisor.run(hedge);
  EXPECT_EQ(raced.path, ComputePath::kCpuFallback);
  EXPECT_EQ(raced.attempts, 0);
  EXPECT_TRUE(hedge_on_cpu);
  EXPECT_TRUE(supervisor.breaker_open());
  EXPECT_EQ(gpu_calls, 1);
  EXPECT_DOUBLE_EQ(metrics::Registry::instance().value(
                       "test.singleflight.breaker_half_open"),
                   1.0);
  EXPECT_DOUBLE_EQ(metrics::Registry::instance().value(
                       "test.singleflight.breaker_probe_failed"),
                   1.0);

  // Case 2: the probe SUCCEEDS at t=20. The racing op runs on a CLOSED
  // breaker — a normal dispatch, not a second probe.
  now = 20.0;
  SupervisedOp probe;
  probe.gpu = [&] { ++gpu_calls; };
  probe.verify = [] { return true; };
  probe.cpu = [] { FAIL() << "probe succeeded; no fallback"; };
  EXPECT_EQ(supervisor.run(probe).path, ComputePath::kGpu);
  EXPECT_FALSE(supervisor.breaker_open());
  EXPECT_EQ(supervisor.run(probe).path, ComputePath::kGpu);
  EXPECT_EQ(gpu_calls, 3);
  // Still exactly two probes ever granted (one per cool-down expiry).
  EXPECT_DOUBLE_EQ(metrics::Registry::instance().value(
                       "test.singleflight.breaker_half_open"),
                   2.0);
  EXPECT_DOUBLE_EQ(metrics::Registry::instance().value(
                       "test.singleflight.breaker_reclosed"),
                   1.0);
  metrics::Registry::instance().reset();
}

TEST(ResilientLauncher, BreakerWithoutCooldownOrClockNeverHalfOpens) {
  // cooldown set but no clock attached
  SupervisorConfig with_cooldown;
  with_cooldown.breaker_cooldown_s = 1.0;
  ResilientLauncher no_clock(with_cooldown);
  no_clock.trip_breaker();
  SupervisedOp op;
  op.gpu = [] { FAIL() << "breaker must stay open"; };
  op.cpu = [] {};
  EXPECT_EQ(no_clock.run(op).attempts, 0);
  EXPECT_TRUE(no_clock.breaker_open());

  // clock attached but cooldown disabled (PR 3 semantics preserved)
  ResilientLauncher no_cooldown;
  double now = 0.0;
  no_cooldown.set_clock([&now] { return now; });
  no_cooldown.trip_breaker();
  now = 1e9;
  EXPECT_EQ(no_cooldown.run(op).attempts, 0);
  EXPECT_TRUE(no_cooldown.breaker_open());
  no_cooldown.reset_breaker();
  EXPECT_FALSE(no_cooldown.breaker_open());
}

TEST(ResilientLauncher, NoFallbackWiredReportsFailed) {
  SupervisorConfig config;
  config.max_attempts = 1;
  ResilientLauncher supervisor(config);
  SupervisedOp op;
  op.gpu = [] {};
  op.verify = [] { return false; };
  // op.cpu left null (stop-on-device-loss decode mode).
  EXPECT_EQ(supervisor.run(op).path, ComputePath::kFailed);
}

// --- supervised encoder against scripted device faults ---------------------

// The injector indexes launches device-wide. ResilientEncoder construction
// does not consume indices (the injector attaches after the segment
// preprocess); each encode attempt with a table scheme then issues two
// launches: coefficient preprocess (even index), encode kernel (odd index).
class ResilientEncoderFaults : public ::testing::Test {
 protected:
  static constexpr Params kParams{.n = 16, .k = 256};

  ResilientEncoderFaults() : rng_(11), segment_(Segment::random(kParams, rng_)) {}

  SupervisorConfig config() {
    SupervisorConfig config;
    config.watchdog_budget_s = 1e-3;  // a hang stalls ~1e6x past this
    config.verify_sample = 64;        // >= batch size: every row checked
    return config;
  }

  // Runs one supervised batch under `plan` and checks it against the
  // reference encoder row by row.
  OperationReport encode_and_check(const simgpu::FaultPlan& plan,
                                   std::size_t count = 6) {
    simgpu::FaultInjector injector(plan);
    ResilientLauncher supervisor(config(), &injector);
    ThreadPool pool(2);
    ResilientEncoder encoder(simgpu::gtx280(), segment_, EncodeScheme::kTable5,
                             pool, supervisor);
    const CodedBatch batch = encoder.encode_batch(count, rng_);
    const Encoder reference(segment_);
    std::vector<std::uint8_t> expected(kParams.k);
    for (std::size_t j = 0; j < batch.count(); ++j) {
      reference.encode_with_coefficients(batch.coefficients(j), expected);
      EXPECT_TRUE(std::equal(expected.begin(), expected.end(),
                             batch.payload(j).begin()))
          << "block " << j;
    }
    return encoder.last_report();
  }

  Rng rng_;
  Segment segment_;
};

TEST_F(ResilientEncoderFaults, NoFaultStaysOnGpuFirstTry) {
  const OperationReport report = encode_and_check(simgpu::FaultPlan{});
  EXPECT_EQ(report.path, ComputePath::kGpu);
  EXPECT_EQ(report.attempts, 1);
  EXPECT_EQ(report.corrupted_outputs, 0);
}

TEST_F(ResilientEncoderFaults, BitFlipDetectedByVerifierAndRetried) {
  simgpu::FaultPlan plan;
  plan.scripted[1] = simgpu::FaultClass::kBitFlip;  // encode kernel, try 1
  const OperationReport report = encode_and_check(plan);
  EXPECT_EQ(report.path, ComputePath::kGpu);
  EXPECT_EQ(report.attempts, 2);
  EXPECT_EQ(report.corrupted_outputs, 1);
}

TEST_F(ResilientEncoderFaults, HangTripsWatchdogAndRetried) {
  simgpu::FaultPlan plan;
  plan.scripted[1] = simgpu::FaultClass::kHang;
  const OperationReport report = encode_and_check(plan);
  EXPECT_EQ(report.path, ComputePath::kGpu);
  EXPECT_EQ(report.attempts, 2);
  EXPECT_EQ(report.watchdog_trips, 1);
  EXPECT_GT(report.backoff_s, 0.0);
}

TEST_F(ResilientEncoderFaults, LaunchFailureRetriedTransparently) {
  simgpu::FaultPlan plan;
  plan.scripted[0] = simgpu::FaultClass::kLaunchFailure;
  const OperationReport report = encode_and_check(plan);
  EXPECT_EQ(report.path, ComputePath::kGpu);
  EXPECT_EQ(report.attempts, 2);
  EXPECT_EQ(report.launch_failures, 1);
}

TEST_F(ResilientEncoderFaults, DeviceLossFallsBackToCpuBitExact) {
  simgpu::FaultPlan plan;
  plan.scripted[0] = simgpu::FaultClass::kDeviceLost;
  const OperationReport report = encode_and_check(plan);
  EXPECT_EQ(report.path, ComputePath::kCpuFallback);
  EXPECT_TRUE(report.device_lost);
}

TEST_F(ResilientEncoderFaults, PersistentCorruptionExhaustsRetriesThenCpu) {
  simgpu::FaultPlan plan;  // flip the encode kernel of all four attempts
  plan.scripted[1] = simgpu::FaultClass::kBitFlip;
  plan.scripted[3] = simgpu::FaultClass::kBitFlip;
  plan.scripted[5] = simgpu::FaultClass::kBitFlip;
  plan.scripted[7] = simgpu::FaultClass::kBitFlip;
  const OperationReport report = encode_and_check(plan);
  EXPECT_EQ(report.path, ComputePath::kCpuFallback);
  EXPECT_EQ(report.attempts, 4);
  EXPECT_EQ(report.corrupted_outputs, 4);
}

TEST_F(ResilientEncoderFaults, ScriptedBurstBackoffFollowsSimClockSchedule) {
  // Corrupt the encode kernel of attempts 1..3 (device-wide launch
  // indices 1, 3, 5); attempt 4 is clean. The supervisor must have slept
  // the exact geometric series in simulated seconds before it.
  simgpu::FaultPlan plan;
  plan.scripted[1] = simgpu::FaultClass::kBitFlip;
  plan.scripted[3] = simgpu::FaultClass::kBitFlip;
  plan.scripted[5] = simgpu::FaultClass::kBitFlip;
  simgpu::FaultInjector injector(plan);
  SupervisorConfig config = this->config();
  config.backoff_initial_s = 1e-3;
  config.backoff_factor = 2.0;
  ResilientLauncher supervisor(config, &injector);
  ThreadPool pool(2);
  ResilientEncoder encoder(simgpu::gtx280(), segment_, EncodeScheme::kTable5,
                           pool, supervisor);
  const CodedBatch batch = encoder.encode_batch(6, rng_);
  const OperationReport report = encoder.last_report();
  EXPECT_EQ(report.path, ComputePath::kGpu);
  EXPECT_EQ(report.attempts, 4);
  EXPECT_EQ(report.corrupted_outputs, 3);
  EXPECT_DOUBLE_EQ(report.backoff_s, 1e-3 * (1.0 + 2.0 + 4.0));
  EXPECT_DOUBLE_EQ(supervisor.totals().backoff_seconds, report.backoff_s);
  // Output stays bit-exact after the burst.
  const Encoder reference(segment_);
  std::vector<std::uint8_t> expected(kParams.k);
  for (std::size_t j = 0; j < batch.count(); ++j) {
    reference.encode_with_coefficients(batch.coefficients(j), expected);
    EXPECT_EQ(crc32c(expected), crc32c(batch.payload(j))) << j;
  }
}

TEST_F(ResilientEncoderFaults, BreakerHalfOpenProbeRecoversGpuAfterLoss) {
  // Device dies on the very first launch; a supervisor clock drives the
  // cool-down; the half-open probe (which clears the injector's sticky
  // lost state) brings the GPU path back. All batches stay bit-exact.
  simgpu::FaultPlan plan;
  plan.scripted[0] = simgpu::FaultClass::kDeviceLost;
  simgpu::FaultInjector injector(plan);
  SupervisorConfig config = this->config();
  config.breaker_cooldown_s = 5.0;
  ResilientLauncher supervisor(config, &injector);
  double now = 0.0;
  supervisor.set_clock([&now] { return now; });
  ThreadPool pool(2);
  ResilientEncoder encoder(simgpu::gtx280(), segment_, EncodeScheme::kTable5,
                           pool, supervisor);

  const CodedBatch dead = encoder.encode_batch(4, rng_);
  EXPECT_EQ(encoder.last_report().path, ComputePath::kCpuFallback);
  EXPECT_TRUE(supervisor.breaker_open());

  now = 2.0;  // within cool-down: still served by the CPU codec
  const CodedBatch shielded = encoder.encode_batch(4, rng_);
  EXPECT_EQ(encoder.last_report().path, ComputePath::kCpuFallback);
  EXPECT_EQ(encoder.last_report().attempts, 0);
  EXPECT_TRUE(supervisor.breaker_open());

  now = 6.0;  // cool-down elapsed: probe succeeds, breaker recloses
  const CodedBatch recovered = encoder.encode_batch(4, rng_);
  EXPECT_EQ(encoder.last_report().path, ComputePath::kGpu);
  EXPECT_FALSE(supervisor.breaker_open());

  const Encoder reference(segment_);
  std::vector<std::uint8_t> expected(kParams.k);
  for (const CodedBatch* batch : {&dead, &shielded, &recovered}) {
    for (std::size_t j = 0; j < batch->count(); ++j) {
      reference.encode_with_coefficients(batch->coefficients(j), expected);
      EXPECT_EQ(crc32c(expected), crc32c(batch->payload(j))) << j;
    }
  }
}

// --- checkpoint wire format ------------------------------------------------

TEST(DecodeCheckpoint, SerializeDeserializeRoundtrip) {
  Rng rng(21);
  const Params params{.n = 8, .k = 64};
  DecodeCheckpoint ck;
  ck.params = params;
  ck.done = {1, 0, 1};
  ck.decoded = {Segment::random(params, rng), Segment{},
                Segment::random(params, rng)};
  const auto bytes = ck.serialize();
  const auto back = DecodeCheckpoint::deserialize(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->params, params);
  EXPECT_EQ(back->done, ck.done);
  EXPECT_EQ(back->completed(), 2u);
  EXPECT_FALSE(back->complete());
  EXPECT_EQ(back->decoded[0], ck.decoded[0]);
  EXPECT_EQ(back->decoded[2], ck.decoded[2]);
}

TEST(DecodeCheckpoint, RejectsDamagedBytes) {
  Rng rng(22);
  const Params params{.n = 4, .k = 32};
  DecodeCheckpoint ck;
  ck.params = params;
  ck.done = {1, 1};
  ck.decoded = {Segment::random(params, rng), Segment::random(params, rng)};
  const auto bytes = ck.serialize();
  ASSERT_TRUE(DecodeCheckpoint::deserialize(bytes).has_value());

  auto flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x40;  // CRC catches payload damage
  EXPECT_FALSE(DecodeCheckpoint::deserialize(flipped).has_value());

  auto truncated = bytes;
  truncated.pop_back();
  EXPECT_FALSE(DecodeCheckpoint::deserialize(truncated).has_value());

  auto bad_magic = bytes;
  bad_magic[0] = 'Y';
  EXPECT_FALSE(DecodeCheckpoint::deserialize(bad_magic).has_value());

  EXPECT_FALSE(
      DecodeCheckpoint::deserialize(std::span<const std::uint8_t>{})
          .has_value());
}

// --- supervised multi-segment decode: fallback and checkpoint/resume -------

CodedBatch independent_batch(const Segment& segment, Rng& rng) {
  const Params& params = segment.params();
  const Encoder encoder(segment);
  coding::BlockDecoder probe(params);
  CodedBatch batch(params, params.n);
  std::size_t stored = 0;
  while (stored < params.n) {
    coding::CodedBlock block = encoder.encode(rng);
    if (!probe.add(block)) continue;
    std::copy(block.coefficients().begin(), block.coefficients().end(),
              batch.coefficients(stored).begin());
    std::copy(block.payload().begin(), block.payload().end(),
              batch.payload(stored).begin());
    ++stored;
  }
  return batch;
}

class ResilientMultiSegFaults : public ::testing::Test {
 protected:
  static constexpr Params kParams{.n = 8, .k = 64};
  static constexpr std::size_t kSegments = 4;

  ResilientMultiSegFaults() : rng_(31) {
    for (std::size_t s = 0; s < kSegments; ++s) {
      segments_.push_back(Segment::random(kParams, rng_));
      batches_.push_back(independent_batch(segments_.back(), rng_));
    }
  }

  // Device-wide launch count of one clean single-segment decode, so
  // scripted faults can target an exact segment.
  std::size_t launches_per_segment() {
    simgpu::FaultInjector probe{simgpu::FaultPlan{}};
    ResilientLauncher supervisor(SupervisorConfig{}, &probe);
    ThreadPool pool(2);
    ResilientMultiSegDecoder decoder(simgpu::gtx280(), kParams, pool,
                                     supervisor);
    const auto out = decoder.decode_all({batches_[0]});
    EXPECT_EQ(out[0], segments_[0]);
    EXPECT_GT(probe.counters().launches, 0u);
    return probe.counters().launches;
  }

  Rng rng_;
  std::vector<Segment> segments_;
  std::vector<CodedBatch> batches_;
};

TEST_F(ResilientMultiSegFaults, CleanDecodeStaysOnGpu) {
  ResilientLauncher supervisor;
  ThreadPool pool(2);
  ResilientMultiSegDecoder decoder(simgpu::gtx280(), kParams, pool,
                                   supervisor);
  const auto out = decoder.decode_all(batches_);
  for (std::size_t s = 0; s < kSegments; ++s) {
    EXPECT_EQ(out[s], segments_[s]) << s;
  }
  const MultiSegReport& report = decoder.last_report();
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.gpu_segments, kSegments);
  EXPECT_EQ(report.cpu_segments, 0u);
  EXPECT_EQ(report.from_checkpoint, 0u);
}

TEST_F(ResilientMultiSegFaults, DeviceLossMidDecodeDegradesToCpu) {
  // Lose the device on the first launch of segment 2's decode.
  simgpu::FaultPlan plan;
  plan.scripted[launches_per_segment() * 2] = simgpu::FaultClass::kDeviceLost;
  simgpu::FaultInjector injector(plan);
  ResilientLauncher supervisor(SupervisorConfig{}, &injector);
  ThreadPool pool(2);
  ResilientMultiSegDecoder decoder(simgpu::gtx280(), kParams, pool,
                                   supervisor);
  const auto out = decoder.decode_all(batches_);
  for (std::size_t s = 0; s < kSegments; ++s) {
    EXPECT_EQ(out[s], segments_[s]) << s;  // bit-exact despite the loss
  }
  const MultiSegReport& report = decoder.last_report();
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.gpu_segments, 2u);
  EXPECT_EQ(report.cpu_segments, 2u);
  EXPECT_TRUE(supervisor.breaker_open());
}

TEST_F(ResilientMultiSegFaults, CheckpointResumeRedoesNoCompletedSegment) {
  const std::size_t per_segment = launches_per_segment();

  // Phase 1: decode until the device dies at the start of segment 2.
  simgpu::FaultPlan plan;
  plan.scripted[per_segment * 2] = simgpu::FaultClass::kDeviceLost;
  simgpu::FaultInjector injector(plan);
  ResilientLauncher supervisor(SupervisorConfig{}, &injector);
  ThreadPool pool(2);
  ResilientMultiSegDecoder decoder(simgpu::gtx280(), kParams, pool,
                                   supervisor);
  DecodeCheckpoint ck;
  const auto partial = decoder.decode_all(batches_, &ck,
                                          /*stop_on_device_loss=*/true);
  EXPECT_TRUE(decoder.last_report().stopped_on_device_loss);
  EXPECT_FALSE(decoder.last_report().complete);
  EXPECT_EQ(ck.completed(), 2u);
  EXPECT_EQ(partial[0], segments_[0]);
  EXPECT_EQ(partial[1], segments_[1]);

  // The checkpoint travels as bytes (e.g. to a replacement device).
  const auto wire = ck.serialize();
  auto restored = DecodeCheckpoint::deserialize(wire);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->completed(), 2u);

  // Phase 2: resume on a healthy device. Completed segments are restored,
  // not recomputed: the new device sees launches for 2 segments only.
  simgpu::FaultInjector healthy{simgpu::FaultPlan{}};
  ResilientLauncher supervisor2(SupervisorConfig{}, &healthy);
  ResilientMultiSegDecoder decoder2(simgpu::gtx280(), kParams, pool,
                                    supervisor2);
  const auto out = decoder2.decode_all(batches_, &*restored);
  for (std::size_t s = 0; s < kSegments; ++s) {
    EXPECT_EQ(out[s], segments_[s]) << s;
  }
  const MultiSegReport& report = decoder2.last_report();
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.from_checkpoint, 2u);
  EXPECT_EQ(report.gpu_segments, 2u);
  EXPECT_EQ(report.cpu_segments, 0u);
  EXPECT_EQ(healthy.counters().launches, per_segment * 2);
  EXPECT_TRUE(restored->complete());
}

TEST_F(ResilientMultiSegFaults, BitFlipInDecodeCaughtBySegmentVerifier) {
  const std::size_t per_segment = launches_per_segment();
  // Flip device memory during every launch of segment 1's first attempt.
  simgpu::FaultPlan plan;
  for (std::size_t i = 0; i < per_segment; ++i) {
    plan.scripted[per_segment + i] = simgpu::FaultClass::kBitFlip;
  }
  simgpu::FaultInjector injector(plan);
  SupervisorConfig config;
  config.verify_sample = kParams.n;  // check every row of each segment
  ResilientLauncher supervisor(config, &injector);
  ThreadPool pool(2);
  ResilientMultiSegDecoder decoder(simgpu::gtx280(), kParams, pool,
                                   supervisor);
  const auto out = decoder.decode_all(batches_);
  for (std::size_t s = 0; s < kSegments; ++s) {
    EXPECT_EQ(out[s], segments_[s]) << s;
  }
  EXPECT_TRUE(decoder.last_report().complete);
  EXPECT_GT(supervisor.totals().corrupted_outputs, 0u);
  EXPECT_GT(supervisor.totals().retries, 0u);
}

// --- seed-encoder bridge ---------------------------------------------------

TEST(ResilientSeed, BoundSegmentClosureSurvivesDeviceLoss) {
  Rng rng(41);
  const Params params{.n = 8, .k = 64};
  const Segment segment = Segment::random(params, rng);
  simgpu::FaultPlan plan;
  plan.scripted[4] = simgpu::FaultClass::kDeviceLost;
  ResilientSeed seed(simgpu::gtx280(), EncodeScheme::kTable5,
                     SupervisorConfig{}, plan, /*threads=*/2,
                     /*blocks_per_launch=*/4);
  ASSERT_NE(seed.injector(), nullptr);
  auto encode = seed.bind_segment(segment);
  const Encoder reference(segment);
  std::vector<std::uint8_t> expected(params.k);
  // Enough blocks to cross the scripted loss; all must stay bit-exact.
  for (int i = 0; i < 24; ++i) {
    const coding::CodedBlock block = encode(rng);
    reference.encode_with_coefficients(block.coefficients(), expected);
    EXPECT_EQ(crc32c(expected), crc32c(block.payload())) << i;
  }
  EXPECT_TRUE(seed.supervisor().breaker_open());
  EXPECT_GT(seed.supervisor().totals().fallbacks, 0u);
}

TEST(ResilientSeed, BoundContentSplitsIntoGenerations) {
  Rng rng(42);
  const Params params{.n = 4, .k = 32};
  std::vector<std::uint8_t> content(params.segment_bytes() * 2 + 17);
  for (auto& b : content) b = static_cast<std::uint8_t>(rng.next_below(256));
  ResilientSeed seed(simgpu::gtx280(), EncodeScheme::kTable5);
  auto encode = seed.bind_content(params, content);
  // Generation 2 is the 17-byte tail, zero-padded to a full segment.
  coding::Segment tail = coding::Segment::from_bytes(
      params,
      std::span(content.data() + params.segment_bytes() * 2, std::size_t{17}));
  const Encoder reference(tail);
  std::vector<std::uint8_t> expected(params.k);
  for (int i = 0; i < 6; ++i) {
    const coding::CodedBlock block = encode(2, rng);
    reference.encode_with_coefficients(block.coefficients(), expected);
    EXPECT_EQ(crc32c(expected), crc32c(block.payload())) << i;
  }
}

}  // namespace
}  // namespace extnc::gpu
