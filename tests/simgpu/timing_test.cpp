#include "simgpu/timing.h"

#include <gtest/gtest.h>

#include "util/metrics_registry.h"

namespace extnc::simgpu {
namespace {

KernelMetrics base_metrics() {
  KernelMetrics m;
  m.set_alu_ops(1e9);
  m.blocks = 300;
  m.threads_per_block = 256;
  m.kernel_launches = 1;
  return m;
}

TEST(DeviceSpec, Gtx280PeakIpsNearPaperFigure) {
  // Sec. 4.3: the theoretical limit "translates to 360 GIPS" (240 SPs at
  // 1.458 GHz = 350 GIPS).
  EXPECT_NEAR(gtx280().peak_ips() / 1e9, 350.0, 5.0);
}

TEST(DeviceSpec, Gtx280HasTwiceTheComputeOf8800Gt) {
  const double ratio = gtx280().peak_ips() / geforce_8800gt().peak_ips();
  EXPECT_NEAR(ratio, 2.08, 0.05);  // 240*1.458 / (112*1.5)
}

TEST(Timing, ComputeBoundKernelScalesWithAluOps) {
  KernelMetrics m1 = base_metrics();
  KernelMetrics m2 = base_metrics();
  m2.set_alu_ops(2e9);
  const auto t1 = estimate_time(gtx280(), m1);
  const auto t2 = estimate_time(gtx280(), m2);
  EXPECT_NEAR(t2.compute_s / t1.compute_s, 2.0, 1e-9);
}

TEST(Timing, MemoryBoundKernelLimitedByBandwidth) {
  KernelMetrics m = base_metrics();
  m.set_alu_ops(1);  // negligible compute
  m.global_load_bytes = 1'000'000'000;
  m.global_transactions = 1'000'000'000 / 64;
  const auto t = estimate_time(gtx280(), m);
  EXPECT_NEAR(t.memory_s, 1e9 / gtx280().mem_bandwidth_bytes_per_s, 1e-6);
  EXPECT_GT(t.total_s, t.compute_s);
}

TEST(Timing, UncoalescedAccessesPayMinimumGranule) {
  // 1M scattered 1-byte loads: 1M transactions x 32 B granule, not 1 MB.
  KernelMetrics m = base_metrics();
  m.set_alu_ops(1);
  m.global_load_bytes = 1'000'000;
  m.global_transactions = 1'000'000;
  const auto t = estimate_time(gtx280(), m);
  EXPECT_NEAR(t.memory_s, 32e6 / gtx280().mem_bandwidth_bytes_per_s, 1e-9);
}

TEST(Timing, ConflictCyclesAddToComputeTime) {
  KernelMetrics clean = base_metrics();
  clean.shared_access_events = 1'000'000;
  clean.shared_serialized_cycles = 1'000'000;  // conflict-free
  KernelMetrics conflicted = base_metrics();
  conflicted.shared_access_events = 1'000'000;
  conflicted.shared_serialized_cycles = 3'000'000;  // 3-way conflicts
  const auto t_clean = estimate_time(gtx280(), clean);
  const auto t_conf = estimate_time(gtx280(), conflicted);
  EXPECT_GT(t_conf.compute_s, t_clean.compute_s);
}

TEST(Timing, TextureMissesCostMemoryBandwidth) {
  KernelMetrics m = base_metrics();
  m.set_alu_ops(1);
  m.texture_fetches = 1'000'000;
  m.texture_misses = 1'000'000;
  const auto t_cold = estimate_time(gtx280(), m);
  m.texture_misses = 0;
  const auto t_warm = estimate_time(gtx280(), m);
  EXPECT_GT(t_cold.memory_s, t_warm.memory_s);
}

TEST(Timing, OccupancyRampsWithWarps) {
  const auto& spec = gtx280();
  const double low = occupancy_factor(spec, 30, 32);    // 1 warp/SM
  const double high = occupancy_factor(spec, 300, 256); // many warps
  EXPECT_LT(low, 0.5);
  EXPECT_GT(high, 0.85);
  EXPECT_LT(high, 1.0);
}

TEST(Timing, FewBlocksLeaveSmsIdle) {
  // Same total work on 3 blocks vs 30 blocks: 3 blocks use 3 SMs.
  KernelMetrics m3 = base_metrics();
  m3.blocks = 3;
  KernelMetrics m30 = base_metrics();
  m30.blocks = 30;
  const auto t3 = estimate_time(gtx280(), m3);
  const auto t30 = estimate_time(gtx280(), m30);
  EXPECT_GT(t3.compute_s, 5.0 * t30.compute_s);
}

TEST(Timing, LaunchOverheadCountsPerLaunch) {
  KernelMetrics m = base_metrics();
  m.kernel_launches = 10;
  const Calibration calib;
  const auto t = estimate_time(gtx280(), m, calib);
  EXPECT_NEAR(t.launch_s, 10 * calib.launch_overhead_s, 1e-12);
}

TEST(Timing, ComputeAndMemoryOverlap) {
  KernelMetrics m = base_metrics();
  m.global_load_bytes = 100'000'000;
  m.global_transactions = 100'000'000 / 64;
  const auto t = estimate_time(gtx280(), m);
  EXPECT_NEAR(t.total_s, std::max(t.compute_s, t.memory_s) + t.launch_s,
              1e-12);
}

TEST(Timing, MemoizedEstimateIsBitIdenticalAndCounted) {
  clear_timing_memo();
  metrics::Registry::instance().reset();
  KernelMetrics m = base_metrics();
  m.global_load_bytes = 123'456'768;
  m.global_transactions = m.global_load_bytes / 64;
  m.shared_accesses = 77;
  m.shared_access_events = 11;
  m.shared_serialized_cycles = 22;

  const auto direct = estimate_time(gtx280(), m);
  const auto miss = estimate_time_cached(gtx280(), m);
  const auto hit = estimate_time_cached(gtx280(), m);

  // Cached results are the exact doubles the model produces — a cache hit
  // must never perturb modeled clocks.
  EXPECT_EQ(direct.compute_s, miss.compute_s);
  EXPECT_EQ(direct.memory_s, miss.memory_s);
  EXPECT_EQ(direct.launch_s, miss.launch_s);
  EXPECT_EQ(direct.total_s, miss.total_s);
  EXPECT_EQ(miss.compute_s, hit.compute_s);
  EXPECT_EQ(miss.memory_s, hit.memory_s);
  EXPECT_EQ(miss.launch_s, hit.launch_s);
  EXPECT_EQ(miss.total_s, hit.total_s);

  auto& registry = metrics::Registry::instance();
  EXPECT_EQ(registry.value("simgpu.timing.memo_hit"), 1.0);
  EXPECT_EQ(registry.value("simgpu.timing.memo_miss"), 1.0);

  // Different metrics (and different calibration) must not collide.
  KernelMetrics m2 = m;
  m2.texture_fetches = 5;
  const auto other = estimate_time_cached(gtx280(), m2);
  EXPECT_EQ(other.total_s, estimate_time(gtx280(), m2).total_s);
  Calibration calib;
  calib.launch_overhead_s *= 2;
  const auto recal = estimate_time_cached(gtx280(), m, calib);
  EXPECT_EQ(recal.launch_s, estimate_time(gtx280(), m, calib).launch_s);
  EXPECT_NE(recal.launch_s, hit.launch_s);
}

}  // namespace
}  // namespace extnc::simgpu
