#include "simgpu/profiler.h"

#include <gtest/gtest.h>

#include "simgpu/executor.h"
#include "simgpu/profile_report.h"

namespace extnc::simgpu {
namespace {

KernelMetrics small_metrics(std::uint64_t conflict_cycles) {
  KernelMetrics m;
  m.kernel_launches = 1;
  m.blocks = 30;
  m.threads_per_block = 256;
  m.set_alu_ops(1e6);
  m.global_load_bytes = 1 << 20;
  m.global_store_bytes = 1 << 18;
  m.global_transactions = 1 << 14;
  m.shared_accesses = 1 << 16;
  m.shared_access_events = 1 << 12;
  m.shared_serialized_cycles = conflict_cycles;
  return m;
}

TEST(Profiler, RecordsOneProfilePerLaunch) {
  Profiler profiler;
  profiler.record_launch(gtx280(), "a/k1", small_metrics(1 << 12));
  profiler.record_launch(gtx280(), "a/k2", small_metrics(1 << 13));
  ASSERT_EQ(profiler.launch_count(), 2u);
  EXPECT_EQ(profiler.launches()[0].label, "a/k1");
  EXPECT_EQ(profiler.launches()[1].label, "a/k2");
  EXPECT_EQ(profiler.launches()[0].device, std::string(gtx280().name));
  EXPECT_EQ(profiler.launches()[0].blocks, 30u);
  EXPECT_EQ(profiler.launches()[0].metrics.kernel_launches, 1u);
}

TEST(Profiler, TimelineIsBackToBackAndMonotonic) {
  Profiler profiler;
  profiler.record_launch(gtx280(), "k", small_metrics(1 << 12));
  profiler.record_launch(gtx280(), "k", small_metrics(1 << 12));
  const auto& l = profiler.launches();
  EXPECT_DOUBLE_EQ(l[0].start_s, 0.0);
  EXPECT_GT(l[0].end_s, l[0].start_s);
  EXPECT_DOUBLE_EQ(l[1].start_s, l[0].end_s);
  EXPECT_DOUBLE_EQ(profiler.total_seconds(), l[1].end_s);
}

TEST(Profiler, EmptyLabelDefaultsToKernel) {
  Profiler profiler;
  profiler.record_launch(gtx280(), "", small_metrics(1));
  EXPECT_EQ(profiler.launches()[0].label, "kernel");
}

TEST(Profiler, ByLabelAggregatesAndSortsByTime) {
  Profiler profiler;
  // "hot" runs twice with heavy conflicts; "cold" once, light.
  profiler.record_launch(gtx280(), "hot", small_metrics(1 << 20));
  profiler.record_launch(gtx280(), "hot", small_metrics(1 << 20));
  profiler.record_launch(gtx280(), "cold", small_metrics(0));
  const auto by_label = profiler.by_label();
  ASSERT_EQ(by_label.size(), 2u);
  EXPECT_EQ(by_label[0].label, "hot");
  EXPECT_EQ(by_label[0].launches, 2u);
  EXPECT_GE(by_label[0].total_s, by_label[1].total_s);
  EXPECT_DOUBLE_EQ(by_label[0].serialized_cycles_per_launch(),
                   static_cast<double>(1 << 20));
}

TEST(Profiler, LabelSummaryForUnknownLabelIsEmpty) {
  Profiler profiler;
  profiler.record_launch(gtx280(), "k", small_metrics(1));
  const auto summary = profiler.label_summary("never-ran");
  EXPECT_EQ(summary.launches, 0u);
  EXPECT_DOUBLE_EQ(summary.total_s, 0.0);
  EXPECT_DOUBLE_EQ(summary.serialized_cycles_per_launch(), 0.0);
}

TEST(Profiler, ClearResetsTimelineAndLaunches) {
  Profiler profiler;
  profiler.record_launch(gtx280(), "k", small_metrics(1));
  profiler.clear();
  EXPECT_EQ(profiler.launch_count(), 0u);
  EXPECT_DOUBLE_EQ(profiler.total_seconds(), 0.0);
}

TEST(Profiler, LauncherReportsPerLaunchDeltas) {
  // Two launches of different sizes: each LaunchProfile must carry only its
  // own launch's work, while the launcher keeps the cumulative total.
  Profiler profiler;
  Launcher launcher(gtx280());
  launcher.set_profiler(&profiler);
  launcher.set_launch_label("test/first");
  launcher.launch({.blocks = 2, .threads_per_block = 32},
                  [&](BlockCtx& block) {
                    block.step([&](ThreadCtx& t) { t.count_alu(1); });
                  });
  launcher.set_launch_label("test/second");
  launcher.launch({.blocks = 4, .threads_per_block = 32},
                  [&](BlockCtx& block) {
                    block.step([&](ThreadCtx& t) { t.count_alu(1); });
                  });
  ASSERT_EQ(profiler.launch_count(), 2u);
  const auto& first = profiler.launches()[0];
  const auto& second = profiler.launches()[1];
  EXPECT_EQ(first.label, "test/first");
  EXPECT_EQ(first.blocks, 2u);
  EXPECT_EQ(second.blocks, 4u);
  EXPECT_EQ(first.metrics.kernel_launches, 1u);
  EXPECT_DOUBLE_EQ(first.metrics.alu_ops(), 2.0 * 32);
  EXPECT_DOUBLE_EQ(second.metrics.alu_ops(), 4.0 * 32);
  // Cumulative launcher metrics unchanged by profiling.
  EXPECT_DOUBLE_EQ(launcher.metrics().alu_ops(), 6.0 * 32);
  EXPECT_EQ(launcher.metrics().kernel_launches, 2u);
  EXPECT_EQ(launcher.metrics().blocks, 4u);  // geometry of the last launch
}

TEST(ProfileReport, BottleneckBoundPicksDominantTerm) {
  EXPECT_STREQ(bottleneck_bound(3.0, 1.0, 0.5), "compute");
  EXPECT_STREQ(bottleneck_bound(1.0, 3.0, 0.5), "memory");
  EXPECT_STREQ(bottleneck_bound(1.0, 1.0, 5.0), "launch");
}

}  // namespace
}  // namespace extnc::simgpu
