// Unit tests for the closed-form access-pattern rules in static_model.h:
// each rule is held against a brute-force reference that mirrors the
// executor's dynamic dedup exactly, plus the structural invariants the
// kernel models rely on (uniform-shift degree invariance, SegmentBuilder
// histogram bookkeeping).
#include "simgpu/static_model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "simgpu/device_spec.h"
#include "util/rng.h"

namespace extnc::simgpu {
namespace {

// Reference degree: the executor's flush rule spelled out naively —
// distinct words per bank, worst bank, minimum 1.
std::uint64_t ref_degree(std::vector<std::uintptr_t> words,
                         std::uint32_t banks) {
  std::sort(words.begin(), words.end());
  words.erase(std::unique(words.begin(), words.end()), words.end());
  std::vector<std::uint64_t> per_bank(32, 0);
  for (std::uintptr_t w : words) ++per_bank[(w % banks) % 32];
  const std::uint64_t worst =
      *std::max_element(per_bank.begin(), per_bank.end());
  return std::max<std::uint64_t>(worst, 1);
}

// Reference transactions: record_global's dedup — both ends of every
// access contribute a segment, distinct segments are counted once.
std::uint64_t ref_transactions(const std::vector<std::uintptr_t>& addrs,
                               std::size_t access_bytes,
                               std::uint64_t segment_bytes) {
  std::set<std::uintptr_t> segments;
  for (std::uintptr_t a : addrs) {
    segments.insert(a / segment_bytes);
    segments.insert((a + access_bytes - 1) / segment_bytes);
  }
  return segments.size();
}

TEST(SharedGroupDegree, BroadcastIsDegreeOne) {
  std::vector<std::uintptr_t> words(16, 7);
  EXPECT_EQ(shared_group_degree(words.data(), words.size(), 16), 1u);
}

TEST(SharedGroupDegree, DistinctWordsOneBankSerializeFully) {
  // Words 16 apart all land in bank 0 of a 16-bank device.
  std::vector<std::uintptr_t> words;
  for (std::size_t l = 0; l < 16; ++l) words.push_back(l * 16);
  EXPECT_EQ(shared_group_degree(words.data(), words.size(), 16), 16u);
}

TEST(SharedGroupDegree, ConsecutiveWordsConflictFree) {
  std::vector<std::uintptr_t> words;
  for (std::size_t l = 0; l < 16; ++l) words.push_back(100 + l);
  EXPECT_EQ(shared_group_degree(words.data(), words.size(), 16), 1u);
}

TEST(SharedGroupDegree, MatchesReferenceOnRandomGroups) {
  Rng rng(21);
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t count = 1 + rng.next_below(16);
    const std::uint32_t banks = (trial % 2 == 0) ? 16u : 32u;
    std::vector<std::uintptr_t> words(count);
    for (auto& w : words) w = rng.next_below(256);
    EXPECT_EQ(shared_group_degree(words.data(), count, banks),
              ref_degree(words, banks))
        << "trial " << trial;
  }
}

// The invariance the cached table profile rests on: adding one uniform
// offset to every word in a group preserves distinctness and rotates
// banks together, so the serialization degree cannot change. (This is why
// exp-lookup degrees depend on log_c only through its word offset class.)
TEST(SharedGroupDegree, UniformShiftLeavesDegreeInvariant) {
  Rng rng(22);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t count = 1 + rng.next_below(16);
    std::vector<std::uintptr_t> words(count);
    for (auto& w : words) w = rng.next_below(512);
    const std::uint64_t base = shared_group_degree(words.data(), count, 16);
    for (std::uintptr_t shift : {1u, 2u, 8u, 64u, 100u}) {
      std::vector<std::uintptr_t> shifted = words;
      for (auto& w : shifted) w += shift;
      EXPECT_EQ(shared_group_degree(shifted.data(), count, 16), base)
          << "trial " << trial << " shift " << shift;
    }
  }
}

TEST(SpanTransactions, MatchesReferencePerByteDedup) {
  Rng rng(23);
  for (int trial = 0; trial < 500; ++trial) {
    const std::uintptr_t addr = rng.next_below(4096);
    const std::size_t span = 1 + rng.next_below(256);
    // A contiguous span is equivalent to byte accesses at every address.
    std::vector<std::uintptr_t> addrs;
    for (std::size_t b = 0; b < span; ++b) addrs.push_back(addr + b);
    EXPECT_EQ(span_transactions(addr, span, 64),
              ref_transactions(addrs, 1, 64))
        << "addr " << addr << " span " << span;
  }
}

TEST(SpanTransactions, AlignedSpanIsMinimal) {
  EXPECT_EQ(span_transactions(0, 64, 64), 1u);
  EXPECT_EQ(span_transactions(64, 64, 64), 1u);
  EXPECT_EQ(span_transactions(60, 8, 64), 2u);  // straddles one boundary
  EXPECT_EQ(span_transactions(0, 1, 64), 1u);   // broadcast byte
}

TEST(GroupTransactions, MatchesReferenceOnScatteredGroups) {
  Rng rng(24);
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t count = 1 + rng.next_below(16);
    const std::size_t access = (trial % 3 == 0) ? 1 : 4;
    std::vector<std::uintptr_t> addrs(count);
    for (auto& a : addrs) a = rng.next_below(8192);
    EXPECT_EQ(group_transactions(addrs.data(), count, access, 64),
              ref_transactions(addrs, access, 64))
        << "trial " << trial;
  }
}

TEST(TextureTableModel, SmallAlignedTableIsResident) {
  const DeviceSpec spec = gtx280();
  // The 512-entry exp table at a 64-byte-aligned base: 16 lines of 32
  // bytes, each in its own set of the direct-mapped cache.
  const TextureTableModel model = texture_table_model(0, 512, spec);
  EXPECT_EQ(model.lines, 16u);
  EXPECT_EQ(model.locality, TextureLocality::kResident);
}

TEST(TextureTableModel, SelfAliasingTableStreams) {
  const DeviceSpec spec = gtx280();
  // A table larger than the whole per-TPC cache must alias itself.
  const TextureTableModel model =
      texture_table_model(0, spec.texture_cache_bytes + 32, spec);
  EXPECT_EQ(model.locality, TextureLocality::kStreaming);
}

TEST(SegmentBuilder, HistogramInvariantsHold) {
  const DeviceSpec spec = gtx280();
  SegmentBuilder builder(spec, "test");
  const std::uintptr_t broadcast[4] = {9, 9, 9, 9};
  builder.add_shared_group(broadcast, 4, 3);  // degree 1, x3
  const std::uintptr_t conflicted[4] = {0, 16, 32, 48};
  builder.add_shared_group(conflicted, 4);  // degree 4
  builder.add_global_span(0, 64, 16, 64, 0);
  builder.add_alu_deciops(120);
  const SegmentModel seg = builder.finish(256, 2);

  EXPECT_EQ(seg.counters.shared_access_events, 4u);
  EXPECT_EQ(seg.counters.shared_accesses, 16u);
  EXPECT_EQ(seg.counters.shared_serialized_cycles, 3u * 1 + 4u);
  std::uint64_t events = 0, cycles = 0;
  for (std::size_t d = 1; d <= kMaxConflictDegree; ++d) {
    events += seg.degree_events[d];
    cycles += d * seg.degree_events[d];
  }
  EXPECT_EQ(events, seg.counters.shared_access_events);
  EXPECT_EQ(cycles, seg.counters.shared_serialized_cycles);
  EXPECT_EQ(seg.max_conflict_degree(), 4u);
  EXPECT_EQ(seg.counters.barriers, 2u);
  EXPECT_EQ(seg.step_width, 256u);
  // Shared accesses and global instructions each charge 1 op (10 deci).
  EXPECT_EQ(seg.counters.alu_deciops, 16u * 10 + 16u * 10 + 120u);
}

TEST(StaticKernelModel, TotalsMergeSegmentsAndGeometry) {
  const DeviceSpec spec = gtx280();
  StaticKernelModel model;
  model.blocks = 10;
  model.threads_per_block = 256;
  {
    SegmentBuilder builder(spec, "a");
    builder.add_global_span(0, 128, 32, 128, 0);
    model.segments.push_back(builder.finish(256, 10));
  }
  {
    SegmentBuilder builder(spec, "b");
    builder.add_global_span(0, 64, 16, 0, 64);
    model.segments.push_back(builder.finish(256, 10));
  }
  const KernelMetrics totals = model.totals();
  EXPECT_EQ(totals.kernel_launches, 1u);
  EXPECT_EQ(totals.blocks, 10u);
  EXPECT_EQ(totals.threads_per_block, 256u);
  EXPECT_EQ(totals.global_load_bytes, 128u);
  EXPECT_EQ(totals.global_store_bytes, 64u);
  EXPECT_EQ(totals.barriers, 20u);
  EXPECT_EQ(totals.global_transactions, 2u + 1u);
}

}  // namespace
}  // namespace extnc::simgpu
