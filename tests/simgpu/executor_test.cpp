#include "simgpu/executor.h"

#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace extnc::simgpu {
namespace {

TEST(Executor, RunsEveryThreadOfEveryBlock) {
  Launcher launcher(gtx280());
  std::vector<int> hits(4 * 64, 0);
  launcher.launch({.blocks = 4, .threads_per_block = 64}, [&](BlockCtx& block) {
    block.step([&](ThreadCtx& t) { hits[t.global_index()] += 1; });
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Executor, StepPartialRunsPrefixOnly) {
  Launcher launcher(gtx280());
  std::vector<int> hits(64, 0);
  launcher.launch({.blocks = 1, .threads_per_block = 64}, [&](BlockCtx& block) {
    block.step_partial(10, [&](ThreadCtx& t) { hits[t.lane()] += 1; });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], i < 10 ? 1 : 0);
}

TEST(Executor, StepsAreBarrierOrdered) {
  // Thread 0 writes shared in step 1; every thread reads it in step 2.
  Launcher launcher(gtx280());
  std::vector<std::uint32_t> seen(32, 0);
  launcher.launch({.blocks = 1, .threads_per_block = 32}, [&](BlockCtx& block) {
    block.step([&](ThreadCtx& t) {
      if (t.lane() == 31) t.sstore_u32(0, 1234);
    });
    block.step([&](ThreadCtx& t) { seen[t.lane()] = t.sload_u32(0); });
  });
  for (std::uint32_t v : seen) EXPECT_EQ(v, 1234u);
}

TEST(Executor, SharedMemoryDoesNotPersistAcrossBlocks) {
  Launcher launcher(gtx280());
  // Indexed by block (not push_back): kernels must only write
  // block-disjoint host state, since blocks may run on worker threads.
  std::vector<std::uint32_t> first_reads(7, 1);
  launcher.launch({.blocks = 7, .threads_per_block = 1}, [&](BlockCtx& block) {
    block.step([&](ThreadCtx& t) {
      first_reads[t.block_index()] = t.sload_u32(8);
      t.sstore_u32(8, 99);
    });
  });
  for (std::uint32_t v : first_reads) EXPECT_EQ(v, 0u);  // zeroed each block
}

TEST(Executor, GlobalLoadsReturnMemoryContents) {
  Launcher launcher(gtx280());
  std::vector<std::uint32_t> data(64);
  std::iota(data.begin(), data.end(), 100);
  std::vector<std::uint32_t> out(64, 0);
  launcher.launch({.blocks = 1, .threads_per_block = 64}, [&](BlockCtx& block) {
    block.step([&](ThreadCtx& t) {
      t.gstore_u32(&out[t.lane()], t.gload_u32(&data[t.lane()]) + 1);
    });
  });
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(out[i], data[i] + 1);
}

TEST(Executor, CoalescedLoadsProduceFewTransactions) {
  // 16 lanes x consecutive 4-byte words = one 64-byte segment.
  Launcher launcher(gtx280());
  alignas(64) std::uint32_t data[16] = {};
  launcher.launch({.blocks = 1, .threads_per_block = 16}, [&](BlockCtx& block) {
    block.step([&](ThreadCtx& t) { (void)t.gload_u32(&data[t.lane()]); });
  });
  EXPECT_EQ(launcher.metrics().global_transactions, 1u);
}

TEST(Executor, BroadcastLoadIsOneTransaction) {
  Launcher launcher(gtx280());
  alignas(64) std::uint32_t value = 7;
  launcher.launch({.blocks = 1, .threads_per_block = 16}, [&](BlockCtx& block) {
    block.step([&](ThreadCtx& t) { (void)t.gload_u32(&value); });
  });
  EXPECT_EQ(launcher.metrics().global_transactions, 1u);
}

TEST(Executor, StridedLoadsProduceManyTransactions) {
  Launcher launcher(gtx280());
  alignas(64) static std::uint32_t data[16 * 64] = {};
  launcher.launch({.blocks = 1, .threads_per_block = 16}, [&](BlockCtx& block) {
    block.step([&](ThreadCtx& t) {
      (void)t.gload_u32(&data[t.lane() * 64]);  // 256-byte stride
    });
  });
  EXPECT_EQ(launcher.metrics().global_transactions, 16u);
}

TEST(Executor, SharedConflictFreeAccessCostsOneCyclePerEvent) {
  Launcher launcher(gtx280());
  launcher.launch({.blocks = 1, .threads_per_block = 16}, [&](BlockCtx& block) {
    block.step([&](ThreadCtx& t) {
      (void)t.sload_u32(t.lane() * 4);  // lane i -> bank i
    });
  });
  EXPECT_EQ(launcher.metrics().shared_access_events, 1u);
  EXPECT_EQ(launcher.metrics().shared_serialized_cycles, 1u);
  EXPECT_DOUBLE_EQ(launcher.metrics().shared_conflict_degree(), 1.0);
}

TEST(Executor, SharedSameWordBroadcastsWithoutConflict) {
  Launcher launcher(gtx280());
  launcher.launch({.blocks = 1, .threads_per_block = 16}, [&](BlockCtx& block) {
    block.step([&](ThreadCtx& t) { (void)t.sload_u32(64); });
  });
  EXPECT_EQ(launcher.metrics().shared_serialized_cycles, 1u);
}

TEST(Executor, SharedSameBankDifferentWordsSerializes) {
  // All 16 lanes hit bank 0 with different words: 16-way conflict.
  Launcher launcher(gtx280());
  launcher.launch({.blocks = 1, .threads_per_block = 16}, [&](BlockCtx& block) {
    block.step([&](ThreadCtx& t) {
      (void)t.sload_u32(t.lane() * 16 * 4);  // stride of 16 words
    });
  });
  EXPECT_EQ(launcher.metrics().shared_access_events, 1u);
  EXPECT_EQ(launcher.metrics().shared_serialized_cycles, 16u);
}

TEST(Executor, TwoWayConflictCostsTwoCycles) {
  Launcher launcher(gtx280());
  launcher.launch({.blocks = 1, .threads_per_block = 16}, [&](BlockCtx& block) {
    block.step([&](ThreadCtx& t) {
      // Lanes 0..7 -> banks 0..7 words 0..7; lanes 8..15 -> banks 0..7,
      // words 16..23: each bank serves two distinct words.
      const std::size_t word = (t.lane() % 8) + (t.lane() / 8) * 16;
      (void)t.sload_u32(word * 4);
    });
  });
  EXPECT_EQ(launcher.metrics().shared_serialized_cycles, 2u);
}

TEST(Executor, HalfWarpsAreIndependentForConflicts) {
  // 32 lanes; within each half-warp all banks distinct: conflict-free,
  // 2 events total.
  Launcher launcher(gtx280());
  launcher.launch({.blocks = 1, .threads_per_block = 32}, [&](BlockCtx& block) {
    block.step([&](ThreadCtx& t) { (void)t.sload_u32((t.lane() % 16) * 4); });
  });
  EXPECT_EQ(launcher.metrics().shared_access_events, 2u);
  EXPECT_EQ(launcher.metrics().shared_serialized_cycles, 2u);
}

TEST(Executor, TextureCacheHitsAfterFirstTouch) {
  Launcher launcher(gtx280());
  alignas(64) static std::uint32_t table[256] = {};
  launcher.launch({.blocks = 1, .threads_per_block = 32}, [&](BlockCtx& block) {
    block.step([&](ThreadCtx& t) { (void)t.tex1d_u32(table, t.lane() % 8); });
    block.step([&](ThreadCtx& t) { (void)t.tex1d_u32(table, t.lane() % 8); });
  });
  const auto& m = launcher.metrics();
  EXPECT_EQ(m.texture_fetches, 64u);
  EXPECT_LE(m.texture_misses, 2u);  // 8 words span at most 2 lines
  EXPECT_GT(m.texture_hit_rate(), 0.9);
}

TEST(Executor, AtomicMinComputesMinimum) {
  Launcher launcher(gtx280());
  std::uint32_t result = 0;
  launcher.launch({.blocks = 1, .threads_per_block = 32}, [&](BlockCtx& block) {
    block.step([&](ThreadCtx& t) {
      if (t.lane() == 0) t.sstore_u32(0, 0xffffffffu);
    });
    block.step([&](ThreadCtx& t) {
      t.atomic_min_shared(0, static_cast<std::uint32_t>(100 - t.lane()));
    });
    block.step([&](ThreadCtx& t) {
      if (t.lane() == 0) result = t.sload_u32(0);
    });
  });
  EXPECT_EQ(result, 69u);  // min(100-31 .. 100-0)
  EXPECT_EQ(launcher.metrics().atomic_ops, 32u);
}

TEST(ExecutorDeathTest, AtomicMinNeedsHardwareSupport) {
  Launcher launcher(geforce_8800gt());
  EXPECT_DEATH(
      launcher.launch({.blocks = 1, .threads_per_block = 1},
                      [&](BlockCtx& block) {
                        block.step([&](ThreadCtx& t) {
                          t.atomic_min_shared(0, 1);
                        });
                      }),
      "EXTNC_CHECK");
}

TEST(ExecutorDeathTest, TooManyThreadsPerBlockAborts) {
  Launcher launcher(gtx280());
  EXPECT_DEATH(
      launcher.launch({.blocks = 1, .threads_per_block = 513},
                      [](BlockCtx&) {}),
      "EXTNC_CHECK");
}

TEST(Executor, BarrierAndLaunchCountsAccumulate) {
  Launcher launcher(gtx280());
  launcher.launch({.blocks = 2, .threads_per_block = 8}, [](BlockCtx& block) {
    block.step([](ThreadCtx&) {});
    block.step([](ThreadCtx&) {});
  });
  launcher.launch({.blocks = 1, .threads_per_block = 8}, [](BlockCtx& block) {
    block.step([](ThreadCtx&) {});
  });
  EXPECT_EQ(launcher.metrics().kernel_launches, 2u);
  EXPECT_EQ(launcher.metrics().barriers, 5u);  // 2 blocks x 2 + 1
}

TEST(Executor, CountAluAccumulates) {
  Launcher launcher(gtx280());
  launcher.launch({.blocks = 1, .threads_per_block = 10}, [](BlockCtx& block) {
    block.step([](ThreadCtx& t) { t.count_alu(2.5); });
  });
  EXPECT_DOUBLE_EQ(launcher.metrics().alu_ops(), 25.0);
}

}  // namespace
}  // namespace extnc::simgpu
