// Edge cases of the memory-system accounting: misaligned accesses,
// byte-granular shared banking, skip_access alignment, texture-cache
// conflict eviction.
#include <gtest/gtest.h>

#include "simgpu/executor.h"

namespace extnc::simgpu {
namespace {

TEST(ExecutorEdge, MisalignedWordSpansTwoSegments) {
  // A 4-byte load straddling a 64-byte boundary costs two transactions.
  Launcher launcher(gtx280());
  alignas(64) static std::uint8_t data[128] = {};
  launcher.launch({.blocks = 1, .threads_per_block = 1}, [&](BlockCtx& block) {
    block.step([&](ThreadCtx& t) { (void)t.gload_u32(data + 62); });
  });
  EXPECT_EQ(launcher.metrics().global_transactions, 2u);
}

TEST(ExecutorEdge, ByteAccessesInSameWordBroadcast) {
  // 4 lanes reading 4 different bytes of ONE 32-bit shared word: a single
  // broadcast-eligible word, one cycle.
  Launcher launcher(gtx280());
  launcher.launch({.blocks = 1, .threads_per_block = 4}, [&](BlockCtx& block) {
    block.step([&](ThreadCtx& t) { (void)t.sload_u8(100 + t.lane() % 4); });
  });
  EXPECT_EQ(launcher.metrics().shared_serialized_cycles, 1u);
}

TEST(ExecutorEdge, ByteAccessesInSameBankDifferentWordsConflict) {
  // Lanes 0..3 read bytes at offsets 0 and 64 alternating: bank 0, two
  // distinct words -> 2-way conflict.
  Launcher launcher(gtx280());
  launcher.launch({.blocks = 1, .threads_per_block = 4}, [&](BlockCtx& block) {
    block.step([&](ThreadCtx& t) {
      (void)t.sload_u8((t.lane() % 2) * 64);
    });
  });
  EXPECT_EQ(launcher.metrics().shared_serialized_cycles, 2u);
}

TEST(ExecutorEdge, SkipAccessKeepsLanesGrouped) {
  // Half the lanes skip one access; the following loads must still group
  // into a single coalesced transaction per step.
  Launcher launcher(gtx280());
  alignas(64) static std::uint32_t table[64] = {};
  alignas(64) static std::uint32_t stream[16] = {};
  launcher.launch({.blocks = 1, .threads_per_block = 16}, [&](BlockCtx& block) {
    block.step([&](ThreadCtx& t) {
      if (t.lane() % 2 == 0) {
        (void)t.gload_u32(&table[t.lane()]);
      } else {
        t.skip_access();
      }
      (void)t.gload_u32(&stream[t.lane()]);  // all lanes, consecutive
    });
  });
  // Access 1: 8 even lanes over 64 words -> <= 2 segments. Access 2: one
  // segment. Without skip_access the groups would interleave and blow up.
  EXPECT_LE(launcher.metrics().global_transactions, 3u);
}

TEST(ExecutorEdge, TextureCacheConflictEviction) {
  // Two addresses mapping to the same direct-mapped line evict each other:
  // every access misses.
  const auto& spec = gtx280();
  Launcher launcher(spec);
  const std::size_t stride = spec.texture_cache_bytes;  // same set
  static std::vector<std::uint8_t> arena(3 * 8192 + 64);
  launcher.launch({.blocks = 1, .threads_per_block = 1}, [&](BlockCtx& block) {
    block.step([&](ThreadCtx& t) {
      for (int rep = 0; rep < 8; ++rep) {
        (void)t.tex1d_u8(arena.data(), 0);
        (void)t.tex1d_u8(arena.data(), stride);
      }
    });
  });
  EXPECT_EQ(launcher.metrics().texture_misses, 16u);
}

TEST(ExecutorEdge, TextureCachePersistsAcrossLaunches) {
  Launcher launcher(gtx280());
  static std::uint8_t table[64] = {};
  auto kernel = [&](BlockCtx& block) {
    block.step([&](ThreadCtx& t) { (void)t.tex1d_u8(table, 0); });
  };
  launcher.launch({.blocks = 1, .threads_per_block = 1}, kernel);
  const auto first_misses = launcher.metrics().texture_misses;
  launcher.launch({.blocks = 1, .threads_per_block = 1}, kernel);
  EXPECT_EQ(launcher.metrics().texture_misses, first_misses);  // warm hit
  launcher.invalidate_texture_cache();
  launcher.launch({.blocks = 1, .threads_per_block = 1}, kernel);
  EXPECT_EQ(launcher.metrics().texture_misses, first_misses + 1);
}

TEST(ExecutorEdge, SeparateStepsDoNotCoalesceTogether) {
  // The same scattered addresses in two separate steps cost twice the
  // transactions — steps are distinct issue points.
  Launcher launcher(gtx280());
  alignas(64) static std::uint32_t data[16] = {};
  launcher.launch({.blocks = 1, .threads_per_block = 16}, [&](BlockCtx& block) {
    block.step([&](ThreadCtx& t) { (void)t.gload_u32(&data[t.lane()]); });
    block.step([&](ThreadCtx& t) { (void)t.gload_u32(&data[t.lane()]); });
  });
  EXPECT_EQ(launcher.metrics().global_transactions, 2u);
}

TEST(ExecutorEdge, StoreAndLoadCountSeparately) {
  Launcher launcher(gtx280());
  alignas(64) static std::uint32_t data[16] = {};
  launcher.launch({.blocks = 1, .threads_per_block = 16}, [&](BlockCtx& block) {
    block.step([&](ThreadCtx& t) {
      const std::uint32_t v = t.gload_u32(&data[t.lane()]);
      t.gstore_u32(&data[t.lane()], v + 1);
    });
  });
  EXPECT_EQ(launcher.metrics().global_load_bytes, 64u);
  EXPECT_EQ(launcher.metrics().global_store_bytes, 64u);
  EXPECT_EQ(launcher.metrics().global_transactions, 2u);
}

}  // namespace
}  // namespace extnc::simgpu
