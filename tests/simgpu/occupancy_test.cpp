#include "simgpu/occupancy.h"

#include <gtest/gtest.h>

namespace extnc::simgpu {
namespace {

TEST(Occupancy, EncodeKernelGeometryFillsHalfTheSm) {
  // 256 threads, light register use, ~2.5 KB shared (one exp table set):
  // 3 blocks would exceed 1024 threads... 4 blocks = 1024 threads exactly.
  const OccupancyResult r = compute_occupancy(
      gtx280(),
      {.threads_per_block = 256,
       .registers_per_thread = 16,
       .shared_bytes_per_block = 2048});
  EXPECT_EQ(r.blocks_per_sm, 4u);  // register-limited: 16*256=4096 regs/block
  EXPECT_EQ(r.warps_per_sm, 32u);
  EXPECT_DOUBLE_EQ(r.occupancy, 1.0);
}

TEST(Occupancy, Table5KernelIsSharedMemoryLimited) {
  // The 8 replicated word tables fill all 16 KB: exactly one resident
  // block per SM — the paper's deliberate one-block-per-SM geometry.
  const OccupancyResult r = compute_occupancy(
      gtx280(),
      {.threads_per_block = 256,
       .registers_per_thread = 16,
       .shared_bytes_per_block = 16 * 1024});
  EXPECT_EQ(r.blocks_per_sm, 1u);
  EXPECT_EQ(r.limiter, OccupancyResult::Limiter::kSharedMemory);
  EXPECT_NEAR(r.occupancy, 0.25, 1e-9);  // 8 of 32 warps
}

TEST(Occupancy, SkinnyDecodeBlockLeavesSmEmpty) {
  // (n + k/30)/4 threads at small k: e.g. 40 threads -> 2 warps even with
  // 8 block slots filled... but the decoder launches ONE block per SM, so
  // the caller passes the effective single block.
  const OccupancyResult r = compute_occupancy(
      gtx280(),
      {.threads_per_block = 40,
       .registers_per_thread = 16,
       .shared_bytes_per_block = 1024});
  EXPECT_EQ(r.blocks_per_sm, 8u);  // block-slot limited
  EXPECT_EQ(r.limiter, OccupancyResult::Limiter::kBlockSlots);
  EXPECT_LT(r.occupancy, 0.55);
}

TEST(Occupancy, RegisterPressureCutsResidency) {
  const OccupancyResult light = compute_occupancy(
      gtx280(), {.threads_per_block = 256,
                 .registers_per_thread = 10,
                 .shared_bytes_per_block = 1024});
  const OccupancyResult heavy = compute_occupancy(
      gtx280(), {.threads_per_block = 256,
                 .registers_per_thread = 40,
                 .shared_bytes_per_block = 1024});
  EXPECT_GT(light.blocks_per_sm, heavy.blocks_per_sm);
  EXPECT_EQ(heavy.limiter, OccupancyResult::Limiter::kRegisters);
}

TEST(Occupancy, G92HasTighterLimitsThanGt200) {
  const KernelResources kernel{.threads_per_block = 256,
                               .registers_per_thread = 16,
                               .shared_bytes_per_block = 1024};
  const OccupancyResult gt200 = compute_occupancy(gtx280(), kernel);
  const OccupancyResult g92 = compute_occupancy(geforce_8800gt(), kernel);
  EXPECT_LT(g92.blocks_per_sm, gt200.blocks_per_sm);
}

TEST(Occupancy, MaxThreadsBlockIsThreadLimited) {
  const OccupancyResult r = compute_occupancy(
      gtx280(), {.threads_per_block = 512,
                 .registers_per_thread = 8,
                 .shared_bytes_per_block = 512});
  EXPECT_EQ(r.blocks_per_sm, 2u);
  EXPECT_EQ(r.limiter, OccupancyResult::Limiter::kThreads);
}

TEST(OccupancyDeathTest, OversizedBlockAborts) {
  EXPECT_DEATH(compute_occupancy(gtx280(), {.threads_per_block = 1024}),
               "EXTNC_CHECK");
}

}  // namespace
}  // namespace extnc::simgpu
