// The kernel sanitizer: hazard detection with lane/segment attribution,
// OOB suppression, barrier-divergence and stale-read checks, advisory perf
// lints, throw/collect modes, env + LaunchConfig opt-in plumbing, engine
// bit-equivalence of reports, and composition with the fault injector.
#include "simgpu/checker.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "simgpu/device_spec.h"
#include "simgpu/exec_engine.h"
#include "simgpu/executor.h"
#include "simgpu/fault_injector.h"
#include "util/metrics_registry.h"

namespace extnc::simgpu {
namespace {

std::size_t count_of(const CheckReport& report, CheckKind kind) {
  return static_cast<std::size_t>(
      report.counts[static_cast<std::size_t>(kind)]);
}

CheckConfig collect_config() {
  CheckConfig config;
  config.mode = CheckConfig::Mode::kCollect;
  return config;
}

// A collect-mode checker attached to a gtx280 launcher, the setup most
// tests want: launches never throw, the cumulative report is inspected.
struct Harness {
  Checker checker;
  Launcher launcher;

  explicit Harness(CheckConfig config = collect_config(),
                   const DeviceSpec& spec = gtx280())
      : checker(config), launcher(spec) {
    launcher.set_checker(&checker);
    launcher.set_launch_label("test/kernel");
  }

  const CheckReport& report() const { return checker.report(); }
};

// Saves/restores EXTNC_SIMGPU_CHECK around env-driven opt-in tests.
class ScopedEnv {
 public:
  explicit ScopedEnv(const char* value) {
    const char* old = std::getenv(kName);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value == nullptr) {
      ::unsetenv(kName);
    } else {
      ::setenv(kName, value, 1);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(kName, old_.c_str(), 1);
    } else {
      ::unsetenv(kName);
    }
  }

 private:
  static constexpr const char* kName = "EXTNC_SIMGPU_CHECK";
  bool had_old_ = false;
  std::string old_;
};

// --- shared-memory hazards ----------------------------------------------

TEST(CheckerHazards, WriteWriteAttributesFirstPairAndCountsTheRest) {
  Harness h;
  h.launcher.launch({.blocks = 1, .threads_per_block = 16},
                    [](BlockCtx& block) {
                      block.step([](ThreadCtx& t) {
                        t.sstore_u8(0, static_cast<std::uint8_t>(t.lane()));
                      });
                    });
  const CheckReport& report = h.report();
  // Lane 0's write is hazard-free; each of lanes 1..15 races the previous
  // writer. One finding per (byte, segment); every event counted.
  EXPECT_EQ(count_of(report, CheckKind::kSharedWriteWrite), 15u);
  ASSERT_EQ(report.findings.size(), 1u);
  const CheckFinding& f = report.findings[0];
  EXPECT_EQ(f.kind, CheckKind::kSharedWriteWrite);
  EXPECT_EQ(f.label, "test/kernel");
  EXPECT_EQ(f.block, 0u);
  EXPECT_EQ(f.segment, 0u);
  EXPECT_EQ(f.lane, 1u);
  EXPECT_EQ(f.other_lane, 0u);
  EXPECT_EQ(f.address, 0u);
  EXPECT_EQ(report.checked_launches, 1u);
}

TEST(CheckerHazards, ReadAfterWriteInOneSegmentIsFlagged) {
  Harness h;
  h.launcher.launch({.blocks = 1, .threads_per_block = 16},
                    [](BlockCtx& block) {
                      block.step([](ThreadCtx& t) {
                        if (t.lane() == 0) {
                          t.sstore_u8(0, 1);
                        } else if (t.lane() == 5) {
                          (void)t.sload_u8(0);
                        }
                      });
                    });
  const CheckReport& report = h.report();
  EXPECT_EQ(count_of(report, CheckKind::kSharedReadWrite), 1u);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].kind, CheckKind::kSharedReadWrite);
  EXPECT_EQ(report.findings[0].lane, 5u);
  EXPECT_EQ(report.findings[0].other_lane, 0u);
}

TEST(CheckerHazards, BarrierSeparatesSegmentsAndAttributesThem) {
  Harness h;
  h.launcher.launch(
      {.blocks = 1, .threads_per_block = 16}, [](BlockCtx& block) {
        // Segment 0: a single write — clean.
        block.step([](ThreadCtx& t) {
          if (t.lane() == 0) t.sstore_u8(0, 1);
        });
        // Segment 1: reading byte 0 across the barrier is fine; the
        // lanes 1.. writes to byte 4 race each other *in segment 1*.
        block.step([](ThreadCtx& t) {
          if (t.lane() == 0) {
            (void)t.sload_u8(0);
          } else {
            t.sstore_u8(4, 2);
          }
        });
      });
  const CheckReport& report = h.report();
  EXPECT_EQ(count_of(report, CheckKind::kSharedReadWrite), 0u);
  EXPECT_EQ(count_of(report, CheckKind::kSharedWriteWrite), 14u);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].segment, 1u);
  EXPECT_EQ(report.findings[0].address, 4u);
}

TEST(CheckerHazards, AtomicPairsAreExempt) {
  Harness h;
  LaunchConfig config{.blocks = 1, .threads_per_block = 16};
  config.shape.partial_counts = {1};
  h.launcher.launch(config, [](BlockCtx& block) {
    block.step_partial(1,
                       [](ThreadCtx& t) { t.sstore_u32(0, 0xffffffffu); });
    block.step([](ThreadCtx& t) {
      (void)t.atomic_min_shared(0, static_cast<std::uint32_t>(t.lane()));
    });
  });
  EXPECT_TRUE(h.report().clean()) << h.report().to_string();
}

TEST(CheckerHazards, AtomicAgainstPlainWriteIsStillAHazard) {
  Harness h;
  LaunchConfig config{.blocks = 1, .threads_per_block = 16};
  config.shape.partial_counts = {1};
  h.launcher.launch(config, [](BlockCtx& block) {
    block.step_partial(1, [](ThreadCtx& t) { t.sstore_u32(0, 100); });
    block.step([](ThreadCtx& t) {
      if (t.lane() == 0) {
        t.sstore_u32(0, 5);  // plain write...
      } else if (t.lane() == 1) {
        (void)t.atomic_min_shared(0, 3);  // ...races the atomic RMW
      }
    });
  });
  const CheckReport& report = h.report();
  EXPECT_GT(report.errors(), 0u);
  EXPECT_GE(count_of(report, CheckKind::kSharedReadWrite), 1u);
}

// --- bounds and alignment -----------------------------------------------

TEST(CheckerBounds, SharedOobIsSuppressedAndReported) {
  Harness h;
  const std::size_t size = gtx280().shared_mem_per_sm;
  std::vector<std::uint8_t> loaded(16, 0xee);
  h.launcher.launch({.blocks = 1, .threads_per_block = 16},
                    [&](BlockCtx& block) {
                      block.step([&](ThreadCtx& t) {
                        loaded[t.lane()] = t.sload_u8(size + t.lane());
                      });
                    });
  EXPECT_EQ(count_of(h.report(), CheckKind::kSharedOob), 16u);
  // Suppressed loads read 0 so the checked run completes deterministically.
  for (std::uint8_t v : loaded) EXPECT_EQ(v, 0u);
  ASSERT_FALSE(h.report().findings.empty());
  EXPECT_EQ(h.report().findings[0].address, size);
  EXPECT_EQ(h.report().findings[0].size, 1u);
}

TEST(CheckerBoundsDeathTest, UncheckedSharedOobAbortsEvenInRelease) {
  // Satellite of the sanitizer work: SharedMemory accessors bounds-check
  // with EXTNC_CHECK (never EXTNC_DASSERT), so an *unchecked* OOB access
  // aborts instead of corrupting the heap — in release builds too.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ScopedEnv env(nullptr);  // no env opt-in: genuinely unchecked
  Launcher launcher(gtx280());
  EXPECT_DEATH(
      launcher.launch({.blocks = 1, .threads_per_block = 1},
                      [](BlockCtx& block) {
                        block.step([](ThreadCtx& t) {
                          (void)t.sload_u8(1u << 20);
                        });
                      }),
      "EXTNC_CHECK failed");
}

TEST(CheckerBounds, MisalignedSharedU32) {
  Harness h;
  h.launcher.launch({.blocks = 1, .threads_per_block = 16},
                    [](BlockCtx& block) {
                      block.step([](ThreadCtx& t) {
                        if (t.lane() == 0) t.sstore_u32(2, 1);
                      });
                    });
  EXPECT_EQ(count_of(h.report(), CheckKind::kSharedMisaligned), 1u);
  ASSERT_FALSE(h.report().findings.empty());
  EXPECT_EQ(h.report().findings[0].address, 2u);
  EXPECT_EQ(h.report().findings[0].size, 4u);
}

TEST(CheckerBounds, GlobalOobAgainstWatchedRegions) {
  Harness h;
  std::vector<std::uint8_t> buffer(64, 0xaa);
  Checker::ScopedWatch watch(&h.checker, buffer.data(), buffer.size(), "buf");
  std::vector<std::uint8_t> loaded(16, 0xee);
  h.launcher.launch({.blocks = 1, .threads_per_block = 16},
                    [&](BlockCtx& block) {
                      // In-bounds sweep: clean.
                      block.step([&](ThreadCtx& t) {
                        (void)t.gload_u8(buffer.data() + t.lane());
                      });
                      // One past the end and further: OOB, loads read 0.
                      block.step([&](ThreadCtx& t) {
                        loaded[t.lane()] =
                            t.gload_u8(buffer.data() + 64 + t.lane());
                      });
                    });
  EXPECT_EQ(count_of(h.report(), CheckKind::kGlobalOob), 16u);
  for (std::uint8_t v : loaded) EXPECT_EQ(v, 0u);
}

TEST(CheckerBounds, GlobalBoundsNeedRegionsButAlignmentDoesNot) {
  // With no watched regions only alignment is enforced: arbitrary host
  // pointers stay legal (kernels routinely mix watched and plain memory).
  Harness h;
  alignas(4) std::uint8_t data[64] = {};
  h.launcher.launch({.blocks = 1, .threads_per_block = 4},
                    [&](BlockCtx& block) {
                      block.step([&](ThreadCtx& t) {
                        (void)t.gload_u8(data + t.lane());  // unwatched: fine
                      });
                      block.step([&](ThreadCtx& t) {
                        if (t.lane() == 0) (void)t.gload_u32(data + 1);
                      });
                    });
  EXPECT_EQ(count_of(h.report(), CheckKind::kGlobalOob), 0u);
  EXPECT_EQ(count_of(h.report(), CheckKind::kGlobalMisaligned), 1u);
}

// --- barrier divergence and stale reads ---------------------------------

TEST(CheckerDivergence, UndeclaredPartialStepIsFlaggedOncePerBlock) {
  Harness h;
  h.launcher.launch({.blocks = 1, .threads_per_block = 16},
                    [](BlockCtx& block) {
                      block.step_partial(3, [](ThreadCtx& t) {
                        t.sstore_u32(t.lane() * 4, 1);
                      });
                      block.step_partial(3, [](ThreadCtx& t) {
                        t.sstore_u32(t.lane() * 4, 2);
                      });
                    });
  const CheckReport& report = h.report();
  EXPECT_EQ(count_of(report, CheckKind::kBarrierDivergence), 2u);
  ASSERT_EQ(report.findings.size(), 1u);  // deduped per undeclared width
  EXPECT_EQ(report.findings[0].kind, CheckKind::kBarrierDivergence);
  EXPECT_EQ(report.findings[0].value, 3u);
}

TEST(CheckerDivergence, DeclaredShapeAndFullWidthAreLegal) {
  Harness h;
  LaunchConfig config{.blocks = 1, .threads_per_block = 16};
  config.shape.partial_counts = {3};
  h.launcher.launch(config, [](BlockCtx& block) {
    block.step_partial(3,
                       [](ThreadCtx& t) { t.sstore_u32(t.lane() * 4, 1); });
    block.step_partial(16,
                       [](ThreadCtx& t) { t.sstore_u32(t.lane() * 4, 2); });
  });
  EXPECT_TRUE(h.report().clean()) << h.report().to_string();
}

TEST(CheckerStale, ReadOfNeverWrittenSharedMemory) {
  Harness h;
  h.launcher.launch({.blocks = 1, .threads_per_block = 16},
                    [](BlockCtx& block) {
                      block.step([](ThreadCtx& t) {
                        (void)t.sload_u8(64 + t.lane());
                      });
                    });
  const CheckReport& report = h.report();
  // 16 distinct never-written bytes: one finding each.
  EXPECT_EQ(count_of(report, CheckKind::kStaleSharedRead), 16u);
  ASSERT_EQ(report.findings.size(), 16u);
  EXPECT_EQ(report.findings[0].kind, CheckKind::kStaleSharedRead);
  EXPECT_EQ(report.findings[0].lane, 0u);
  EXPECT_EQ(report.findings[0].address, 64u);
}

TEST(CheckerStale, SharedStateDoesNotLeakAcrossBlocks) {
  // Shared memory is not persistent across blocks (Sec. 5.1.2): block 0
  // producing a byte does not legitimize block 1 consuming it.
  Harness h;
  h.launcher.launch({.blocks = 2, .threads_per_block = 4},
                    [](BlockCtx& block) {
                      if (block.block_index() == 0) {
                        block.step([](ThreadCtx& t) {
                          if (t.lane() == 0) t.sstore_u8(0, 7);
                        });
                      }
                      block.step([](ThreadCtx& t) {
                        if (t.lane() == 0) (void)t.sload_u8(0);
                      });
                    });
  const CheckReport& report = h.report();
  EXPECT_EQ(count_of(report, CheckKind::kStaleSharedRead), 1u);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].block, 1u);
}

// --- modes, toggles and plumbing ----------------------------------------

TEST(CheckerModes, ThrowModeThrowsAfterFullAccounting) {
  Checker checker;  // default config: kThrow
  Launcher launcher(gtx280());
  launcher.set_checker(&checker);
  launcher.set_launch_label("test/throwing");
  try {
    launcher.launch({.blocks = 1, .threads_per_block = 8},
                    [](BlockCtx& block) {
                      block.step([](ThreadCtx& t) {
                        t.sstore_u8(0, static_cast<std::uint8_t>(t.lane()));
                      });
                    });
    FAIL() << "racey launch in kThrow mode must throw CheckError";
  } catch (const CheckError& error) {
    EXPECT_EQ(error.report().errors(), 7u);
    EXPECT_NE(std::string(error.what()).find("shared_write_write"),
              std::string::npos);
  }
  // The launch completed and was accounted before the throw: metrics,
  // modeled time and the cumulative report all show it.
  EXPECT_EQ(launcher.metrics().kernel_launches, 1u);
  EXPECT_GT(launcher.elapsed_seconds(), 0.0);
  EXPECT_EQ(checker.report().checked_launches, 1u);
  EXPECT_EQ(checker.report().errors(), 7u);
}

TEST(CheckerModes, AdvisoryLintsNeverThrow) {
  Checker checker;  // kThrow — but advisories are not errors
  Launcher launcher(gtx280());
  launcher.set_checker(&checker);
  // All 16 lanes hit bank 0 with distinct words: a 16-way conflict, over
  // the default threshold of 8.
  launcher.launch({.blocks = 1, .threads_per_block = 16},
                  [](BlockCtx& block) {
                    block.step([](ThreadCtx& t) {
                      t.sstore_u32(t.lane() * 64, 1);
                    });
                  });
  const CheckReport& report = checker.report();
  EXPECT_EQ(report.errors(), 0u);
  EXPECT_GT(count_of(report, CheckKind::kBankConflictLint), 0u);
  ASSERT_FALSE(report.findings.empty());
  EXPECT_EQ(report.findings[0].value, 16u);  // conflict degree
}

TEST(CheckerModes, UncoalescedSweepIsLinted) {
  Harness h;
  std::vector<std::uint8_t> buffer(16 * 64, 1);
  Checker::ScopedWatch watch(&h.checker, buffer.data(), buffer.size(), "buf");
  // Each lane of the half-warp touches its own 64-byte segment: 16
  // transactions, at the default threshold.
  h.launcher.launch({.blocks = 1, .threads_per_block = 16},
                    [&](BlockCtx& block) {
                      block.step([&](ThreadCtx& t) {
                        (void)t.gload_u8(buffer.data() + t.lane() * 64);
                      });
                    });
  EXPECT_GT(count_of(h.report(), CheckKind::kUncoalescedLint), 0u);
  EXPECT_EQ(h.report().errors(), 0u);
}

TEST(CheckerModes, PerfLintsCanBeDisabled) {
  CheckConfig config = collect_config();
  config.perf_lints = false;
  Harness h(config);
  h.launcher.launch({.blocks = 1, .threads_per_block = 16},
                    [](BlockCtx& block) {
                      block.step([](ThreadCtx& t) {
                        t.sstore_u32(t.lane() * 64, 1);
                      });
                    });
  EXPECT_EQ(h.report().advisories(), 0u);
}

TEST(CheckerModes, LaunchConfigOffDisablesAnAttachedChecker) {
  Harness h;
  LaunchConfig config{.blocks = 1, .threads_per_block = 8};
  config.check = CheckToggle::kOff;
  h.launcher.launch(config, [](BlockCtx& block) {
    block.step([](ThreadCtx& t) {
      t.sstore_u8(0, static_cast<std::uint8_t>(t.lane()));
    });
  });
  EXPECT_EQ(h.report().checked_launches, 0u);
  EXPECT_TRUE(h.report().clean());
}

TEST(CheckerModes, LaunchConfigOnCreatesAnInternalThrowingChecker) {
  ScopedEnv env(nullptr);
  Launcher launcher(gtx280());  // nothing attached
  LaunchConfig config{.blocks = 1, .threads_per_block = 8};
  config.check = CheckToggle::kOn;
  EXPECT_THROW(
      launcher.launch(config,
                      [](BlockCtx& block) {
                        block.step([](ThreadCtx& t) {
                          t.sstore_u8(0,
                                      static_cast<std::uint8_t>(t.lane()));
                        });
                      }),
      CheckError);
}

TEST(CheckerEnv, CollectModeFeedsTheMetricsRegistry) {
  ScopedEnv env("collect");
  metrics::Registry::instance().reset();
  Launcher launcher(gtx280());  // no attached checker: env creates one
  launcher.launch({.blocks = 1, .threads_per_block = 16},
                  [](BlockCtx& block) {
                    block.step([](ThreadCtx& t) {
                      t.sstore_u8(0, static_cast<std::uint8_t>(t.lane()));
                    });
                  });
  // collect mode: no throw; the findings surface through the registry.
  EXPECT_EQ(
      metrics::Registry::instance().value("simgpu.check.shared_write_write"),
      15.0);
  EXPECT_EQ(metrics::Registry::instance().value("simgpu.check.launches"),
            1.0);
}

TEST(CheckerEnv, ThrowModeThrowsWithoutAnAttachedChecker) {
  ScopedEnv env("1");
  Launcher launcher(gtx280());
  EXPECT_THROW(
      launcher.launch({.blocks = 1, .threads_per_block = 8},
                      [](BlockCtx& block) {
                        block.step([](ThreadCtx& t) {
                          t.sstore_u8(0,
                                      static_cast<std::uint8_t>(t.lane()));
                        });
                      }),
      CheckError);
}

TEST(CheckerEnv, ModeParsing) {
  {
    ScopedEnv env(nullptr);
    EXPECT_FALSE(env_check_mode().has_value());
  }
  for (const char* off : {"", "0", "off"}) {
    ScopedEnv env(off);
    EXPECT_FALSE(env_check_mode().has_value()) << off;
  }
  {
    ScopedEnv env("collect");
    EXPECT_EQ(env_check_mode(), CheckConfig::Mode::kCollect);
  }
  for (const char* on : {"1", "on", "throw", "anything-else"}) {
    ScopedEnv env(on);
    EXPECT_EQ(env_check_mode(), CheckConfig::Mode::kThrow) << on;
  }
}

TEST(CheckerReport, MergeCapsFindingsButNeverCounts) {
  CheckReport a;
  for (int i = 0; i < 5; ++i) {
    a.findings.push_back({.kind = CheckKind::kSharedOob,
                          .lane = static_cast<std::size_t>(i)});
  }
  a.counts[static_cast<std::size_t>(CheckKind::kSharedOob)] = 5;
  a.checked_launches = 1;
  CheckReport merged;
  merged.merge(a, /*max_findings=*/2);
  merged.merge(a, /*max_findings=*/2);
  EXPECT_EQ(merged.findings.size(), 2u);
  EXPECT_EQ(merged.counts[static_cast<std::size_t>(CheckKind::kSharedOob)],
            10u);
  EXPECT_EQ(merged.checked_launches, 2u);
  EXPECT_EQ(merged.errors(), 10u);
}

// --- engines and fault injection ----------------------------------------

TEST(CheckerEngines, SerialAndParallelReportsAreBitIdentical) {
  // A deliberately dirty multi-block kernel: races, stale reads, an
  // undeclared partial and bank conflicts. Per-block findings merge in
  // ascending block order, so the engines must agree byte for byte.
  auto dirty = [](BlockCtx& block) {
    block.step([](ThreadCtx& t) {
      t.sstore_u8(0, static_cast<std::uint8_t>(t.lane()));
    });
    block.step([&](ThreadCtx& t) {
      (void)t.sload_u8(100 + block.block_index() + t.lane());
    });
    block.step_partial(5, [](ThreadCtx& t) { t.sstore_u32(t.lane() * 64, 1); });
  };
  CheckReport reports[2];
  const ExecEngine engines[2] = {ExecEngine::kSerial, ExecEngine::kParallel};
  for (int i = 0; i < 2; ++i) {
    Harness h;
    LaunchConfig config{.blocks = 7, .threads_per_block = 16};
    config.engine = engines[i];
    h.launcher.launch(config, dirty);
    reports[i] = h.report();
  }
  EXPECT_EQ(reports[0], reports[1]);
  EXPECT_EQ(reports[0].to_string(), reports[1].to_string());
  EXPECT_GT(reports[0].errors(), 0u);  // the comparison is not vacuous
}

TEST(CheckerCompose, ChecksAndFaultInjectionCoexist) {
  FaultPlan plan;
  plan.scripted[0] = FaultClass::kHang;
  FaultInjector injector(plan);
  Harness h;
  h.launcher.set_fault_injector(&injector);
  h.launcher.launch({.blocks = 1, .threads_per_block = 8},
                    [](BlockCtx& block) {
                      block.step([](ThreadCtx& t) {
                        t.sstore_u8(0, static_cast<std::uint8_t>(t.lane()));
                      });
                    });
  EXPECT_EQ(injector.counters().hangs, 1u);   // the fault fired...
  EXPECT_EQ(h.report().errors(), 7u);         // ...and so did the checker
  EXPECT_EQ(h.report().checked_launches, 1u);
}

}  // namespace
}  // namespace extnc::simgpu
