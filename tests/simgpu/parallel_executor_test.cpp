// The parallel block execution engine: engine selection, serial-vs-parallel
// bit-equivalence on synthetic kernels exercising every accounting path,
// texture-unit affinity, error propagation, and the profiler's
// ticket-ordered timeline under concurrent recording.
#include "simgpu/exec_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "simgpu/device_spec.h"
#include "simgpu/executor.h"
#include "simgpu/fault_injector.h"
#include "simgpu/profiler.h"
#include "simgpu/trace_export.h"
#include "util/aligned_buffer.h"
#include "util/metrics_registry.h"

namespace extnc::simgpu {
namespace {

TEST(ExecEngine, ParseAcceptsCanonicalNames) {
  EXPECT_EQ(parse_engine("serial"), ExecEngine::kSerial);
  EXPECT_EQ(parse_engine("parallel"), ExecEngine::kParallel);
  EXPECT_EQ(parse_engine("auto"), ExecEngine::kAuto);
}

TEST(ExecEngine, ParseRejectsEverythingElse) {
  EXPECT_FALSE(parse_engine("").has_value());
  EXPECT_FALSE(parse_engine("Serial").has_value());
  EXPECT_FALSE(parse_engine("threads").has_value());
  EXPECT_FALSE(parse_engine("parallel ").has_value());
}

TEST(ExecEngine, NamesRoundTrip) {
  for (ExecEngine e :
       {ExecEngine::kAuto, ExecEngine::kSerial, ExecEngine::kParallel}) {
    EXPECT_EQ(parse_engine(engine_name(e)), e);
  }
}

TEST(ExecEngine, DefaultEngineIsSettable) {
  const ExecEngine saved = default_engine();
  set_default_engine(ExecEngine::kSerial);
  EXPECT_EQ(default_engine(), ExecEngine::kSerial);
  set_default_engine(ExecEngine::kParallel);
  EXPECT_EQ(default_engine(), ExecEngine::kParallel);
  set_default_engine(saved);
}

TEST(ExecEngine, PoolHasAtLeastOneWorker) {
  EXPECT_GE(engine_pool().num_threads(), 1u);
}

// Set or clear one environment variable for a scope; restores on exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

// The process defaults latch these at first use, so the honored contract is
// tested through the re-reading env readers.
TEST(ExecEngine, EngineFromEnvHonorsVariable) {
  { ScopedEnv env("EXTNC_SIMGPU_ENGINE", "serial");
    EXPECT_EQ(engine_from_env(), ExecEngine::kSerial); }
  { ScopedEnv env("EXTNC_SIMGPU_ENGINE", "parallel");
    EXPECT_EQ(engine_from_env(), ExecEngine::kParallel); }
  { ScopedEnv env("EXTNC_SIMGPU_ENGINE", "auto");
    EXPECT_EQ(engine_from_env(), ExecEngine::kAuto); }
  { ScopedEnv env("EXTNC_SIMGPU_ENGINE", "bogus");
    EXPECT_EQ(engine_from_env(), ExecEngine::kAuto); }
  { ScopedEnv env("EXTNC_SIMGPU_ENGINE", nullptr);
    EXPECT_EQ(engine_from_env(), ExecEngine::kAuto); }
}

TEST(ExecEngine, ThreadsFromEnvHonorsVariable) {
  { ScopedEnv env("EXTNC_SIMGPU_THREADS", "4");
    EXPECT_EQ(threads_from_env(), 4u); }
  { ScopedEnv env("EXTNC_SIMGPU_THREADS", "4x");
    EXPECT_EQ(threads_from_env(), 0u); }
  { ScopedEnv env("EXTNC_SIMGPU_THREADS", nullptr);
    EXPECT_EQ(threads_from_env(), 0u); }
}

TEST(ExecEngine, FastFromEnvHonorsVariable) {
  { ScopedEnv env("EXTNC_SIMGPU_FAST", "0"); EXPECT_FALSE(fast_from_env()); }
  { ScopedEnv env("EXTNC_SIMGPU_FAST", "1"); EXPECT_TRUE(fast_from_env()); }
  { ScopedEnv env("EXTNC_SIMGPU_FAST", nullptr);
    EXPECT_TRUE(fast_from_env()); }
}

// kAuto routes small launches to the serial engine (the pool's dispatch
// latch costs more than block parallelism wins back there) but still
// honors an explicit kParallel request of any size. The routing decision
// surfaces as the simgpu.launch.{serial,parallel} counters.
TEST(ExecEngine, AutoDispatchKeepsSmallLaunchesSerial) {
  if (engine_pool().num_threads() <= 1) {
    GTEST_SKIP() << "single-threaded pool: everything routes serial";
  }
  const ExecEngine saved = default_engine();
  set_default_engine(ExecEngine::kAuto);
  auto& registry = metrics::Registry::instance();
  auto route = [&](std::size_t blocks, ExecEngine engine) {
    const double serial0 = registry.value("simgpu.launch.serial");
    const double parallel0 = registry.value("simgpu.launch.parallel");
    Launcher launcher(gtx280());
    launcher.launch(
        {.blocks = blocks, .threads_per_block = 8, .engine = engine},
        [](BlockCtx& block) {
          block.step([](ThreadCtx& t) { t.count_alu(1); });
        });
    const bool went_serial =
        registry.value("simgpu.launch.serial") == serial0 + 1;
    const bool went_parallel =
        registry.value("simgpu.launch.parallel") == parallel0 + 1;
    EXPECT_NE(went_serial, went_parallel);
    return went_parallel;
  };
  // 8 blocks span several texture units on gtx280 (3 SMs per unit) but sit
  // under the kAuto dispatch threshold: routed serial.
  EXPECT_FALSE(route(8, ExecEngine::kAuto));
  // Enough blocks to amortize dispatch: kAuto goes parallel.
  EXPECT_TRUE(route(30, ExecEngine::kAuto));
  // An explicit kParallel forces the pool even for a small launch.
  EXPECT_TRUE(route(8, ExecEngine::kParallel));
  // An explicit kSerial always stays on the calling thread.
  EXPECT_FALSE(route(30, ExecEngine::kSerial));
  set_default_engine(saved);
}

TEST(TextureUnits, OnePerTpcAndDivisionMapping) {
  // gtx280: 30 SMs, 3 per TPC -> 10 units; consecutive SMs share a unit.
  Launcher launcher(gtx280());
  EXPECT_EQ(launcher.texture_cache_units(), 10u);
  EXPECT_EQ(launcher.texture_unit_of(0), 0u);
  EXPECT_EQ(launcher.texture_unit_of(2), 0u);
  EXPECT_EQ(launcher.texture_unit_of(3), 1u);
  EXPECT_EQ(launcher.texture_unit_of(29), 9u);
  // Block rotation wraps over SMs: block 30 lands back on SM 0.
  EXPECT_EQ(launcher.texture_unit_of(30), 0u);

  Launcher gt(geforce_8800gt());  // 14 SMs, 2 per TPC -> 7 units
  EXPECT_EQ(gt.texture_cache_units(), 7u);
  EXPECT_EQ(gt.texture_unit_of(1), 0u);
  EXPECT_EQ(gt.texture_unit_of(13), 6u);
}

// A kernel that exercises every accounting path: coalesced and scattered
// global traffic, bank-conflicting shared accesses, atomicMin, texture
// fetches (hits and misses), ALU charges, partial steps and barriers. The
// output is block-dependent so cross-block mixups would show in the bytes.
// Buffers are AlignedBuffers: transaction and texture-cache accounting is
// keyed to 64-byte segments of the real host addresses, so comparing two
// runs requires both to place their data at the same alignment.
struct SyntheticWorkload {
  AlignedBuffer input;
  AlignedBuffer output;
  AlignedBuffer table_bytes;  // 4096 u32 entries

  explicit SyntheticWorkload(std::size_t blocks, std::size_t threads)
      : input(blocks * threads * 4),
        output(blocks * threads * 4),
        table_bytes(4096 * 4) {
    for (std::size_t i = 0; i < input.size(); ++i) {
      input.data()[i] = static_cast<std::uint8_t>(i * 131 + 17);
    }
    auto* table = reinterpret_cast<std::uint32_t*>(table_bytes.data());
    for (std::size_t i = 0; i < 4096; ++i) {
      table[i] = static_cast<std::uint32_t>(i * 2654435761u);
    }
  }

  std::vector<std::uint8_t> output_bytes() const {
    return {output.data(), output.data() + output.size()};
  }

  std::function<void(BlockCtx&)> kernel() {
    return [this](BlockCtx& block) {
      const auto* table =
          reinterpret_cast<const std::uint32_t*>(table_bytes.data());
      // Shared layout: one u32 accumulator per lane + one reduction word.
      block.step([&](ThreadCtx& t) {
        t.sstore_u32(t.lane() * 4, 0);
        t.count_alu(2);
      });
      block.step([&](ThreadCtx& t) {
        const std::size_t g = t.global_index();
        // Scattered global loads (stride breaks coalescing for odd lanes).
        const std::uint8_t a = t.gload_u8(input.data() + (g * 7) % input.size());
        const std::uint8_t b = t.gload_u8(input.data() + g);
        // Bank-conflicting shared traffic: lanes collide mod 4.
        const std::uint32_t prev = t.sload_u32((t.lane() % 4) * 4);
        t.sstore_u32(t.lane() * 4, prev + a + b);
        // Texture fetch through the block's TPC unit.
        const std::uint32_t tex = t.tex1d_u32(table, (g * 13) % 4096);
        t.count_alu(6);
        t.sstore_u32(t.lane() * 4, tex ^ (a << 8) ^ b);
      });
      // Min-reduction into one shared word: atomicMin where the device has
      // it, an in-order shared-memory reduction elsewhere (lanes of a block
      // always execute in lane order, on either engine).
      const std::size_t red = block.num_threads() * 4;
      block.step([&](ThreadCtx& t) {
        if (t.lane() == 0) t.sstore_u32(red, 0xffffffffu);
      });
      block.step([&](ThreadCtx& t) {
        if (block.spec().has_shared_atomics) {
          (void)t.atomic_min_shared(red, t.sload_u32(t.lane() * 4));
        } else {
          const std::uint32_t v = t.sload_u32(t.lane() * 4);
          if (v < t.sload_u32(red)) {
            t.sstore_u32(red, v);
          } else {
            t.skip_access();
          }
        }
      });
      // Partial step writes the result back, block-salted.
      block.step_partial(block.num_threads() / 2, [&](ThreadCtx& t) {
        const std::size_t g = t.global_index();
        const std::uint32_t v = t.sload_u32(t.lane() * 4) ^
                                t.sload_u32(red) ^
                                static_cast<std::uint32_t>(block.block_index());
        t.gstore_u32(output.data() + g * 4, v);
        t.count_alu(3);
      });
    };
  }
};

void expect_metrics_identical(const KernelMetrics& a, const KernelMetrics& b) {
  EXPECT_EQ(a.alu_deciops, b.alu_deciops);  // bitwise: merge order is block order
  EXPECT_EQ(a.global_load_bytes, b.global_load_bytes);
  EXPECT_EQ(a.global_store_bytes, b.global_store_bytes);
  EXPECT_EQ(a.global_transactions, b.global_transactions);
  EXPECT_EQ(a.shared_accesses, b.shared_accesses);
  EXPECT_EQ(a.shared_access_events, b.shared_access_events);
  EXPECT_EQ(a.shared_serialized_cycles, b.shared_serialized_cycles);
  EXPECT_EQ(a.texture_fetches, b.texture_fetches);
  EXPECT_EQ(a.texture_misses, b.texture_misses);
  EXPECT_EQ(a.atomic_ops, b.atomic_ops);
  EXPECT_EQ(a.barriers, b.barriers);
  EXPECT_EQ(a.kernel_launches, b.kernel_launches);
  EXPECT_EQ(a.blocks, b.blocks);
  EXPECT_EQ(a.threads_per_block, b.threads_per_block);
}

TEST(EngineEquivalenceSynthetic, SerialAndParallelAreBitIdentical) {
  for (const DeviceSpec& spec : {gtx280(), geforce_8800gt()}) {
    for (std::size_t blocks : {1u, 7u, 30u, 61u}) {
      const std::size_t threads = 64;
      SyntheticWorkload serial_work(blocks, threads);
      SyntheticWorkload parallel_work(blocks, threads);

      Launcher serial_launcher(spec);
      Profiler serial_profiler;
      serial_launcher.set_profiler(&serial_profiler);
      serial_launcher.set_launch_label("equiv/synthetic");
      // Two launches back to back: texture-cache state carries across.
      for (int round = 0; round < 2; ++round) {
        serial_launcher.launch({.blocks = blocks,
                                .threads_per_block = threads,
                                .engine = ExecEngine::kSerial},
                               serial_work.kernel());
      }

      Launcher parallel_launcher(spec);
      Profiler parallel_profiler;
      parallel_launcher.set_profiler(&parallel_profiler);
      parallel_launcher.set_launch_label("equiv/synthetic");
      for (int round = 0; round < 2; ++round) {
        parallel_launcher.launch({.blocks = blocks,
                                  .threads_per_block = threads,
                                  .engine = ExecEngine::kParallel},
                                 parallel_work.kernel());
      }

      EXPECT_EQ(serial_work.output_bytes(), parallel_work.output_bytes())
          << spec.name << " blocks=" << blocks;
      expect_metrics_identical(serial_launcher.metrics(),
                               parallel_launcher.metrics());
      EXPECT_EQ(serial_launcher.elapsed_seconds(),
                parallel_launcher.elapsed_seconds());
      // The whole observable profile, serialized: timing model included.
      EXPECT_EQ(to_chrome_trace(serial_profiler),
                to_chrome_trace(parallel_profiler))
          << spec.name << " blocks=" << blocks;
    }
  }
}

TEST(EngineEquivalenceSynthetic, KernelExceptionReportsLowestBlock) {
  auto throwing_kernel = [](BlockCtx& block) {
    block.step([&](ThreadCtx& t) { t.count_alu(1); });
    if (block.block_index() >= 5) {
      throw std::runtime_error("block " +
                               std::to_string(block.block_index()));
    }
  };
  const LaunchConfig base{.blocks = 30, .threads_per_block = 16};
  for (ExecEngine engine : {ExecEngine::kSerial, ExecEngine::kParallel}) {
    Launcher launcher(gtx280());
    LaunchConfig config = base;
    config.engine = engine;
    try {
      launcher.launch(config, throwing_kernel);
      FAIL() << "kernel exception must propagate (" << engine_name(engine)
             << ")";
    } catch (const std::runtime_error& error) {
      // Serial stops at the first throwing block; parallel must surface
      // the same one even though later blocks of other units may also
      // have thrown.
      EXPECT_STREQ(error.what(), "block 5") << engine_name(engine);
    }
  }
}

TEST(EngineEquivalenceSynthetic, ParallelEngineActuallyRunsOffThread) {
  // Sanity check that kParallel schedules on pool workers (when the pool
  // has more than one thread, the launching thread never runs blocks).
  if (engine_pool().num_threads() < 2) {
    GTEST_SKIP() << "single-threaded pool: parallel engine degenerates";
  }
  std::atomic<int> off_thread{0};
  const std::thread::id caller = std::this_thread::get_id();
  Launcher launcher(gtx280());
  launcher.launch({.blocks = 30, .threads_per_block = 8,
                   .engine = ExecEngine::kParallel},
                  [&](BlockCtx& block) {
                    block.step([&](ThreadCtx&) {});
                    if (std::this_thread::get_id() != caller) {
                      off_thread.fetch_add(1);
                    }
                  });
  EXPECT_GT(off_thread.load(), 0);
}

// --- profiler under concurrency -----------------------------------------

TEST(ProfilerTickets, TimelineFollowsTicketOrderNotCompletionOrder) {
  Profiler profiler;
  KernelMetrics metrics;
  metrics.kernel_launches = 1;
  metrics.blocks = 1;
  metrics.threads_per_block = 32;
  metrics.set_alu_ops(1000);

  // Reserve three tickets, record them in reverse.
  const std::uint64_t t0 = profiler.begin_ticket();
  const std::uint64_t t1 = profiler.begin_ticket();
  const std::uint64_t t2 = profiler.begin_ticket();
  profiler.record_launch_at(t2, gtx280(), "third", metrics);
  EXPECT_EQ(profiler.launch_count(), 0u);  // waiting on earlier tickets
  profiler.record_launch_at(t1, gtx280(), "second", metrics);
  EXPECT_EQ(profiler.launch_count(), 0u);
  profiler.record_launch_at(t0, gtx280(), "first", metrics);
  ASSERT_EQ(profiler.launch_count(), 3u);
  EXPECT_EQ(profiler.launches()[0].label, "first");
  EXPECT_EQ(profiler.launches()[1].label, "second");
  EXPECT_EQ(profiler.launches()[2].label, "third");
  // Timeline is contiguous: each start is the previous end.
  EXPECT_EQ(profiler.launches()[0].start_s, 0.0);
  EXPECT_EQ(profiler.launches()[1].start_s, profiler.launches()[0].end_s);
  EXPECT_EQ(profiler.launches()[2].start_s, profiler.launches()[1].end_s);
}

TEST(ProfilerTickets, AbandonedTicketClosesTheGap) {
  Profiler profiler;
  KernelMetrics metrics;
  metrics.kernel_launches = 1;
  metrics.blocks = 1;
  metrics.threads_per_block = 32;
  metrics.set_alu_ops(500);

  const std::uint64_t t0 = profiler.begin_ticket();
  const std::uint64_t t1 = profiler.begin_ticket();  // will fail
  const std::uint64_t t2 = profiler.begin_ticket();
  profiler.record_launch_at(t2, gtx280(), "after", metrics);
  profiler.abandon_ticket(t1);
  EXPECT_EQ(profiler.launch_count(), 0u);
  profiler.record_launch_at(t0, gtx280(), "before", metrics);
  ASSERT_EQ(profiler.launch_count(), 2u);
  EXPECT_EQ(profiler.launches()[0].label, "before");
  EXPECT_EQ(profiler.launches()[1].label, "after");
  EXPECT_EQ(profiler.launches()[1].start_s, profiler.launches()[0].end_s);
}

TEST(ProfilerTickets, ConcurrentRecordingKeepsDeterministicTimeline) {
  // Launch-begin order is serialized by begin_ticket; completion order is
  // scrambled across threads. The resulting timeline must be exactly the
  // ticket order with a contiguous clock. (Run under TSan in CI.)
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  Profiler profiler;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&profiler, w] {
      KernelMetrics metrics;
      metrics.kernel_launches = 1;
      metrics.blocks = 1;
      metrics.threads_per_block = 32;
      for (int i = 0; i < kPerThread; ++i) {
        metrics.set_alu_ops(100.0 * (w + 1));
        const std::uint64_t ticket = profiler.begin_ticket();
        if ((ticket % 17) == 3) {
          profiler.abandon_ticket(ticket);
          continue;
        }
        std::this_thread::yield();  // scramble completion order
        profiler.record_launch_at(ticket, gtx280(),
                                  "stress/" + std::to_string(w), metrics);
      }
    });
  }
  for (auto& worker : workers) worker.join();

  const std::size_t abandoned =
      (kThreads * kPerThread + 13) / 17;  // tickets == 3 (mod 17)
  ASSERT_EQ(profiler.launch_count(),
            static_cast<std::size_t>(kThreads * kPerThread) - abandoned);
  double clock = 0;
  for (const LaunchProfile& launch : profiler.launches()) {
    EXPECT_EQ(launch.start_s, clock);
    clock = launch.end_s;
  }
  EXPECT_EQ(profiler.total_seconds(), clock);
}

}  // namespace
}  // namespace extnc::simgpu
