#include "simgpu/trace_export.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "simgpu/profiler.h"

namespace extnc::simgpu {
namespace {

#ifndef EXTNC_TEST_DATA_DIR
#define EXTNC_TEST_DATA_DIR "."
#endif

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

// A fixed, hand-built run: everything downstream of this (timing model
// included) is deterministic, which is what makes a golden file possible.
// (Profiler owns a mutex now, so the golden run is wrapped in a
// default-constructible holder rather than returned by value.)
struct GoldenProfiler {
  Profiler profiler;
  GoldenProfiler();
  operator const Profiler&() const { return profiler; }
};

GoldenProfiler::GoldenProfiler() {
  KernelMetrics encode;
  encode.kernel_launches = 1;
  encode.blocks = 30;
  encode.threads_per_block = 256;
  encode.set_alu_ops(2.5e6);
  encode.global_load_bytes = 1 << 20;
  encode.global_store_bytes = 1 << 18;
  encode.global_transactions = 1 << 14;
  encode.shared_accesses = 1 << 16;
  encode.shared_access_events = 1 << 12;
  encode.shared_serialized_cycles = 3 << 12;
  encode.barriers = 64;
  profiler.record_launch(gtx280(), "golden/encode", encode);

  KernelMetrics tex;
  tex.kernel_launches = 1;
  tex.blocks = 16;
  tex.threads_per_block = 128;
  tex.set_alu_ops(1e5);
  tex.texture_fetches = 4096;
  tex.texture_misses = 512;
  profiler.record_launch(gtx280(), "golden/tex \"quoted\\path\"", tex);
}

TraceOptions golden_options() {
  TraceOptions options;
  options.metadata = {{"tool", "trace_export_test"},
                      {"note", "tab\there \"and\" back\\slash"}};
  return options;
}

std::string golden_path() {
  return std::string(EXTNC_TEST_DATA_DIR) + "/trace_golden.json";
}

// Golden-file test for the exact serialized shape (field order, float
// formatting, escaping). Regenerate after intentional format or timing-model
// changes with: EXTNC_REGEN_GOLDEN=1 ./simgpu_test
TEST(TraceExport, MatchesGoldenFile) {
  const std::string trace = to_chrome_trace(GoldenProfiler(),
                                            golden_options());
  if (std::getenv("EXTNC_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path(), std::ios::binary);
    out << trace;
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    GTEST_SKIP() << "regenerated " << golden_path();
  }
  std::ifstream in(golden_path(), std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path();
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(trace, expected.str());
}

TEST(TraceExport, OneCompleteEventPerLaunch) {
  const GoldenProfiler golden;
  const Profiler& profiler = golden.profiler;
  const std::string trace = to_chrome_trace(profiler);
  EXPECT_EQ(count_occurrences(trace, "\"ph\": \"X\""),
            profiler.launch_count());
  EXPECT_EQ(count_occurrences(trace, "\"ph\": \"M\""), 2u);  // process+thread
  EXPECT_NE(trace.find("\"name\": \"golden/encode\""), std::string::npos);
}

TEST(TraceExport, EscapesLabelsAndMetadata) {
  const std::string trace = to_chrome_trace(GoldenProfiler(),
                                            golden_options());
  EXPECT_NE(trace.find("golden/tex \\\"quoted\\\\path\\\""),
            std::string::npos);
  EXPECT_NE(trace.find("tab\\there \\\"and\\\" back\\\\slash"),
            std::string::npos);
}

TEST(TraceExport, EmptyProfilerStillValid) {
  const Profiler profiler;
  const std::string trace = to_chrome_trace(profiler);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("simgpu"), std::string::npos);
  EXPECT_EQ(count_occurrences(trace, "\"ph\": \"X\""), 0u);
}

TEST(TraceExport, WriteFailsOnUnwritablePath) {
  std::string error;
  EXPECT_FALSE(write_chrome_trace(GoldenProfiler(),
                                  "/nonexistent-dir/trace.json", &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST(TraceExport, WriteRoundTrips) {
  const std::string path =
      ::testing::TempDir() + "/extnc_trace_roundtrip.json";
  std::string error;
  ASSERT_TRUE(write_chrome_trace(GoldenProfiler(), path, &error)) << error;
  std::ifstream in(path, std::ios::binary);
  std::stringstream written;
  written << in.rdbuf();
  EXPECT_EQ(written.str(), to_chrome_trace(GoldenProfiler()));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace extnc::simgpu
