// The fault model itself: scripted and probabilistic scheduling, sticky
// device loss, damage application, launcher integration (DeviceError on
// rejected launches, hang stalls on the modeled clock).
#include "simgpu/fault_injector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "simgpu/device_spec.h"
#include "simgpu/executor.h"

namespace extnc::simgpu {
namespace {

TEST(FaultPlan, ParsesScriptedAndProbabilisticTokens) {
  const auto plan = FaultPlan::parse("hang@3,flip@7,lost@12,pfail=0.25", 42);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->seed, 42u);
  ASSERT_EQ(plan->scripted.size(), 3u);
  EXPECT_EQ(plan->scripted.at(3), FaultClass::kHang);
  EXPECT_EQ(plan->scripted.at(7), FaultClass::kBitFlip);
  EXPECT_EQ(plan->scripted.at(12), FaultClass::kDeviceLost);
  EXPECT_DOUBLE_EQ(plan->p_launch_failure, 0.25);
  EXPECT_DOUBLE_EQ(plan->p_hang, 0.0);
  EXPECT_TRUE(plan->any());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_FALSE(FaultPlan::parse("wat@3").has_value());     // unknown class
  EXPECT_FALSE(FaultPlan::parse("hang@x").has_value());    // bad index
  EXPECT_FALSE(FaultPlan::parse("hang@").has_value());     // empty index
  EXPECT_FALSE(FaultPlan::parse("pwat=0.1").has_value());  // unknown class
  EXPECT_FALSE(FaultPlan::parse("phang=1.5").has_value()); // p out of range
  EXPECT_FALSE(FaultPlan::parse("phang=x").has_value());   // bad number
  EXPECT_FALSE(FaultPlan::parse("hang").has_value());      // no @ or =
  EXPECT_FALSE(FaultPlan::parse("hang@1,,flip@2").has_value());  // empty token
}

TEST(FaultPlan, EmptySpecMeansNoFaults) {
  const auto plan = FaultPlan::parse("");
  ASSERT_TRUE(plan.has_value());
  EXPECT_FALSE(plan->any());
}

TEST(FaultInjector, ScriptedFaultsFireAtExactLaunchIndices) {
  FaultPlan plan;
  plan.scripted[2] = FaultClass::kLaunchFailure;
  plan.scripted[5] = FaultClass::kHang;
  FaultInjector injector(plan);
  std::vector<FaultClass> observed;
  for (int i = 0; i < 8; ++i) {
    const FaultClass fault = injector.begin_launch();
    observed.push_back(fault);
    // Rejected launches never run; begin_launch alone was the whole launch.
    if (fault != FaultClass::kLaunchFailure && fault != FaultClass::kDeviceLost) {
      injector.finish_launch(fault, 0.001);
    }
  }
  for (int i = 0; i < 8; ++i) {
    if (i == 2) {
      EXPECT_EQ(observed[i], FaultClass::kLaunchFailure) << i;
    } else if (i == 5) {
      EXPECT_EQ(observed[i], FaultClass::kHang) << i;
    } else {
      EXPECT_EQ(observed[i], FaultClass::kNone) << i;
    }
  }
  EXPECT_EQ(injector.counters().launches, 8u);
  EXPECT_EQ(injector.counters().launch_failures, 1u);
  EXPECT_EQ(injector.counters().hangs, 1u);
  EXPECT_EQ(injector.counters().faults(), 2u);
}

TEST(FaultInjector, ProbabilisticDrawsAreSeedDeterministic) {
  FaultPlan plan;
  plan.p_bit_flip = 0.3;
  plan.seed = 77;
  // Using the injector as a bare fault oracle still owes it the launch
  // pairing: cancel each launch we begin but never run.
  auto draw = [&] {
    FaultInjector injector(plan);
    std::vector<FaultClass> faults;
    for (int i = 0; i < 64; ++i) {
      faults.push_back(injector.begin_launch());
      injector.cancel_launch();
    }
    return faults;
  };
  const auto a = draw();
  const auto b = draw();
  EXPECT_EQ(a, b);
  // And the plan actually fires sometimes (0.3 over 64 draws).
  EXPECT_GT(std::count(a.begin(), a.end(), FaultClass::kBitFlip), 0);

  plan.seed = 78;
  FaultInjector other(plan);
  std::vector<FaultClass> c;
  for (int i = 0; i < 64; ++i) {
    c.push_back(other.begin_launch());
    other.cancel_launch();
  }
  EXPECT_NE(a, c);  // different seed, different trajectory
}

TEST(FaultInjector, DeviceLostIsStickyUntilRestore) {
  FaultPlan plan;
  plan.scripted[1] = FaultClass::kDeviceLost;
  FaultInjector injector(plan);
  EXPECT_EQ(injector.begin_launch(), FaultClass::kNone);
  injector.finish_launch(FaultClass::kNone, 0.001);
  // Rejected launches are already finished; begin_launch alone is the
  // whole launch for them.
  EXPECT_EQ(injector.begin_launch(), FaultClass::kDeviceLost);
  EXPECT_TRUE(injector.device_lost());
  // Every subsequent launch fails, but only the transition is counted.
  EXPECT_EQ(injector.begin_launch(), FaultClass::kDeviceLost);
  EXPECT_EQ(injector.begin_launch(), FaultClass::kDeviceLost);
  EXPECT_EQ(injector.counters().device_losses, 1u);
  injector.restore_device();
  EXPECT_FALSE(injector.device_lost());
  EXPECT_EQ(injector.begin_launch(), FaultClass::kNone);
  injector.cancel_launch();
}

TEST(FaultInjector, BitFlipDamagesWatchedRegion) {
  FaultPlan plan;
  plan.scripted[0] = FaultClass::kBitFlip;
  plan.flips_per_fault = 3;
  FaultInjector injector(plan);
  std::vector<std::uint8_t> buffer(256, 0);
  injector.watch_region(buffer);
  const FaultClass fault = injector.begin_launch();
  EXPECT_EQ(fault, FaultClass::kBitFlip);
  injector.finish_launch(fault, 0.001);
  std::size_t flipped_bits = 0;
  for (std::uint8_t byte : buffer) {
    flipped_bits += static_cast<std::size_t>(__builtin_popcount(byte));
  }
  EXPECT_GE(flipped_bits, 1u);
  EXPECT_LE(flipped_bits, 3u);  // flips can collide, never multiply
  injector.clear_regions();
}

TEST(FaultInjector, HangScribblesSuffixAndStallsClock) {
  FaultPlan plan;
  plan.scripted[0] = FaultClass::kHang;
  plan.hang_stall_factor = 1000.0;
  FaultInjector injector(plan);
  std::vector<std::uint8_t> buffer(64, 0);
  injector.watch_region(buffer);
  const FaultClass fault = injector.begin_launch();
  EXPECT_EQ(fault, FaultClass::kHang);
  EXPECT_DOUBLE_EQ(injector.time_multiplier(fault), 1000.0);
  EXPECT_DOUBLE_EQ(injector.time_multiplier(FaultClass::kNone), 1.0);
  injector.finish_launch(fault, 2.0);  // caller pre-scales by the multiplier
  EXPECT_DOUBLE_EQ(injector.observed_seconds(), 2.0);
  // The scribbled suffix is overwhelmingly unlikely to stay all-zero.
  EXPECT_TRUE(std::any_of(buffer.begin(), buffer.end(),
                          [](std::uint8_t b) { return b != 0; }));
}

TEST(FaultInjector, UnwatchedDamageIsHeldPending) {
  FaultPlan plan;
  plan.scripted[0] = FaultClass::kBitFlip;
  FaultInjector injector(plan);
  const FaultClass fault = injector.begin_launch();
  injector.finish_launch(fault, 0.001);
  EXPECT_EQ(injector.pending_damage(), 1u);
  std::vector<std::uint8_t> late(128, 0);
  injector.apply_pending_damage(late);
  EXPECT_EQ(injector.pending_damage(), 0u);
  EXPECT_TRUE(std::any_of(late.begin(), late.end(),
                          [](std::uint8_t b) { return b != 0; }));
}

// Launcher integration: rejected launches throw DeviceError before any
// block runs; hang launches stall the modeled clocks.
TEST(FaultInjector, LauncherThrowsDeviceErrorOnRejectedLaunch) {
  Launcher launcher(gtx280());
  FaultPlan plan;
  plan.scripted[0] = FaultClass::kLaunchFailure;
  plan.scripted[1] = FaultClass::kDeviceLost;
  FaultInjector injector(plan);
  launcher.set_fault_injector(&injector);

  int ran = 0;
  const LaunchConfig config{.blocks = 1, .threads_per_block = 1};
  auto kernel = [&](BlockCtx& block) {
    block.step([&](ThreadCtx&) { ++ran; });
  };
  try {
    launcher.launch(config, kernel);
    FAIL() << "launch 0 should have thrown";
  } catch (const DeviceError& error) {
    EXPECT_EQ(error.fault(), FaultClass::kLaunchFailure);
  }
  try {
    launcher.launch(config, kernel);
    FAIL() << "launch 1 should have thrown";
  } catch (const DeviceError& error) {
    EXPECT_EQ(error.fault(), FaultClass::kDeviceLost);
  }
  EXPECT_EQ(ran, 0);  // nothing executed
  EXPECT_DOUBLE_EQ(launcher.elapsed_seconds(), 0.0);  // no metrics accrued
  EXPECT_TRUE(injector.device_lost());
  // Sticky: further launches keep failing until the device is restored.
  EXPECT_THROW(launcher.launch(config, kernel), DeviceError);
  injector.restore_device();
  launcher.launch(config, kernel);
  EXPECT_EQ(ran, 1);
}

// The launch-granularity contract: one launch in flight per injector at a
// time, begun and finished (or cancelled) on the launching thread. The
// parallel engine depends on this — blocks never touch the injector, so
// fault decisions and damage stay keyed to the launch index alone.
using FaultInjectorDeathTest = ::testing::Test;

TEST(FaultInjectorDeathTest, OverlappingLaunchesAreRejected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  FaultInjector injector(FaultPlan{});
  (void)injector.begin_launch();
  EXPECT_DEATH((void)injector.begin_launch(), "EXTNC_CHECK failed");
  injector.cancel_launch();
  (void)injector.begin_launch();  // paired again: fine
  injector.finish_launch(FaultClass::kNone, 0.001);
}

TEST(FaultInjectorDeathTest, FinishWithoutBeginIsRejected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  FaultInjector injector(FaultPlan{});
  EXPECT_DEATH(injector.finish_launch(FaultClass::kNone, 0.001),
               "EXTNC_CHECK failed");
  // A rejected launch is already finished: finishing it is also misuse.
  FaultPlan plan;
  plan.scripted[0] = FaultClass::kLaunchFailure;
  FaultInjector rejecting(plan);
  EXPECT_EQ(rejecting.begin_launch(), FaultClass::kLaunchFailure);
  EXPECT_DEATH(rejecting.finish_launch(FaultClass::kLaunchFailure, 0.001),
               "EXTNC_CHECK failed");
}

TEST(FaultInjector, HangStallsLauncherElapsedClock) {
  const LaunchConfig config{.blocks = 1, .threads_per_block = 32};
  auto kernel = [](BlockCtx& block) {
    block.step([](ThreadCtx& thread) { thread.count_alu(100); });
  };

  Launcher healthy(gtx280());
  healthy.launch(config, kernel);
  const double normal_s = healthy.last_launch_seconds();
  ASSERT_GT(normal_s, 0.0);

  Launcher faulty(gtx280());
  FaultPlan plan;
  plan.scripted[0] = FaultClass::kHang;
  plan.hang_stall_factor = 1e6;
  FaultInjector injector(plan);
  faulty.set_fault_injector(&injector);
  faulty.launch(config, kernel);
  EXPECT_NEAR(faulty.last_launch_seconds(), normal_s * 1e6, normal_s);
  EXPECT_NEAR(injector.observed_seconds(), normal_s * 1e6, normal_s);
}

}  // namespace
}  // namespace extnc::simgpu
