#include "simgpu/metrics.h"

#include <gtest/gtest.h>

namespace extnc::simgpu {
namespace {

TEST(KernelMetrics, MergeAccumulatesCounters) {
  KernelMetrics a;
  a.set_alu_ops(10);
  a.global_load_bytes = 100;
  a.shared_serialized_cycles = 7;
  a.kernel_launches = 1;
  KernelMetrics b;
  b.set_alu_ops(5);
  b.global_load_bytes = 50;
  b.shared_serialized_cycles = 3;
  b.kernel_launches = 2;
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.alu_ops(), 15.0);
  EXPECT_EQ(a.global_load_bytes, 150u);
  EXPECT_EQ(a.shared_serialized_cycles, 10u);
  EXPECT_EQ(a.kernel_launches, 3u);
}

// Regression: merging a metrics object that never launched used to
// overwrite the recorded launch geometry with zeros, zeroing occupancy in
// every downstream report.
TEST(KernelMetrics, MergeWithoutLaunchesKeepsGeometry) {
  KernelMetrics a;
  a.kernel_launches = 1;
  a.blocks = 30;
  a.threads_per_block = 256;
  KernelMetrics idle;  // e.g. a pipeline stage that never ran
  idle.set_alu_ops(2);
  a.merge(idle);
  EXPECT_EQ(a.blocks, 30u);
  EXPECT_EQ(a.threads_per_block, 256u);
  EXPECT_DOUBLE_EQ(a.alu_ops(), 2.0);
  EXPECT_EQ(a.kernel_launches, 1u);
}

TEST(KernelMetrics, MergeWithLaunchesAdoptsLastGeometry) {
  KernelMetrics a;
  a.kernel_launches = 1;
  a.blocks = 30;
  a.threads_per_block = 256;
  KernelMetrics b;
  b.kernel_launches = 1;
  b.blocks = 60;
  b.threads_per_block = 128;
  a.merge(b);
  EXPECT_EQ(a.blocks, 60u);
  EXPECT_EQ(a.threads_per_block, 128u);
  EXPECT_EQ(a.kernel_launches, 2u);
}

TEST(KernelMetrics, ConflictDegreeIsCyclesPerEvent) {
  KernelMetrics m;
  EXPECT_DOUBLE_EQ(m.shared_conflict_degree(), 1.0);  // no events
  m.shared_access_events = 4;
  m.shared_serialized_cycles = 10;
  EXPECT_DOUBLE_EQ(m.shared_conflict_degree(), 2.5);
}

TEST(KernelMetrics, TextureHitRate) {
  KernelMetrics m;
  EXPECT_DOUBLE_EQ(m.texture_hit_rate(), 1.0);  // no fetches
  m.texture_fetches = 8;
  m.texture_misses = 2;
  EXPECT_DOUBLE_EQ(m.texture_hit_rate(), 0.75);
}

}  // namespace
}  // namespace extnc::simgpu
