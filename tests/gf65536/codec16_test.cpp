#include "gf65536/codec16.h"

#include <gtest/gtest.h>

#include "coding/encoder.h"
#include "coding/progressive_decoder.h"

namespace extnc::gf65536 {
namespace {

TEST(Codec16, RoundTrip) {
  Rng rng(1);
  const Params16 params{.n = 12, .symbols = 40};
  const Encoder16 encoder = Encoder16::random(params, rng);
  Decoder16 decoder(params);
  std::vector<std::uint16_t> coeffs;
  std::vector<std::uint16_t> payload;
  std::size_t sent = 0;
  while (!decoder.is_complete()) {
    encoder.encode(rng, coeffs, payload);
    decoder.add(coeffs, payload);
    ASSERT_LT(++sent, params.n + 10);
  }
  EXPECT_EQ(decoder.decoded(), encoder.sources());
}

TEST(Codec16, DetectsDuplicateAsDependent) {
  Rng rng(2);
  const Params16 params{.n = 6, .symbols = 8};
  const Encoder16 encoder = Encoder16::random(params, rng);
  Decoder16 decoder(params);
  std::vector<std::uint16_t> coeffs;
  std::vector<std::uint16_t> payload;
  encoder.encode(rng, coeffs, payload);
  EXPECT_EQ(decoder.add(coeffs, payload), Decoder16::Result::kAccepted);
  EXPECT_EQ(decoder.add(coeffs, payload),
            Decoder16::Result::kLinearlyDependent);
}

TEST(Codec16, DependenceIsRarerThanGf256) {
  // The point of the bigger field: run many decodes in both fields and
  // compare wasted-block counts. A dense random arrival is dependent with
  // probability q^(r-n), so a full decode wastes ~1/(q-1) blocks in
  // expectation: ~1/255 per decode over GF(2^8), ~1/65535 over GF(2^16).
  // 4000 decodes: expect ~15.7 dependents for q=256, ~0.06 for q=65536.
  const std::size_t n = 8;
  const int decodes = 4000;

  Rng rng(3);
  std::size_t dependent16 = 0;
  const Params16 params16{.n = n, .symbols = 4};
  for (int d = 0; d < decodes; ++d) {
    const Encoder16 encoder = Encoder16::random(params16, rng);
    Decoder16 decoder(params16);
    std::vector<std::uint16_t> coeffs;
    std::vector<std::uint16_t> payload;
    while (!decoder.is_complete()) {
      encoder.encode(rng, coeffs, payload);
      if (decoder.add(coeffs, payload) != Decoder16::Result::kAccepted) {
        ++dependent16;
      }
    }
  }

  std::size_t dependent8 = 0;
  const coding::Params params8{.n = n, .k = 8};
  for (int d = 0; d < decodes; ++d) {
    const coding::Segment segment = coding::Segment::random(params8, rng);
    const coding::Encoder encoder(segment);
    coding::ProgressiveDecoder decoder(params8);
    while (!decoder.is_complete()) {
      if (decoder.add(encoder.encode(rng)) !=
          coding::ProgressiveDecoder::Result::kAccepted) {
        ++dependent8;
      }
    }
  }

  EXPECT_LT(dependent16, 4u);  // ~0.06 expected
  EXPECT_GT(dependent8, 4u);   // ~15.7 expected
  EXPECT_GT(dependent8, dependent16);
}

TEST(Codec16, SingleBlockGeneration) {
  Rng rng(4);
  const Params16 params{.n = 1, .symbols = 16};
  const Encoder16 encoder = Encoder16::random(params, rng);
  Decoder16 decoder(params);
  std::vector<std::uint16_t> coeffs;
  std::vector<std::uint16_t> payload;
  encoder.encode(rng, coeffs, payload);
  EXPECT_EQ(decoder.add(coeffs, payload), Decoder16::Result::kAccepted);
  EXPECT_TRUE(decoder.is_complete());
  EXPECT_EQ(decoder.decoded(), encoder.sources());
}

TEST(Codec16DeathTest, WrongSourceSizeAborts) {
  EXPECT_DEATH(Encoder16({.n = 2, .symbols = 4},
                         std::vector<std::uint16_t>(7)),
               "EXTNC_CHECK");
}

}  // namespace
}  // namespace extnc::gf65536
