#include "gf65536/gf16.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace extnc::gf65536 {
namespace {

TEST(Gf16, TableMulMatchesLoopMulOnRandomPairs) {
  Rng rng(1);
  for (int trial = 0; trial < 100000; ++trial) {
    const auto x = static_cast<std::uint16_t>(rng.next());
    const auto y = static_cast<std::uint16_t>(rng.next());
    ASSERT_EQ(mul(x, y), mul_loop(x, y)) << x << " * " << y;
  }
}

TEST(Gf16, MultiplicativeIdentityAndZero) {
  Rng rng(2);
  for (int trial = 0; trial < 1000; ++trial) {
    const auto x = static_cast<std::uint16_t>(rng.next());
    EXPECT_EQ(mul(x, 1), x);
    EXPECT_EQ(mul(1, x), x);
    EXPECT_EQ(mul(x, 0), 0);
    EXPECT_EQ(mul(0, x), 0);
  }
}

TEST(Gf16, InverseProperty) {
  Rng rng(3);
  for (int trial = 0; trial < 10000; ++trial) {
    const auto x = static_cast<std::uint16_t>(1 + rng.next_below(65535));
    ASSERT_EQ(mul(x, inv(x)), 1) << x;
  }
  EXPECT_EQ(inv(0), 0);
}

TEST(Gf16, DivisionInvertsMultiplication) {
  Rng rng(4);
  for (int trial = 0; trial < 10000; ++trial) {
    const auto x = static_cast<std::uint16_t>(rng.next());
    const auto y = static_cast<std::uint16_t>(1 + rng.next_below(65535));
    ASSERT_EQ(div(mul(x, y), y), x);
  }
}

TEST(Gf16, FieldAxiomsOnRandomTriples) {
  Rng rng(5);
  for (int trial = 0; trial < 20000; ++trial) {
    const auto x = static_cast<std::uint16_t>(rng.next());
    const auto y = static_cast<std::uint16_t>(rng.next());
    const auto z = static_cast<std::uint16_t>(rng.next());
    ASSERT_EQ(mul(x, y), mul(y, x));
    ASSERT_EQ(mul(mul(x, y), z), mul(x, mul(y, z)));
    ASSERT_EQ(mul(x, add(y, z)), add(mul(x, y), mul(x, z)));
  }
}

TEST(Gf16, GeneratorHasFullOrder) {
  // Verified during table construction; spot-check the doubling here.
  const Tables& t = tables();
  EXPECT_EQ(t.exp[0], 1);
  EXPECT_EQ(t.exp[65535], 1);  // wraps
  for (int i = 0; i < 100; ++i) EXPECT_EQ(t.exp[i], t.exp[i + 65535]);
}

TEST(Gf16, MulAddRegionMatchesScalar) {
  Rng rng(6);
  const std::size_t symbols = 333;
  std::vector<std::uint16_t> src(symbols);
  std::vector<std::uint16_t> dst(symbols);
  std::vector<std::uint16_t> expected(symbols);
  for (std::size_t i = 0; i < symbols; ++i) {
    src[i] = static_cast<std::uint16_t>(rng.next());
    dst[i] = static_cast<std::uint16_t>(rng.next());
    expected[i] = dst[i];
  }
  const std::uint16_t c = 0x1234;
  mul_add_region(dst.data(), src.data(), c, symbols);
  for (std::size_t i = 0; i < symbols; ++i) {
    expected[i] = add(expected[i], mul(c, src[i]));
    ASSERT_EQ(dst[i], expected[i]) << i;
  }
}

TEST(Gf16, ScaleRegionByZeroClears) {
  std::vector<std::uint16_t> dst{1, 2, 3};
  scale_region(dst.data(), 0, dst.size());
  for (std::uint16_t v : dst) EXPECT_EQ(v, 0);
}

TEST(Gf16, MulAddByZeroIsNoop) {
  std::vector<std::uint16_t> src{1, 2, 3};
  std::vector<std::uint16_t> dst{7, 8, 9};
  mul_add_region(dst.data(), src.data(), 0, dst.size());
  EXPECT_EQ(dst, (std::vector<std::uint16_t>{7, 8, 9}));
}

}  // namespace
}  // namespace extnc::gf65536
